"""Constraint discovery: learn a :class:`ConstraintSet` from a data partition.

For every candidate projection (simple attributes + principal directions of
the covariance matrix), the discovered bounds are ``mean ± bound_factor·std``
of the projection on the partition, which is how Fariha et al. summarize the
densest region of the data along each direction.  Projections whose relative
standard deviation is too large are dropped (they would yield permissive,
useless constraints); if that filter removes everything, the tightest
projections are kept as a fallback so a partition always yields a profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConstraintError
from repro.profiling.constraints import ConformanceConstraint, ConstraintSet
from repro.profiling.projections import discover_projections
from repro.utils.validation import check_array


@dataclass(frozen=True)
class DiscoveryConfig:
    """Hyper-parameters of constraint discovery.

    Parameters
    ----------
    bound_factor:
        Half-width of the learned bounds in units of the projection's
        standard deviation (``mean ± bound_factor·std``).
    include_simple, include_pca:
        Which families of candidate projections to generate.
    max_pca_components:
        Optional cap on the number of principal directions.
    max_relative_std:
        Keep only projections whose standard deviation is at most this
        fraction of the largest candidate standard deviation; values below
        1.0 drop high-variance directions that have little discriminative
        power.  The default keeps every projection (the per-constraint
        importance weights already down-weight the high-variance ones), which
        is important for near-isotropic partitions where all directions have
        similar spread.
    min_constraints:
        Always keep at least this many (tightest) constraints even if the
        relative-std filter would remove them.
    """

    bound_factor: float = 1.5
    include_simple: bool = True
    include_pca: bool = True
    max_pca_components: Optional[int] = None
    max_relative_std: float = 1.0
    min_constraints: int = 2

    def __post_init__(self) -> None:
        if self.bound_factor <= 0:
            raise ConstraintError("bound_factor must be positive")
        if not 0.0 < self.max_relative_std <= 1.0:
            raise ConstraintError("max_relative_std must be in (0, 1]")
        if self.min_constraints < 1:
            raise ConstraintError("min_constraints must be at least 1")


def discover_constraints(
    X,
    *,
    config: Optional[DiscoveryConfig] = None,
    label: str = "",
) -> ConstraintSet:
    """Learn a :class:`ConstraintSet` describing the densest region of ``X``.

    Parameters
    ----------
    X:
        Numerical attribute matrix of the partition to profile (e.g. the
        minority-positive partition of the training data).
    config:
        Discovery hyper-parameters; defaults to :class:`DiscoveryConfig`.
    label:
        Optional label attached to the resulting set (used in reports).

    Returns
    -------
    ConstraintSet
        One constraint per retained projection, with importance weights
        derived from the projections' standard deviations.
    """
    config = config or DiscoveryConfig()
    X = check_array(X, name="X")
    if X.shape[0] < 2:
        raise ConstraintError(
            "Constraint discovery needs at least 2 tuples in the profiled partition"
        )

    bundle = discover_projections(
        X,
        include_simple=config.include_simple,
        include_pca=config.include_pca,
        max_pca_components=config.max_pca_components,
    )
    if len(bundle) == 0:
        raise ConstraintError("No candidate projections could be generated")

    candidates = []
    for projection in bundle.projections:
        values = projection.evaluate(X)
        std = float(values.std())
        mean = float(values.mean())
        half_width = config.bound_factor * std
        constraint = ConformanceConstraint(
            projection=projection,
            lower=mean - half_width,
            upper=mean + half_width,
            std=std,
        )
        candidates.append(constraint)

    stds = np.array([c.std for c in candidates], dtype=np.float64)
    max_std = stds.max()
    if max_std <= 0:
        # All projections are constant on this partition: every candidate is
        # perfectly tight, keep them all.
        retained = candidates
    else:
        keep_mask = stds <= config.max_relative_std * max_std
        retained = [c for c, keep in zip(candidates, keep_mask) if keep]
        if len(retained) < config.min_constraints:
            order = np.argsort(stds)
            retained = [candidates[i] for i in order[: config.min_constraints]]

    return ConstraintSet(constraints=retained, label=label)
