"""Conformance constraints and their quantitative violation semantics.

A single constraint is ``lb <= F(X) <= ub`` for a projection ``F``.  A
:class:`ConstraintSet` is an importance-weighted conjunction; its quantitative
violation for a tuple ``t`` follows Eq. (1) of the fairness paper::

    [[Phi]](t)  = sum_i q_i * [[phi_i]](t)
    [[phi_i]](t) = 1 - exp( - dist(F_i, t) / sigma(F_i) )
    dist(F_i, t) = max(0, F_i(t) - ub_i, lb_i - F_i(t))

where ``sigma(F_i)`` is the standard deviation of the projection on the
profiled partition, and the importance weights ``q_i`` sum to one and are
larger for projections with *smaller* standard deviation (tight projections
characterize the partition best).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConstraintError
from repro.profiling.projections import Projection
from repro.utils.validation import check_array


@dataclass(frozen=True)
class ConformanceConstraint:
    """A bounded projection ``lb <= F(X) <= ub``.

    Parameters
    ----------
    projection:
        The linear projection being bounded.
    lower, upper:
        Inclusive bounds learned from the profiled partition.
    std:
        Standard deviation of the projection on the profiled partition; used
        to normalize the out-of-bounds distance in the quantitative
        semantics.  Clamped to a small positive value to avoid division by
        zero on constant projections.
    """

    projection: Projection
    lower: float
    upper: float
    std: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise ConstraintError("Constraint bounds must be finite")
        if self.lower > self.upper:
            raise ConstraintError(
                f"Lower bound {self.lower} exceeds upper bound {self.upper}"
            )
        if self.std < 0:
            raise ConstraintError("Projection standard deviation must be non-negative")

    # ------------------------------------------------------------ semantics
    def distances(self, X) -> np.ndarray:
        """Out-of-bounds distance ``max(0, F(t)-ub, lb-F(t))`` per row."""
        values = self.projection.evaluate(X)
        above = values - self.upper
        below = self.lower - values
        return np.maximum(0.0, np.maximum(above, below))

    def violations(self, X) -> np.ndarray:
        """Quantitative violation ``1 - exp(-dist/std)`` per row, in ``[0, 1)``."""
        scale = max(self.std, 1e-12)
        return 1.0 - np.exp(-self.distances(X) / scale)

    def satisfied(self, X) -> np.ndarray:
        """Boolean semantics: rows whose projection value falls within the bounds."""
        values = self.projection.evaluate(X)
        return (values >= self.lower) & (values <= self.upper)

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        """Render as ``lb <= expr <= ub``."""
        return f"{self.lower:.4f} <= {self.projection.describe(feature_names)} <= {self.upper:.4f}"


@dataclass
class ConstraintSet:
    """An importance-weighted conjunction of conformance constraints.

    The importance weight of constraint ``i`` follows the paper:
    ``q_i = 1 - sigma_i / (max(sigma) - min(sigma))`` normalized to sum to
    one (uniform when all standard deviations are equal).  Lower-variance
    projections therefore dominate the violation score.
    """

    constraints: List[ConformanceConstraint] = field(default_factory=list)
    label: str = ""

    def __post_init__(self) -> None:
        self._weights = self._compute_weights()

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    # ------------------------------------------------------------- weights
    def _compute_weights(self) -> np.ndarray:
        if not self.constraints:
            return np.empty(0, dtype=np.float64)
        stds = np.array([c.std for c in self.constraints], dtype=np.float64)
        spread = stds.max() - stds.min()
        if spread <= 0:
            raw = np.ones_like(stds)
        else:
            raw = 1.0 - stds / spread
            # The paper's formula can produce negative weights for the
            # highest-variance projections; clip at zero so they simply do
            # not contribute, then renormalize.
            raw = np.clip(raw, 0.0, None)
            if raw.sum() <= 0:
                raw = np.ones_like(stds)
        return raw / raw.sum()

    @property
    def weights(self) -> np.ndarray:
        """Importance weights ``q_i`` (non-negative, summing to one)."""
        return self._weights.copy()

    # ----------------------------------------------------------- semantics
    def violation(self, X) -> np.ndarray:
        """Weighted quantitative violation per row of ``X`` (0 = full conformance)."""
        if not self.constraints:
            X = check_array(X, name="X")
            return np.zeros(X.shape[0], dtype=np.float64)
        total = np.zeros(np.asarray(X).shape[0], dtype=np.float64)
        for weight, constraint in zip(self._weights, self.constraints):
            if weight == 0.0:
                continue
            total += weight * constraint.violations(X)
        return total

    def conforming_mask(self, X, tol: float = 0.0) -> np.ndarray:
        """Boolean mask of rows whose total violation is ``<= tol``."""
        return self.violation(X) <= tol

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        """Multi-line, human-readable rendering of the constraint set."""
        header = f"ConstraintSet({self.label!r}, {len(self)} constraints)"
        lines = [header]
        for weight, constraint in zip(self._weights, self.constraints):
            lines.append(f"  [q={weight:.3f}] {constraint.describe(feature_names)}")
        return "\n".join(lines)
