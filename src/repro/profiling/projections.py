"""Linear projections of numerical attributes.

A conformance constraint bounds the value of a *projection*
``F(X) = sum_j c_j * X_j``.  Following Fariha et al., good projections are
directions along which the profiled data has *low variance* — the data is
tightly concentrated there, so a bound on the projection has high
discriminative power.  Discovery therefore returns:

* the "simple" single-attribute projections (one per column), and
* the principal directions of the attribute covariance matrix (all of them;
  the low-variance ones receive the highest importance later on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConstraintError
from repro.utils.validation import check_array


@dataclass(frozen=True)
class Projection:
    """A linear combination of numerical attributes.

    Parameters
    ----------
    coefficients:
        One coefficient per attribute column.
    name:
        Human-readable label used in reports (e.g. ``"X3"`` or ``"pc2"``).
    kind:
        ``"simple"`` for single-attribute projections, ``"pca"`` for principal
        directions of the covariance matrix.
    """

    coefficients: tuple
    name: str = ""
    kind: str = "simple"

    def __post_init__(self) -> None:
        coeffs = tuple(float(c) for c in self.coefficients)
        if len(coeffs) == 0:
            raise ConstraintError("A projection needs at least one coefficient")
        if not all(np.isfinite(coeffs)):
            raise ConstraintError("Projection coefficients must be finite")
        object.__setattr__(self, "coefficients", coeffs)

    @property
    def n_features(self) -> int:
        """Number of attribute columns this projection consumes."""
        return len(self.coefficients)

    def as_array(self) -> np.ndarray:
        """Return the coefficients as a float64 vector."""
        return np.asarray(self.coefficients, dtype=np.float64)

    def evaluate(self, X) -> np.ndarray:
        """Return ``F(X)`` for every row of ``X``."""
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features:
            raise ConstraintError(
                f"Projection expects {self.n_features} attributes, X has {X.shape[1]}"
            )
        return X @ self.as_array()

    def describe(self, feature_names: Optional[Sequence[str]] = None) -> str:
        """Render the projection as a readable linear expression."""
        terms: List[str] = []
        for j, coefficient in enumerate(self.coefficients):
            if coefficient == 0.0:
                continue
            label = feature_names[j] if feature_names is not None else f"X{j}"
            terms.append(f"{coefficient:+.3f}*{label}")
        return " ".join(terms) if terms else "0"


@dataclass
class ProjectionBundle:
    """Projections discovered on a data partition plus their sample variances."""

    projections: List[Projection] = field(default_factory=list)
    variances: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.projections)


def discover_projections(
    X,
    *,
    include_simple: bool = True,
    include_pca: bool = True,
    max_pca_components: Optional[int] = None,
) -> ProjectionBundle:
    """Discover candidate projections for a data partition.

    Parameters
    ----------
    X:
        Numerical attribute matrix of the partition being profiled.
    include_simple:
        Include one identity projection per attribute.
    include_pca:
        Include the eigenvectors of the attribute covariance matrix.  These
        are the projections Fariha et al. target: the low-variance principal
        directions capture near-linear invariants of the partition.
    max_pca_components:
        Optional cap on how many principal directions to keep (lowest-variance
        directions are kept first, since they make the tightest constraints).
    """
    X = check_array(X, name="X")
    n_samples, n_features = X.shape

    bundle = ProjectionBundle()
    if include_simple:
        for j in range(n_features):
            coefficients = tuple(1.0 if k == j else 0.0 for k in range(n_features))
            projection = Projection(coefficients, name=f"X{j}", kind="simple")
            bundle.projections.append(projection)
            bundle.variances.append(float(X[:, j].var()))

    if include_pca and n_samples >= 2 and n_features >= 2:
        centered = X - X.mean(axis=0)
        covariance = (centered.T @ centered) / max(n_samples - 1, 1)
        eigenvalues, eigenvectors = np.linalg.eigh(covariance)
        # eigh returns ascending eigenvalues: low-variance directions first.
        order = np.argsort(eigenvalues)
        if max_pca_components is not None:
            order = order[: max(int(max_pca_components), 0)]
        for rank, index in enumerate(order):
            vector = eigenvectors[:, index]
            # Normalize the sign for reproducibility (largest component positive).
            anchor = int(np.argmax(np.abs(vector)))
            if vector[anchor] < 0:
                vector = -vector
            projection = Projection(tuple(vector.tolist()), name=f"pc{rank}", kind="pca")
            bundle.projections.append(projection)
            bundle.variances.append(float(max(eigenvalues[index], 0.0)))

    return bundle
