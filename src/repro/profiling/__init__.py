"""Conformance Constraints (CC) profiling substrate.

Re-implements the data-profiling primitive of Fariha et al.
("Conformance Constraint Discovery: Measuring Trust in Data-Driven Systems",
SIGMOD 2021) that both ConFair and DiffFair build on:

* :class:`Projection` — a linear combination ``F(X)`` of numerical attributes.
* :class:`ConformanceConstraint` — ``lb <= F(X) <= ub`` with a quantitative
  violation semantics (Eq. 1 of the fairness paper).
* :class:`ConstraintSet` — an importance-weighted conjunction of constraints,
  whose violation for a tuple is the weighted sum of per-constraint violations.
* :func:`discover_constraints` — learn a :class:`ConstraintSet` from a data
  partition (simple per-attribute projections plus low-variance PCA
  projections of the attribute covariance).
"""

from repro.profiling.constraints import ConformanceConstraint, ConstraintSet
from repro.profiling.discovery import DiscoveryConfig, discover_constraints
from repro.profiling.projections import Projection, discover_projections

__all__ = [
    "ConformanceConstraint",
    "ConstraintSet",
    "DiscoveryConfig",
    "Projection",
    "discover_constraints",
    "discover_projections",
]
