"""Grid-hash spatial index for batch fixed-radius neighbour search.

For compact kernels the KDE radius is *known at fit time* (it is the
bandwidth), which admits a structure simpler and flatter than a tree: bin the
training points into axis-aligned cells of side ``cell_size``.  Every point
within ``radius <= cell_size`` of a query then lies in one of the ``3**d``
cells surrounding the query's cell, so a batch radius query is a gather over
at most ``3**d`` hash lookups — vectorized across all query rows, with the
only Python loop running over the fixed cell-offset stencil.

Cells are keyed by flattening integer cell coordinates with row-major
strides into a single int64.  The coordinate box is padded by one cell on
every side so neighbour offsets of in-range queries always encode validly;
construction fails (``ValidationError``) when the padded box cannot be
encoded in an int64 — :func:`GridIndex.is_suitable` lets callers (the
``auto`` backend policy) check cheaply beforehand.
"""

from __future__ import annotations

import itertools
from typing import Tuple

import numpy as np

from repro.density._flatops import (
    _EMPTY_FLOAT,
    _EMPTY_INDEX,
    as_query_matrix,
    pairs_to_csr,
    segment_arange,
    split_csr,
)
from repro.exceptions import ValidationError
from repro.utils.validation import check_array

_KEY_SPACE_LIMIT = 2**62
"""Padded cell-coordinate boxes must flatten into fewer keys than this."""


def _cell_bounds(points: np.ndarray, cell_size: float) -> Tuple[np.ndarray, np.ndarray]:
    """Float (origin, extent) of the padded cell-coordinate box.

    Kept in float space so pathological inputs (coordinates beyond int64)
    can be *detected* rather than silently overflowing in a cast.
    """
    coords = np.floor(points / cell_size)
    origin = coords.min(axis=0) - 1.0  # one-cell pad below
    extent = coords.max(axis=0) - origin + 2.0  # and above
    return origin, extent


def _bounds_fit_int64(origin: np.ndarray, extent: np.ndarray) -> bool:
    """Whether the padded box hashes into the int64 key space."""
    if not (np.all(np.isfinite(origin)) and np.all(np.isfinite(extent))):
        return False
    if np.any(np.abs(origin) >= float(_KEY_SPACE_LIMIT)):
        return False
    total = 1
    for e in extent.tolist():  # Python ints: no silent overflow
        total *= int(e)
        if total >= _KEY_SPACE_LIMIT:
            return False
    return True


class GridIndex:
    """Fixed-radius spatial hash over a point set.

    Parameters
    ----------
    points:
        ``(n_points, n_dims)`` matrix.
    cell_size:
        Side length of the hash cells; queries support radii up to this.
    """

    def __init__(self, points, cell_size: float) -> None:
        if cell_size <= 0:
            raise ValidationError("cell_size must be positive")
        self._points = check_array(points, name="points")
        self.cell_size = float(cell_size)
        self.n_points, self.n_dims = self._points.shape

        origin, extent = _cell_bounds(self._points, self.cell_size)
        if not _bounds_fit_int64(origin, extent):
            raise ValidationError(
                "grid index unsuitable for this data: the padded cell-coordinate box "
                f"(extents {extent.tolist()}) cannot be flattened into int64 keys; "
                "use the kd_tree backend instead"
            )
        self._origin = origin.astype(np.int64)
        self._extent = extent.astype(np.int64)
        strides = np.empty(self.n_dims, dtype=np.int64)
        acc = 1
        for dim in range(self.n_dims - 1, -1, -1):
            strides[dim] = acc
            acc *= int(self._extent[dim])
        self._strides = strides

        shifted = np.floor(self._points / self.cell_size).astype(np.int64) - self._origin
        keys = shifted @ strides
        order = np.argsort(keys, kind="stable")  # stable: in-cell order stays index-ascending
        self._point_order = order
        self._cell_keys, first = np.unique(keys[order], return_index=True)
        self._cell_starts = np.concatenate([first, [self.n_points]]).astype(np.int64)

    @staticmethod
    def is_suitable(points: np.ndarray, cell_size: float) -> bool:
        """Whether the padded cell box of ``points`` fits the int64 key space."""
        if cell_size <= 0:
            return False
        origin, extent = _cell_bounds(np.asarray(points, dtype=np.float64), cell_size)
        return _bounds_fit_int64(origin, extent)

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    @property
    def n_cells(self) -> int:
        """Number of occupied cells."""
        return int(self._cell_keys.size)

    # -------------------------------------------------------------- queries
    def query_radius_batch(self, X, radius: float):
        """Indices of points within ``radius`` of each row of ``X`` (a list)."""
        points, _, indptr = self.query_radius_csr(X, radius)
        return split_csr(points, indptr)

    def query_radius_csr(self, X, radius: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR neighbours of each query row: ``(points, distances, indptr)``.

        Row ``i``'s neighbours are ``points[indptr[i]:indptr[i+1]]`` in
        ascending index order, with matching Euclidean ``distances``.
        """
        if radius < 0:
            raise ValidationError("radius must be non-negative")
        if radius > self.cell_size:
            raise ValidationError(
                f"GridIndex supports radii up to its cell size ({self.cell_size}); "
                f"got radius={radius}"
            )
        queries = self._as_queries(X)
        n_queries = queries.shape[0]
        # Clip far-out cell coordinates (in float space, before the int cast,
        # so extreme queries cannot overflow int64).  Clipped values land on
        # the unoccupied pad ring, so they can never produce false matches.
        shifted = np.floor(queries / self.cell_size) - self._origin
        shifted = np.clip(shifted, -1.0, self._extent.astype(np.float64))
        cells = shifted.astype(np.int64)

        row_parts, point_parts = [], []
        for offset in itertools.product((-1, 0, 1), repeat=self.n_dims):
            neighbour = cells + np.asarray(offset, dtype=np.int64)
            inside = np.all((neighbour >= 0) & (neighbour < self._extent), axis=1)
            if not inside.any():
                continue
            query_ids = np.flatnonzero(inside)
            keys = neighbour[query_ids] @ self._strides
            pos = np.searchsorted(self._cell_keys, keys)
            clipped = np.minimum(pos, self._cell_keys.size - 1)
            hit = (pos < self._cell_keys.size) & (self._cell_keys[clipped] == keys)
            if not hit.any():
                continue
            query_ids = query_ids[hit]
            pos = pos[hit]
            starts = self._cell_starts[pos]
            counts = self._cell_starts[pos + 1] - starts
            rows = np.repeat(query_ids, counts)
            positions = np.repeat(starts, counts) + segment_arange(counts)
            row_parts.append(rows)
            point_parts.append(self._point_order[positions])

        if not row_parts:
            return pairs_to_csr(_EMPTY_INDEX, _EMPTY_INDEX, _EMPTY_FLOAT, n_queries)
        rows = np.concatenate(row_parts)
        points = np.concatenate(point_parts)
        diffs = self._points[points] - queries[rows]
        distances = np.linalg.norm(diffs, axis=1)
        within = distances <= radius
        return pairs_to_csr(rows[within], points[within], distances[within], n_queries)

    # -------------------------------------------------------------- helpers
    def _as_queries(self, X) -> np.ndarray:
        return as_query_matrix(X, self.n_dims, "grid")
