"""A k-d tree with batch (vectorized) nearest-neighbour and radius queries.

Used by :class:`repro.density.kde.KernelDensity` to restrict kernel sums to
points within one bandwidth of the query (relevant for compact kernels), and
exposed on its own as a spatial-index substrate.  Queries are exact.

The tree is stored as **flat arrays** — per-node bounding boxes, split
axis/value, child ids, and a contiguous permutation of the point indices —
rather than linked node objects.  Construction is iterative (an explicit
stack), and the primary query surface is batch-first:

* :meth:`KDTree.query_radius_batch` / :meth:`KDTree.query_radius_csr` — all
  query rows traverse the tree together as a vectorized frontier of
  (query, node) pairs; the Python-level loop runs over tree *levels*, never
  over rows.
* :meth:`KDTree.query_batch` — batch k-nearest-neighbour search: every query
  first descends to its home leaf to seed a distance bound, then the same
  frontier traversal prunes against the per-query k-th best distance.

The single-point :meth:`KDTree.query` and :meth:`KDTree.query_radius`
methods are thin wrappers over the batch API.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.density._flatops import (
    _EMPTY_FLOAT,
    _EMPTY_INDEX,
    as_query_matrix,
    pairs_to_csr,
    segment_arange,
    split_csr,
)
from repro.exceptions import ValidationError
from repro.utils.validation import check_array

# Relative slack applied to box-pruning bounds.  Pruning uses a vectorized
# min-distance-to-box that may round differently (by an ulp) than the exact
# per-point distances computed at the leaves; the slack guarantees no box
# containing an in-range point is ever pruned, while the exact leaf-level
# distance filter keeps results exact.
_PRUNE_SLACK = 1e-9


class KDTree:
    """Exact k-d tree over a point set.

    Parameters
    ----------
    points:
        ``(n_points, n_dims)`` matrix.
    leaf_size:
        Maximum number of points stored in a leaf before splitting stops.
    """

    def __init__(self, points, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValidationError("leaf_size must be at least 1")
        self._points = check_array(points, name="points")
        self.leaf_size = leaf_size
        self.n_points, self.n_dims = self._points.shape
        self._build()

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    # ---------------------------------------------------------------- build
    def _build(self) -> None:
        points = self._points
        index = np.arange(self.n_points, dtype=np.int64)
        starts: List[int] = []
        ends: List[int] = []
        axes: List[int] = []
        splits: List[float] = []
        lefts: List[int] = []
        rights: List[int] = []
        lowers: List[np.ndarray] = []
        uppers: List[np.ndarray] = []

        def add_node(start: int, end: int) -> int:
            node_id = len(starts)
            subset = points[index[start:end]]
            starts.append(start)
            ends.append(end)
            axes.append(-1)
            splits.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            lowers.append(subset.min(axis=0))
            uppers.append(subset.max(axis=0))
            return node_id

        stack = [add_node(0, self.n_points)]
        while stack:
            node = stack.pop()
            start, end = starts[node], ends[node]
            size = end - start
            if size <= self.leaf_size:
                continue
            spreads = uppers[node] - lowers[node]
            axis = int(np.argmax(spreads))
            if spreads[axis] <= 0.0:
                # All remaining points are identical: keep as a leaf.
                continue

            segment = index[start:end]
            values = points[segment, axis]
            median = float(np.median(values))
            left_mask = values <= median
            # Guard against degenerate splits where the median equals the maximum.
            if left_mask.all() or not left_mask.any():
                order = np.argsort(values)
                half = size // 2
                left_mask = np.zeros(size, dtype=bool)
                left_mask[order[:half]] = True

            n_left = int(left_mask.sum())
            index[start:end] = np.concatenate([segment[left_mask], segment[~left_mask]])
            axes[node] = axis
            splits[node] = median
            left = add_node(start, start + n_left)
            right = add_node(start + n_left, end)
            lefts[node] = left
            rights[node] = right
            stack.append(left)
            stack.append(right)

        self._index = index
        self._node_start = np.array(starts, dtype=np.int64)
        self._node_end = np.array(ends, dtype=np.int64)
        self._node_axis = np.array(axes, dtype=np.int64)
        self._node_split = np.array(splits, dtype=np.float64)
        self._node_left = np.array(lefts, dtype=np.int64)
        self._node_right = np.array(rights, dtype=np.int64)
        self._node_lower = np.array(lowers, dtype=np.float64)
        self._node_upper = np.array(uppers, dtype=np.float64)
        self.n_nodes = len(starts)

    # ------------------------------------------------------- batch queries
    def query_radius_batch(self, X, radius: float) -> List[np.ndarray]:
        """Indices of points within ``radius`` of each row of ``X``.

        Returns one ascending int64 index array per query row.  All rows are
        processed in a single vectorized traversal.
        """
        points, _, indptr = self.query_radius_csr(X, radius)
        return split_csr(points, indptr)

    def query_radius_csr(self, X, radius: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR neighbours of each query row: ``(points, distances, indptr)``.

        Row ``i``'s neighbours are ``points[indptr[i]:indptr[i+1]]`` in
        ascending index order, with matching Euclidean ``distances``.
        """
        if radius < 0:
            raise ValidationError("radius must be non-negative")
        queries = self._as_queries(X)
        rows, points, distances = self._radius_pairs(queries, float(radius))
        return pairs_to_csr(rows, points, distances, queries.shape[0])

    def _radius_pairs(
        self, queries: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All (query row, point index, distance) triples within ``radius``."""
        n_queries = queries.shape[0]
        frontier_nodes = np.zeros(n_queries, dtype=np.int64)
        frontier_queries = np.arange(n_queries, dtype=np.int64)
        bound = radius * (1.0 + _PRUNE_SLACK)
        row_parts: List[np.ndarray] = []
        point_parts: List[np.ndarray] = []
        dist_parts: List[np.ndarray] = []

        while frontier_nodes.size:
            min_dist = self._min_distance_to_boxes(frontier_nodes, queries[frontier_queries])
            keep = min_dist <= bound
            frontier_nodes = frontier_nodes[keep]
            frontier_queries = frontier_queries[keep]
            if frontier_nodes.size == 0:
                break

            is_leaf = self._node_axis[frontier_nodes] < 0
            if is_leaf.any():
                rows, points, distances = self._leaf_candidates(
                    frontier_nodes[is_leaf], frontier_queries[is_leaf], queries
                )
                within = distances <= radius
                row_parts.append(rows[within])
                point_parts.append(points[within])
                dist_parts.append(distances[within])

            inner = ~is_leaf
            inner_nodes = frontier_nodes[inner]
            inner_queries = frontier_queries[inner]
            frontier_nodes = np.concatenate(
                [self._node_left[inner_nodes], self._node_right[inner_nodes]]
            )
            frontier_queries = np.concatenate([inner_queries, inner_queries])

        if not row_parts:
            return _EMPTY_INDEX, _EMPTY_INDEX, _EMPTY_FLOAT
        return (
            np.concatenate(row_parts),
            np.concatenate(point_parts),
            np.concatenate(dist_parts),
        )

    def query_batch(self, X, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Distances and indices of the ``k`` nearest neighbours of each row.

        Returns ``(distances, indices)`` of shape ``(n_queries, k)``, sorted
        by ascending distance (ties broken by ascending point index).  Every
        query first descends to its home leaf to seed a distance bound, then
        a shared frontier traversal prunes against the per-query k-th best.
        """
        if k < 1:
            raise ValidationError("k must be at least 1")
        if k > self.n_points:
            raise ValidationError(f"k={k} exceeds the number of indexed points ({self.n_points})")
        queries = self._as_queries(X)
        n_queries = queries.shape[0]
        best_dist = np.full((n_queries, k), np.inf, dtype=np.float64)
        # Sentinel index sorts after every real point on (distance, index) ties.
        best_idx = np.full((n_queries, k), self.n_points, dtype=np.int64)

        # Phase 1: route every query to its home leaf and seed the bounds.
        home_leaf = self._descend_to_leaves(queries)
        rows, points, distances = self._leaf_candidates(
            home_leaf, np.arange(n_queries, dtype=np.int64), queries
        )
        self._merge_topk(best_dist, best_idx, rows, points, distances, k)

        # Phase 2: frontier traversal pruned by the per-query k-th best.
        frontier_nodes = np.zeros(n_queries, dtype=np.int64)
        frontier_queries = np.arange(n_queries, dtype=np.int64)
        while frontier_nodes.size:
            min_dist = self._min_distance_to_boxes(frontier_nodes, queries[frontier_queries])
            keep = min_dist <= best_dist[frontier_queries, k - 1] * (1.0 + _PRUNE_SLACK)
            frontier_nodes = frontier_nodes[keep]
            frontier_queries = frontier_queries[keep]
            if frontier_nodes.size == 0:
                break

            is_leaf = self._node_axis[frontier_nodes] < 0
            # Home leaves were already consumed in phase 1.
            fresh_leaf = is_leaf & (frontier_nodes != home_leaf[frontier_queries])
            if fresh_leaf.any():
                rows, points, distances = self._leaf_candidates(
                    frontier_nodes[fresh_leaf], frontier_queries[fresh_leaf], queries
                )
                self._merge_topk(best_dist, best_idx, rows, points, distances, k)

            inner = ~is_leaf
            inner_nodes = frontier_nodes[inner]
            inner_queries = frontier_queries[inner]
            frontier_nodes = np.concatenate(
                [self._node_left[inner_nodes], self._node_right[inner_nodes]]
            )
            frontier_queries = np.concatenate([inner_queries, inner_queries])

        return best_dist, best_idx

    # ------------------------------------------------- single-point wrappers
    def query_radius(self, point, radius: float) -> np.ndarray:
        """Return the indices of all points within ``radius`` of ``point``."""
        if radius < 0:
            raise ValidationError("radius must be non-negative")
        query = np.asarray(point, dtype=np.float64).ravel()
        points, _, _ = self.query_radius_csr(query.reshape(1, -1), radius)
        return points

    def query(self, point, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Return the distances and indices of the ``k`` nearest neighbours."""
        query = np.asarray(point, dtype=np.float64).ravel()
        distances, indices = self.query_batch(query.reshape(1, -1), k)
        return distances[0], indices[0]

    # -------------------------------------------------------------- helpers
    def _as_queries(self, X) -> np.ndarray:
        return as_query_matrix(X, self.n_dims, "tree")

    def _min_distance_to_boxes(self, nodes: np.ndarray, queries: np.ndarray) -> np.ndarray:
        """Min Euclidean distance from each query to its paired node's box."""
        gap = np.maximum(self._node_lower[nodes] - queries, 0.0)
        gap += np.maximum(queries - self._node_upper[nodes], 0.0)
        return np.linalg.norm(gap, axis=1)

    def _leaf_candidates(
        self, leaf_nodes: np.ndarray, leaf_queries: np.ndarray, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand (leaf, query) pairs into (query row, point, distance) triples."""
        counts = self._node_end[leaf_nodes] - self._node_start[leaf_nodes]
        rows = np.repeat(leaf_queries, counts)
        positions = np.repeat(self._node_start[leaf_nodes], counts) + segment_arange(counts)
        points = self._index[positions]
        diffs = self._points[points] - queries[rows]
        distances = np.linalg.norm(diffs, axis=1)
        return rows, points, distances

    def _descend_to_leaves(self, queries: np.ndarray) -> np.ndarray:
        """Route each query to the leaf its coordinates fall into."""
        current = np.zeros(queries.shape[0], dtype=np.int64)
        active = np.flatnonzero(self._node_axis[current] >= 0)
        while active.size:
            nodes = current[active]
            axis = self._node_axis[nodes]
            go_left = queries[active, axis] <= self._node_split[nodes]
            current[active] = np.where(go_left, self._node_left[nodes], self._node_right[nodes])
            active = active[self._node_axis[current[active]] >= 0]
        return current

    def _merge_topk(
        self,
        best_dist: np.ndarray,
        best_idx: np.ndarray,
        rows: np.ndarray,
        points: np.ndarray,
        distances: np.ndarray,
        k: int,
    ) -> None:
        """Fold candidate (row, point, distance) triples into the running top-k."""
        if rows.size == 0:
            return
        affected = np.unique(rows)
        cand_rows = np.concatenate([rows, np.repeat(affected, k)])
        cand_dist = np.concatenate([distances, best_dist[affected].ravel()])
        cand_idx = np.concatenate([points, best_idx[affected].ravel()])
        order = np.lexsort((cand_idx, cand_dist, cand_rows))
        cand_rows = cand_rows[order]
        cand_dist = cand_dist[order]
        cand_idx = cand_idx[order]
        # Rank of each candidate within its query segment; keep ranks < k.
        boundaries = np.flatnonzero(np.diff(cand_rows)) + 1
        seg_starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
        seg_counts = np.diff(np.concatenate([seg_starts, [cand_rows.size]]))
        ranks = np.arange(cand_rows.size, dtype=np.int64) - np.repeat(seg_starts, seg_counts)
        take = ranks < k
        best_dist[cand_rows[take], ranks[take]] = cand_dist[take]
        best_idx[cand_rows[take], ranks[take]] = cand_idx[take]
