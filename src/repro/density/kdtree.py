"""A k-d tree with nearest-neighbour and radius queries.

Used by :class:`repro.density.kde.KernelDensity` to restrict kernel sums to
points within a few bandwidths of the query (relevant for compact kernels),
and exposed on its own as a spatial-index substrate.  The implementation is a
classic median-split k-d tree over a numpy array; queries are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_array


@dataclass
class _KDNode:
    """Internal node: splitting axis/value plus bounding box of its subtree."""

    indices: np.ndarray
    axis: int = -1
    split_value: float = 0.0
    left: Optional["_KDNode"] = None
    right: Optional["_KDNode"] = None
    lower_bound: Optional[np.ndarray] = None
    upper_bound: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class KDTree:
    """Exact k-d tree over a point set.

    Parameters
    ----------
    points:
        ``(n_points, n_dims)`` matrix.
    leaf_size:
        Maximum number of points stored in a leaf before splitting stops.
    """

    def __init__(self, points, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValidationError("leaf_size must be at least 1")
        self._points = check_array(points, name="points")
        self.leaf_size = leaf_size
        self.n_points, self.n_dims = self._points.shape
        self._root = self._build(np.arange(self.n_points), depth=0)

    @property
    def points(self) -> np.ndarray:
        """The indexed points (read-only view)."""
        view = self._points.view()
        view.flags.writeable = False
        return view

    # ---------------------------------------------------------------- build
    def _build(self, indices: np.ndarray, depth: int) -> _KDNode:
        subset = self._points[indices]
        node = _KDNode(
            indices=indices,
            lower_bound=subset.min(axis=0),
            upper_bound=subset.max(axis=0),
        )
        if indices.size <= self.leaf_size:
            return node

        spreads = node.upper_bound - node.lower_bound
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            # All remaining points are identical: keep as a leaf.
            return node

        values = subset[:, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against degenerate splits where the median equals the maximum.
        if left_mask.all() or not left_mask.any():
            order = np.argsort(values)
            half = indices.size // 2
            left_mask = np.zeros(indices.size, dtype=bool)
            left_mask[order[:half]] = True

        node.axis = axis
        node.split_value = median
        node.left = self._build(indices[left_mask], depth + 1)
        node.right = self._build(indices[~left_mask], depth + 1)
        return node

    # -------------------------------------------------------------- queries
    def query_radius(self, point, radius: float) -> np.ndarray:
        """Return the indices of all points within ``radius`` of ``point``."""
        if radius < 0:
            raise ValidationError("radius must be non-negative")
        query = self._as_query(point)
        found: List[int] = []
        self._radius_search(self._root, query, radius, found)
        return np.array(sorted(found), dtype=np.int64)

    def _radius_search(self, node: _KDNode, query: np.ndarray, radius: float, found: List[int]) -> None:
        if self._min_distance_to_box(node, query) > radius:
            return
        if node.is_leaf:
            subset = self._points[node.indices]
            distances = np.linalg.norm(subset - query, axis=1)
            found.extend(node.indices[distances <= radius].tolist())
            return
        self._radius_search(node.left, query, radius, found)
        self._radius_search(node.right, query, radius, found)

    def query(self, point, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Return the distances and indices of the ``k`` nearest neighbours."""
        if k < 1:
            raise ValidationError("k must be at least 1")
        if k > self.n_points:
            raise ValidationError(f"k={k} exceeds the number of indexed points ({self.n_points})")
        query = self._as_query(point)
        # (distance, index) pairs of the best candidates found so far.
        best: List[Tuple[float, int]] = []
        self._knn_search(self._root, query, k, best)
        best.sort()
        distances = np.array([d for d, _ in best], dtype=np.float64)
        indices = np.array([i for _, i in best], dtype=np.int64)
        return distances, indices

    def _knn_search(self, node: _KDNode, query: np.ndarray, k: int, best: List[Tuple[float, int]]) -> None:
        worst = best[-1][0] if len(best) == k else np.inf
        if self._min_distance_to_box(node, query) > worst:
            return
        if node.is_leaf:
            subset = self._points[node.indices]
            distances = np.linalg.norm(subset - query, axis=1)
            for distance, index in zip(distances, node.indices):
                if len(best) < k:
                    best.append((float(distance), int(index)))
                    best.sort()
                elif distance < best[-1][0]:
                    best[-1] = (float(distance), int(index))
                    best.sort()
            return
        # Visit the child containing the query first for better pruning.
        if query[node.axis] <= node.split_value:
            first, second = node.left, node.right
        else:
            first, second = node.right, node.left
        self._knn_search(first, query, k, best)
        self._knn_search(second, query, k, best)

    # -------------------------------------------------------------- helpers
    def _as_query(self, point) -> np.ndarray:
        query = np.asarray(point, dtype=np.float64).ravel()
        if query.shape[0] != self.n_dims:
            raise ValidationError(
                f"Query point has {query.shape[0]} dimensions, tree holds {self.n_dims}"
            )
        if not np.all(np.isfinite(query)):
            raise ValidationError("Query point contains NaN or infinite values")
        return query

    @staticmethod
    def _min_distance_to_box(node: _KDNode, query: np.ndarray) -> float:
        below = np.maximum(0.0, node.lower_bound - query)
        above = np.maximum(0.0, query - node.upper_bound)
        return float(np.linalg.norm(below + above))
