"""Vectorized segment primitives shared by the batch spatial indexes.

The batch KD-tree and grid-hash backends both produce *ragged* results — a
variable-length neighbour list per query row — flattened into CSR form
(``values`` plus an ``indptr`` of segment boundaries).  These helpers are the
loop-free building blocks for that representation:

* :func:`segment_arange` expands segment sizes into per-segment offsets,
  which turns "gather each node's slice of points" into one fancy index;
* :func:`pairs_to_csr` sorts candidate (row, point) pairs into per-row
  index-ascending CSR layout;
* :func:`segment_sums` reduces each segment with numpy's own pairwise
  summation, **bit-identical** to calling ``segment.sum()`` per segment.

The bit-identity of :func:`segment_sums` is what lets the batch KDE engine
guarantee byte-for-byte the same log-densities as the seed per-row
implementation: numpy's pairwise reduction over the last axis depends only on
the segment *length*, so grouping equal-length segments into a matrix and
reducing ``axis=1`` reproduces every per-segment ``np.sum`` exactly while the
Python-level work scales with the number of distinct lengths, not rows.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.exceptions import ValidationError

_EMPTY_INDEX = np.empty(0, dtype=np.int64)
_EMPTY_FLOAT = np.empty(0, dtype=np.float64)


def as_query_matrix(X, n_dims: int, holder: str) -> np.ndarray:
    """Validate query input into a finite ``(n_queries, n_dims)`` float matrix.

    Shared by every spatial index so query validation cannot drift between
    backends.  ``holder`` names the index in error messages ("tree", "grid").
    """
    queries = np.asarray(X, dtype=np.float64)
    if queries.ndim == 1:
        queries = queries.reshape(1, -1)
    if queries.ndim != 2 or queries.shape[1] != n_dims:
        raise ValidationError(
            f"Query point has {queries.shape[-1] if queries.ndim else 0} dimensions, "
            f"{holder} holds {n_dims}"
        )
    if not np.all(np.isfinite(queries)):
        raise ValidationError("Query point contains NaN or infinite values")
    return queries


def split_csr(points: np.ndarray, indptr: np.ndarray) -> List[np.ndarray]:
    """Split CSR ``points`` into one array per segment (empty input -> [])."""
    if indptr.size <= 1:
        return []
    return np.split(points, indptr[1:-1])


def segment_arange(counts: np.ndarray) -> np.ndarray:
    """Return ``[0..c0-1, 0..c1-1, ...]`` for the segment sizes in ``counts``."""
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def pairs_to_csr(
    rows: np.ndarray,
    points: np.ndarray,
    distances: np.ndarray,
    n_rows: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sort candidate (row, point, distance) triples into CSR form.

    Returns ``(points, distances, indptr)`` where segment ``i`` —
    ``points[indptr[i]:indptr[i+1]]`` — holds row ``i``'s neighbours in
    ascending point-index order (the order the seed implementation produced
    via ``sorted(found)``).
    """
    if rows.size and n_rows * (int(points.max()) + 1) < 2**62:
        # Single-key radix sort: noticeably faster than a two-key lexsort.
        order = np.argsort(rows * np.int64(int(points.max()) + 1) + points, kind="stable")
    else:
        order = np.lexsort((points, rows))
    rows = rows[order]
    counts = np.bincount(rows, minlength=n_rows)
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    return points[order], distances[order], indptr


def segment_sums(values: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values``, bit-identical to per-segment ``np.sum``.

    Empty segments sum to ``0.0``.  See the module docstring for why the
    grouped-by-length reduction is exact.
    """
    counts = np.diff(indptr)
    out = np.zeros(counts.size, dtype=np.float64)
    if values.size == 0 or counts.size == 0:
        return out
    starts = indptr[:-1]
    for length in np.unique(counts):
        if length == 0:
            continue
        segments = np.flatnonzero(counts == length)
        block = values[starts[segments][:, None] + np.arange(length)]
        out[segments] = block.sum(axis=1)
    return out
