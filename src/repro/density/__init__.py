"""Kernel density estimation substrate — a batch-first, pluggable engine.

Algorithm 3 of the paper ranks tuples by their estimated density (using a
tree-based, non-parametric kernel density estimator) and keeps the densest
``k`` tuples per partition.  This subpackage rebuilds that substrate around
vectorized spatial indexes:

* :class:`KDTree` — a flat array-based k-d tree (iterative build) whose
  ``query_radius_batch`` / ``query_batch`` process every query row in one
  vectorized frontier traversal; the single-point ``query`` /
  ``query_radius`` methods are thin wrappers over the batch API.
* :class:`GridIndex` — a spatial hash with bandwidth-sized cells: for
  compact kernels, radius search is a ``3**d``-cell gather.
* :class:`KernelDensity` — Gaussian / tophat / Epanechnikov KDE whose
  ``score_samples`` dispatches on the :class:`DensityBackend` protocol,
  plus Scott's and Silverman's bandwidth rules.

Backend selection (``KernelDensity(algorithm=...)``)
----------------------------------------------------

``"brute"`` evaluates blockwise pairwise distances and supports every
kernel; it is always used for the Gaussian kernel, whose support is
unbounded.  ``"kd_tree"`` and ``"grid"`` exploit compact kernels (tophat /
Epanechnikov): only training points within one bandwidth contribute, so the
kernel sum reduces to a batch radius query.  ``"auto"`` (the default) picks,
for compact kernels on at least ``4 * leaf_size`` rows, the grid when the
data has at most 3 dimensions and its cell box hashes into int64 keys, and
the KD-tree otherwise; everything else scores brute.  Fitted structures are
memoized across fits by a content-keyed LRU (:func:`get_backend` /
:func:`clear_backend_cache`), so Algorithm 3 sweeps never rebuild an index
for a partition they already profiled.

The engine carries a *frozen-equivalence guarantee*, enforced by the
equivalence suite in ``tests/test_density_engine.py`` against the seed
per-row implementation preserved in :mod:`repro.density.reference`: the
``kd_tree`` and ``grid`` backends return log-densities (and density ranks)
bit-identical to the seed tree path — and to each other — while ``brute``
is the seed blockwise code unchanged.  Across the brute/tree divide the two
distance expansions agree to ulp precision, not bit for bit.
``KernelDensity(dtype="float32")`` is an opt-in single-precision path for
the distance kernels; the float64 default *is* the frozen reference, and the
float32 path is gated on rank-equivalence against it (ranks are what
Algorithm 3 consumes).

Thread safety
-------------
The engine is designed to be shared by concurrent fits (parallel partition
profiling, ``run_repeated`` worker threads):

* the module-level backend LRU behind :func:`get_backend` is guarded by a
  single lock around lookup/insert/evict and **deduplicates builds
  per key** — two threads profiling the same partition wait on one
  construction instead of building the structure twice
  (:func:`backend_cache_stats` exposes hits/builds/evictions/waits);
* fitted backends, :class:`KDTree`, and :class:`GridIndex` are immutable
  after construction and safe to query from any number of threads;
* a fitted :class:`KernelDensity` is safe for concurrent
  ``score_samples`` / ``density_rank`` calls.  ``fit`` itself mutates the
  estimator, so do not share one *unfitted* estimator across threads —
  fit per thread (the backend cache makes refits over the same partition
  cheap) or fit once before fanning out.
"""

from repro.density.backends import (
    ALGORITHM_NAMES,
    BACKEND_NAMES,
    BruteBackend,
    DensityBackend,
    GridBackend,
    KDTreeBackend,
    backend_cache_size,
    backend_cache_stats,
    clear_backend_cache,
    get_backend,
    resolve_algorithm,
)
from repro.density.grid import GridIndex
from repro.density.kde import KernelDensity, scott_bandwidth, silverman_bandwidth
from repro.density.kdtree import KDTree
from repro.density.kernels import (
    COMPACT_KERNELS,
    epanechnikov_kernel,
    gaussian_kernel,
    kernel_by_name,
    tophat_kernel,
)

__all__ = [
    "ALGORITHM_NAMES",
    "BACKEND_NAMES",
    "COMPACT_KERNELS",
    "BruteBackend",
    "DensityBackend",
    "GridBackend",
    "GridIndex",
    "KDTree",
    "KDTreeBackend",
    "KernelDensity",
    "backend_cache_size",
    "backend_cache_stats",
    "clear_backend_cache",
    "epanechnikov_kernel",
    "gaussian_kernel",
    "get_backend",
    "kernel_by_name",
    "resolve_algorithm",
    "scott_bandwidth",
    "silverman_bandwidth",
    "tophat_kernel",
]
