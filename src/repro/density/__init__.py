"""Kernel density estimation substrate.

Algorithm 3 of the paper ranks tuples by their estimated density (using a
tree-based, non-parametric kernel density estimator from scikit-learn) and
keeps the densest ``k`` tuples per partition.  This subpackage rebuilds that
substrate:

* :class:`KDTree` — a k-d tree with range queries, used to prune kernel sums.
* :class:`KernelDensity` — Gaussian / tophat / Epanechnikov KDE with either a
  brute-force or a KD-tree backed evaluation, plus Scott's and Silverman's
  bandwidth rules.
"""

from repro.density.kde import KernelDensity, scott_bandwidth, silverman_bandwidth
from repro.density.kdtree import KDTree
from repro.density.kernels import epanechnikov_kernel, gaussian_kernel, kernel_by_name, tophat_kernel

__all__ = [
    "KDTree",
    "KernelDensity",
    "epanechnikov_kernel",
    "gaussian_kernel",
    "kernel_by_name",
    "scott_bandwidth",
    "silverman_bandwidth",
    "tophat_kernel",
]
