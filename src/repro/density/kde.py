"""Kernel density estimation over pluggable batch backends.

This mirrors the scikit-learn ``KernelDensity`` API used by Algorithm 3 of
the paper: ``fit(X)`` then ``score_samples(X)`` returning log-densities.
Only the *relative ranking* of densities matters to the density-filtering
optimization, but the estimator is a proper normalized KDE so it is usable as
a general substrate (and testable against analytic ground truth).

``score_samples`` is batch-first: the whole query matrix is evaluated by one
of the :class:`~repro.density.backends.DensityBackend` implementations
(``brute``, ``kd_tree``, ``grid``) with no Python loop over rows.  Backend
selection is explicit via ``algorithm=`` (see :meth:`KernelDensity.fit`),
and fitted structures are memoized across fits of the same partition by the
backend cache in :mod:`repro.density.backends`.

The frozen-equivalence guarantee (see :mod:`repro.density.reference`): each
backend is bit-identical to the seed implementation's corresponding
evaluation path — ``kd_tree`` and ``grid`` reproduce the seed's per-row tree
scoring exactly (and are bit-identical to *each other*; they share the same
arithmetic), and ``brute`` is the seed blockwise code unchanged.  ``brute``
and the tree/grid pair use different (equally exact) distance expansions, so
across that divide log-densities agree to ulp precision rather than bit for
bit.
"""

from __future__ import annotations

import numpy as np

from repro.density.backends import (
    ALGORITHM_NAMES,
    BACKEND_NAMES,
    get_backend,
    resolve_algorithm,
)
from repro.density.kernels import COMPACT_KERNELS, kernel_by_name, log_normalization
from repro.exceptions import ValidationError
from repro.learners.base import BaseEstimator
from repro.utils.validation import check_array


def scott_bandwidth(X: np.ndarray) -> float:
    """Scott's rule of thumb: ``n**(-1/(d+4))`` times the mean feature std."""
    X = check_array(X, name="X")
    n_samples, n_dims = X.shape
    sigma = float(np.mean(X.std(axis=0)))
    if sigma <= 0:
        sigma = 1.0
    return sigma * n_samples ** (-1.0 / (n_dims + 4.0))


def silverman_bandwidth(X: np.ndarray) -> float:
    """Silverman's rule of thumb: ``(n*(d+2)/4)**(-1/(d+4))`` times the mean std."""
    X = check_array(X, name="X")
    n_samples, n_dims = X.shape
    sigma = float(np.mean(X.std(axis=0)))
    if sigma <= 0:
        sigma = 1.0
    return sigma * (n_samples * (n_dims + 2.0) / 4.0) ** (-1.0 / (n_dims + 4.0))


class KernelDensity(BaseEstimator):
    """Kernel density estimator with pluggable batch backends.

    Parameters
    ----------
    bandwidth:
        Positive kernel bandwidth, or ``"scott"`` / ``"silverman"`` to derive
        it from the training data.
    kernel:
        ``"gaussian"``, ``"tophat"``, or ``"epanechnikov"``.
    algorithm:
        Which :class:`~repro.density.backends.DensityBackend` evaluates
        ``score_samples``:

        * ``"brute"`` — blockwise pairwise distances (every kernel);
        * ``"kd_tree"`` — batch KD-tree radius search (compact kernels;
          silently scores brute for the Gaussian kernel, whose support is
          unbounded);
        * ``"grid"`` — bandwidth-sized spatial hash, a ``3**d``-cell gather
          per query (compact kernels on hashable data only — otherwise
          ``fit`` raises :class:`~repro.exceptions.ValidationError`);
        * ``"auto"`` (default) — for compact kernels on at least
          ``4 * leaf_size`` rows: the grid when the data has at most 3
          dimensions and hashes cleanly, the KD-tree otherwise; brute for
          everything else (including the Gaussian kernel always).

        ``kd_tree`` and ``grid`` return bit-identical log-densities (to each
        other and to the seed tree path); ``brute`` agrees with them to ulp
        precision, so ranks can differ only between genuinely tied
        densities.  The resolved name is stored as ``algorithm_`` after
        :meth:`fit`.
    leaf_size:
        Leaf size of the KD-tree backend.
    dtype:
        Working precision of the distance kernels: ``"float64"`` (default,
        the frozen-reference precision) or ``"float32"``, an opt-in speed
        path that stores the training sample and evaluates the pairwise
        distance kernels in single precision (roughly halving the memory
        traffic of the brute backend's blockwise matmul — the Gaussian
        kernel's only evaluation path).  The bandwidth is always resolved
        from the float64 data, and log-densities are returned as float64
        arrays either way.  Absolute log-densities shift by float32
        round-off; what Algorithm 3 consumes is the density *ranking*, whose
        equivalence against the float64 reference is gated by the test
        suite (``tests/test_parallel_profiling.py``) — rank flips can occur
        only between rows whose densities are closer than single-precision
        resolution.  The spatial-index backends (``kd_tree``/``grid``)
        compute their exact distances in float64 regardless.
    """

    _COMPACT_KERNELS = COMPACT_KERNELS  # kept for backward compatibility

    # Fitted attributes that fully determine predictions; the backend
    # structure itself is derived state — it is rebuilt lazily from
    # ``algorithm_`` + the training sample (via the backend cache) after a
    # load, which keeps artifacts small and the round trip bit-identical.
    _state_attributes = ("bandwidth_", "training_data_", "n_features_", "algorithm_")

    def __init__(
        self,
        bandwidth="scott",
        kernel: str = "gaussian",
        algorithm: str = "auto",
        leaf_size: int = 32,
        dtype: str = "float64",
    ) -> None:
        self.bandwidth = bandwidth
        self.kernel = kernel
        self.algorithm = algorithm
        self.leaf_size = leaf_size
        self.dtype = dtype

    # -------------------------------------------------------------------- fit
    def fit(self, X) -> "KernelDensity":
        """Store the training sample and resolve the bandwidth/backend."""
        X = check_array(X, name="X")
        kernel_by_name(self.kernel)  # validate the kernel name early
        if self.algorithm not in ALGORITHM_NAMES:
            raise ValidationError(
                "algorithm must be 'auto', 'brute', 'kd_tree', or 'grid'"
            )
        if str(self.dtype) not in ("float64", "float32"):
            raise ValidationError("dtype must be 'float64' or 'float32'")

        if isinstance(self.bandwidth, str):
            rule = self.bandwidth.strip().lower()
            if rule == "scott":
                resolved = scott_bandwidth(X)
            elif rule == "silverman":
                resolved = silverman_bandwidth(X)
            else:
                raise ValidationError(
                    f"Unknown bandwidth rule {self.bandwidth!r}; use 'scott' or 'silverman'"
                )
        else:
            resolved = float(self.bandwidth)
        if resolved <= 0:
            raise ValidationError("bandwidth must resolve to a positive value")

        self.bandwidth_ = resolved
        # The bandwidth above is always resolved from the float64 data; the
        # opt-in float32 path only lowers the precision of the stored sample
        # and the distance kernels evaluated against it.
        self.training_data_ = X.astype(np.dtype(str(self.dtype)), copy=True)
        self.n_features_ = X.shape[1]
        self.algorithm_ = resolve_algorithm(
            self.algorithm,
            self.kernel,
            self.training_data_,
            leaf_size=self.leaf_size,
            bandwidth=resolved,
        )
        self._backend = get_backend(
            self.algorithm_,
            self.training_data_,
            leaf_size=self.leaf_size,
            bandwidth=resolved,
        )
        return self

    def _get_backend(self):
        """The fitted backend, rebuilt (cache-assisted) after deserialization."""
        backend = getattr(self, "_backend", None)
        if backend is None:
            backend = get_backend(
                self.algorithm_,
                self.training_data_,
                leaf_size=self.leaf_size,
                bandwidth=self.bandwidth_,
            )
            self._backend = backend
        return backend

    def load_state_dict(self, state):
        """Restore fitted state, validating the named backend exists."""
        algorithm = state.get("algorithm_")
        if algorithm is not None and algorithm not in BACKEND_NAMES:
            raise ValidationError(
                f"KernelDensity state names unknown density backend {algorithm!r}; "
                f"this build provides {BACKEND_NAMES}"
            )
        super().load_state_dict(state)
        self._backend = None  # rebuilt lazily via the backend cache
        return self

    # ------------------------------------------------------------------ score
    def score_samples(self, X) -> np.ndarray:
        """Return the log-density of each row of ``X`` under the fitted KDE.

        The whole batch is evaluated by the fitted backend in one vectorized
        pass; rows with zero density (outside every kernel's support) score
        ``-inf``.
        """
        self._check_fitted("training_data_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features, estimator was fitted with {self.n_features_}"
            )
        log_norm = log_normalization(self.kernel, self.bandwidth_, self.n_features_)
        n_train = self.training_data_.shape[0]
        # Queries are evaluated in the training sample's precision (the
        # float32 path would otherwise be silently promoted back to float64
        # inside the pairwise-distance matmul).
        X = X.astype(self.training_data_.dtype, copy=False)
        densities = self._get_backend().kernel_sums(X, self.kernel, self.bandwidth_)
        densities = np.asarray(densities, dtype=np.float64)
        with np.errstate(divide="ignore"):
            log_density = np.log(densities) - np.log(n_train) + log_norm
        return log_density

    def score(self, X) -> float:
        """Total log-likelihood of ``X`` under the fitted KDE."""
        return float(np.sum(self.score_samples(X)))

    def density_rank(self, X) -> np.ndarray:
        """Return ranks of rows by descending density (0 = densest row)."""
        log_density = self.score_samples(X)
        order = np.argsort(-log_density, kind="mergesort")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.size)
        return ranks
