"""Kernel density estimation with brute-force and KD-tree backends.

This mirrors the scikit-learn ``KernelDensity`` API used by Algorithm 3 of
the paper: ``fit(X)`` then ``score_samples(X)`` returning log-densities.
Only the *relative ranking* of densities matters to the density-filtering
optimization, but the estimator is a proper normalized KDE so it is usable as
a general substrate (and testable against analytic ground truth).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import BaseEstimator
from repro.density.kdtree import KDTree
from repro.density.kernels import kernel_by_name, log_normalization
from repro.utils.validation import check_array


def scott_bandwidth(X: np.ndarray) -> float:
    """Scott's rule of thumb: ``n**(-1/(d+4))`` times the mean feature std."""
    X = check_array(X, name="X")
    n_samples, n_dims = X.shape
    sigma = float(np.mean(X.std(axis=0)))
    if sigma <= 0:
        sigma = 1.0
    return sigma * n_samples ** (-1.0 / (n_dims + 4.0))


def silverman_bandwidth(X: np.ndarray) -> float:
    """Silverman's rule of thumb: ``(n*(d+2)/4)**(-1/(d+4))`` times the mean std."""
    X = check_array(X, name="X")
    n_samples, n_dims = X.shape
    sigma = float(np.mean(X.std(axis=0)))
    if sigma <= 0:
        sigma = 1.0
    return sigma * (n_samples * (n_dims + 2.0) / 4.0) ** (-1.0 / (n_dims + 4.0))


class KernelDensity(BaseEstimator):
    """Kernel density estimator.

    Parameters
    ----------
    bandwidth:
        Positive kernel bandwidth, or ``"scott"`` / ``"silverman"`` to derive
        it from the training data.
    kernel:
        ``"gaussian"``, ``"tophat"``, or ``"epanechnikov"``.
    algorithm:
        ``"auto"`` (KD-tree for compact kernels on reasonably sized data,
        brute force otherwise), ``"brute"``, or ``"kd_tree"``.
    leaf_size:
        Leaf size of the KD-tree backend.
    """

    _COMPACT_KERNELS = ("tophat", "epanechnikov")

    def __init__(
        self,
        bandwidth="scott",
        kernel: str = "gaussian",
        algorithm: str = "auto",
        leaf_size: int = 32,
    ) -> None:
        self.bandwidth = bandwidth
        self.kernel = kernel
        self.algorithm = algorithm
        self.leaf_size = leaf_size

    # -------------------------------------------------------------------- fit
    def fit(self, X) -> "KernelDensity":
        """Store the training sample and resolve the bandwidth/backend."""
        X = check_array(X, name="X")
        kernel_by_name(self.kernel)  # validate the kernel name early
        if self.algorithm not in ("auto", "brute", "kd_tree"):
            raise ValidationError("algorithm must be 'auto', 'brute', or 'kd_tree'")

        if isinstance(self.bandwidth, str):
            rule = self.bandwidth.strip().lower()
            if rule == "scott":
                resolved = scott_bandwidth(X)
            elif rule == "silverman":
                resolved = silverman_bandwidth(X)
            else:
                raise ValidationError(
                    f"Unknown bandwidth rule {self.bandwidth!r}; use 'scott' or 'silverman'"
                )
        else:
            resolved = float(self.bandwidth)
        if resolved <= 0:
            raise ValidationError("bandwidth must resolve to a positive value")

        self.bandwidth_ = resolved
        self.training_data_ = X.copy()
        self.n_features_ = X.shape[1]

        use_tree = self.algorithm == "kd_tree" or (
            self.algorithm == "auto"
            and self.kernel in self._COMPACT_KERNELS
            and X.shape[0] >= 4 * self.leaf_size
        )
        self._tree = KDTree(X, leaf_size=self.leaf_size) if use_tree else None
        return self

    # ------------------------------------------------------------------ score
    def score_samples(self, X) -> np.ndarray:
        """Return the log-density of each row of ``X`` under the fitted KDE."""
        self._check_fitted("training_data_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features, estimator was fitted with {self.n_features_}"
            )
        kernel_fn = kernel_by_name(self.kernel)
        log_norm = log_normalization(self.kernel, self.bandwidth_, self.n_features_)
        n_train = self.training_data_.shape[0]

        densities = np.empty(X.shape[0], dtype=np.float64)
        if self._tree is not None and self.kernel in self._COMPACT_KERNELS:
            # Compact support: only points within one bandwidth contribute.
            for i, row in enumerate(X):
                neighbour_idx = self._tree.query_radius(row, self.bandwidth_)
                if neighbour_idx.size == 0:
                    densities[i] = 0.0
                    continue
                diffs = self.training_data_[neighbour_idx] - row
                scaled = np.linalg.norm(diffs, axis=1) / self.bandwidth_
                densities[i] = float(kernel_fn(scaled).sum())
        else:
            # Brute force in manageable blocks to bound memory; pairwise
            # distances via the expansion ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b
            # so no (block, n_train, n_features) intermediate is materialized.
            train_sq = np.einsum("ij,ij->i", self.training_data_, self.training_data_)
            block = max(1, int(4e6 // max(n_train, 1)))
            for start in range(0, X.shape[0], block):
                chunk = X[start : start + block]
                chunk_sq = np.einsum("ij,ij->i", chunk, chunk)
                squared = chunk_sq[:, None] + train_sq[None, :] - 2.0 * (chunk @ self.training_data_.T)
                np.maximum(squared, 0.0, out=squared)
                scaled = np.sqrt(squared) / self.bandwidth_
                densities[start : start + block] = kernel_fn(scaled).sum(axis=1)

        with np.errstate(divide="ignore"):
            log_density = np.log(densities) - np.log(n_train) + log_norm
        return log_density

    def score(self, X) -> float:
        """Total log-likelihood of ``X`` under the fitted KDE."""
        return float(np.sum(self.score_samples(X)))

    def density_rank(self, X) -> np.ndarray:
        """Return ranks of rows by descending density (0 = densest row)."""
        log_density = self.score_samples(X)
        order = np.argsort(-log_density, kind="mergesort")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.size)
        return ranks
