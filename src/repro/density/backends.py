"""Pluggable, batch-first density-evaluation backends for ``KernelDensity``.

A backend is a fitted structure over the training sample that evaluates, for
a whole batch of query rows at once, the *unnormalized kernel sum*

    ``S(x) = sum_i K(||x - x_i|| / h)``

(:class:`~repro.density.kde.KernelDensity` turns that into a normalized
log-density).  Three backends implement the :class:`DensityBackend`
protocol:

``brute``
    Blockwise pairwise distances against every training point.  Works for
    every kernel; the only choice for the Gaussian kernel, whose support is
    unbounded.
``kd_tree``
    The flat-array batch :class:`~repro.density.kdtree.KDTree`: compact
    kernels (tophat / Epanechnikov) only touch training points within one
    bandwidth, so the kernel sum is a vectorized radius query plus an exact
    per-row reduction.
``grid``
    The :class:`~repro.density.grid.GridIndex` spatial hash with
    bandwidth-sized cells: radius search becomes a ``3**d``-cell gather.
    Only built for low-dimensional data (the stencil grows as ``3**d``).

Each backend is **bit-identical** to the seed implementation's matching
path: the tree and grid backends feed the exact same per-neighbour distances
through the exact same per-row summation the seed tree path used (see
:mod:`repro.density._flatops`) — making them bit-identical to each other as
well — and the brute backend is the seed blockwise code unchanged.  Brute
computes distances via a different (equally exact) expansion, so brute vs
tree/grid sums agree to ulp precision rather than bit for bit.

Backends are memoized in a small module-level LRU keyed by a content
fingerprint of the training sample plus the structure parameters, so
repeated fits over the same partition — ConFair degree sweeps, Algorithm 3
re-runs, profile rebuilds — never rebuild a tree or grid they already built.
"""

from __future__ import annotations

import abc
import hashlib
import threading
from collections import OrderedDict
from typing import ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.density._flatops import segment_sums
from repro.density.grid import GridIndex
from repro.density.kdtree import KDTree
from repro.density.kernels import COMPACT_KERNELS, kernel_by_name
from repro.exceptions import ValidationError
from repro.telemetry import get_registry as _get_telemetry_registry

BACKEND_NAMES: Tuple[str, ...] = ("brute", "kd_tree", "grid")
"""Concrete backend names a fitted ``KernelDensity`` may reference."""

ALGORITHM_NAMES: Tuple[str, ...] = ("auto",) + BACKEND_NAMES
"""Valid values of ``KernelDensity(algorithm=...)``."""

_MAX_GRID_DIMS = 3
"""``auto`` only picks the grid backend up to this dimensionality (3**d stencil)."""


class DensityBackend(abc.ABC):
    """Protocol for batch kernel-sum evaluation over a fixed training sample."""

    name: ClassVar[str]

    @abc.abstractmethod
    def kernel_sums(self, X: np.ndarray, kernel: str, bandwidth: float) -> np.ndarray:
        """Unnormalized kernel sums ``S(x)`` for every row of ``X``."""


class BruteBackend(DensityBackend):
    """Blockwise brute-force evaluation (every kernel; the seed code path)."""

    name = "brute"

    def __init__(self, training_data: np.ndarray) -> None:
        self._train = training_data

    def kernel_sums(self, X: np.ndarray, kernel: str, bandwidth: float) -> np.ndarray:
        kernel_fn = kernel_by_name(kernel)
        train = self._train
        n_train = train.shape[0]
        sums = np.empty(X.shape[0], dtype=np.float64)
        # Pairwise distances via the expansion ||a-b||^2 = ||a||^2 + ||b||^2
        # - 2 a.b in bounded blocks, exactly as the seed implementation —
        # byte-for-byte identical kernel sums.
        train_sq = np.einsum("ij,ij->i", train, train)
        block = max(1, int(4e6 // max(n_train, 1)))
        for start in range(0, X.shape[0], block):
            chunk = X[start : start + block]
            chunk_sq = np.einsum("ij,ij->i", chunk, chunk)
            squared = chunk_sq[:, None] + train_sq[None, :] - 2.0 * (chunk @ train.T)
            np.maximum(squared, 0.0, out=squared)
            scaled = np.sqrt(squared) / bandwidth
            sums[start : start + block] = kernel_fn(scaled).sum(axis=1)
        return sums


def _compact_kernel_sums(csr, kernel: str, bandwidth: float) -> np.ndarray:
    """Kernel sums from CSR radius-neighbour output (compact kernels)."""
    _, distances, indptr = csr
    kernel_fn = kernel_by_name(kernel)
    values = kernel_fn(distances / bandwidth)
    return segment_sums(values, indptr)


class KDTreeBackend(DensityBackend):
    """Batch KD-tree radius search for compact kernels."""

    name = "kd_tree"

    def __init__(self, training_data: np.ndarray, leaf_size: int = 32) -> None:
        self.tree = KDTree(training_data, leaf_size=leaf_size)

    def kernel_sums(self, X: np.ndarray, kernel: str, bandwidth: float) -> np.ndarray:
        if kernel not in COMPACT_KERNELS:
            raise ValidationError(
                f"the kd_tree density backend requires a compact kernel {COMPACT_KERNELS}, "
                f"got {kernel!r}"
            )
        csr = self.tree.query_radius_csr(X, bandwidth)
        return _compact_kernel_sums(csr, kernel, bandwidth)


class GridBackend(DensityBackend):
    """Grid-hash radius search for compact kernels (cells = one bandwidth)."""

    name = "grid"

    def __init__(self, training_data: np.ndarray, bandwidth: float) -> None:
        self.grid = GridIndex(training_data, cell_size=bandwidth)

    def kernel_sums(self, X: np.ndarray, kernel: str, bandwidth: float) -> np.ndarray:
        if kernel not in COMPACT_KERNELS:
            raise ValidationError(
                f"the grid density backend requires a compact kernel {COMPACT_KERNELS}, "
                f"got {kernel!r}"
            )
        csr = self.grid.query_radius_csr(X, bandwidth)
        return _compact_kernel_sums(csr, kernel, bandwidth)


# --------------------------------------------------------------------------
# dispatch policy
# --------------------------------------------------------------------------


def resolve_algorithm(
    algorithm: str,
    kernel: str,
    X: np.ndarray,
    *,
    leaf_size: int,
    bandwidth: float,
) -> str:
    """Map a requested ``algorithm`` to the effective backend name.

    * ``"brute"`` is honoured as-is.
    * ``"kd_tree"`` falls back to brute for the Gaussian kernel (no compact
      support to exploit — the seed behaved the same way).
    * ``"grid"`` is an explicit request: a non-compact kernel or data whose
      cell box cannot be hashed raises :class:`ValidationError`.
    * ``"auto"`` picks, for compact kernels on ``n >= 4 * leaf_size`` rows,
      the grid backend when the data is low-dimensional and hashable, the
      KD-tree otherwise; everything else scores brute.
    """
    compact = kernel in COMPACT_KERNELS
    if algorithm == "brute":
        return "brute"
    if algorithm == "kd_tree":
        return "kd_tree" if compact else "brute"
    if algorithm == "grid":
        if not compact:
            raise ValidationError(
                f"algorithm='grid' requires a compact kernel {COMPACT_KERNELS}; "
                f"got kernel={kernel!r}"
            )
        if not GridIndex.is_suitable(X, bandwidth):
            raise ValidationError(
                "algorithm='grid' is unsuitable for this data/bandwidth (the cell "
                "coordinate box cannot be hashed); use 'kd_tree' or 'auto'"
            )
        return "grid"
    if algorithm != "auto":
        raise ValidationError(f"Unknown density algorithm {algorithm!r}; use {ALGORITHM_NAMES}")
    n_samples, n_dims = X.shape
    if compact and n_samples >= 4 * leaf_size:
        if n_dims <= _MAX_GRID_DIMS and GridIndex.is_suitable(X, bandwidth):
            return "grid"
        return "kd_tree"
    return "brute"


# --------------------------------------------------------------------------
# per-fit backend cache (shared across threads)
# --------------------------------------------------------------------------

_CACHE_CAPACITY = 16
_CACHE: "OrderedDict[tuple, DensityBackend]" = OrderedDict()
_CACHE_LOCK = threading.Lock()
"""Guards every read/write of ``_CACHE``, ``_PENDING``, and ``_STATS``.

The lookup / ``move_to_end`` / insert / ``popitem`` sequence on an
``OrderedDict`` is not atomic: unsynchronized concurrent fits could corrupt
the dict's internal linked list or build the same backend twice.  The lock
is held only around bookkeeping — never while a backend is being *built* —
so concurrent builds of distinct keys still overlap.
"""

_PENDING: Dict[tuple, "_PendingBuild"] = {}
"""In-flight builds keyed like the cache: the per-key build deduplicator."""

_STATS = {"hits": 0, "builds": 0, "evictions": 0, "build_waits": 0}


class _PendingBuild:
    """Rendezvous for threads requesting a backend that is being built."""

    __slots__ = ("event", "backend", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.backend: Optional[DensityBackend] = None
        self.error: Optional[BaseException] = None


def _fingerprint(X: np.ndarray) -> Tuple[str, Tuple[int, ...], str]:
    """Content fingerprint of a training sample (digest, shape, dtype)."""
    data = np.ascontiguousarray(X)
    digest = hashlib.blake2b(data.tobytes(), digest_size=16).hexdigest()
    return digest, data.shape, str(data.dtype)


def _build_backend(
    name: str, X: np.ndarray, leaf_size: int, bandwidth: Optional[float]
) -> DensityBackend:
    if name == "brute":
        return BruteBackend(X)
    if name == "kd_tree":
        return KDTreeBackend(X, leaf_size=int(leaf_size))
    return GridBackend(X, bandwidth=float(bandwidth))


def get_backend(
    name: str,
    X: np.ndarray,
    *,
    leaf_size: int = 32,
    bandwidth: Optional[float] = None,
) -> DensityBackend:
    """Build (or fetch from the shared LRU cache) the named backend over ``X``.

    The cache key is the training sample's *content* (digest, shape, dtype)
    plus the parameters that shape the structure (leaf size for trees, cell
    size for grids), so two independent fits over the same partition share
    one structure.

    The cache is **thread-safe and build-deduplicating**: concurrent callers
    may use it freely (parallel partition profiling, ``run_repeated``
    worker threads), and when two threads request the same key while it is
    being built, one builds and the other waits for the finished structure —
    each key is built exactly once.  Backends themselves are immutable after
    construction and safe to share across threads.
    """
    if name == "brute":
        parameter: object = None
    elif name == "kd_tree":
        parameter = int(leaf_size)
    elif name == "grid":
        if bandwidth is None:
            raise ValidationError("the grid backend needs the bandwidth to size its cells")
        parameter = float(bandwidth)
    else:
        raise ValidationError(f"Unknown density backend {name!r}; available: {BACKEND_NAMES}")

    key = (name, parameter, _fingerprint(X))
    with _CACHE_LOCK:
        backend = _CACHE.get(key)
        if backend is not None:
            _CACHE.move_to_end(key)
            _STATS["hits"] += 1
            return backend
        pending = _PENDING.get(key)
        if pending is None:
            pending = _PendingBuild()
            _PENDING[key] = pending
            building = True
        else:
            _STATS["build_waits"] += 1
            building = False

    if not building:
        # Another thread is building this exact backend; wait for it rather
        # than duplicating the (potentially expensive) construction.
        pending.event.wait()
        if pending.error is not None:
            raise pending.error
        assert pending.backend is not None
        return pending.backend

    try:
        backend = _build_backend(name, X, leaf_size, bandwidth)
    except BaseException as exc:
        pending.error = exc
        with _CACHE_LOCK:
            _PENDING.pop(key, None)
        pending.event.set()
        raise
    pending.backend = backend
    with _CACHE_LOCK:
        _CACHE[key] = backend
        _STATS["builds"] += 1
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
            _STATS["evictions"] += 1
        _PENDING.pop(key, None)
    pending.event.set()
    return backend


def clear_backend_cache() -> None:
    """Drop every cached backend and reset the cache statistics.

    Mainly for tests and memory pressure.  In-flight builds are unaffected
    (their waiters still receive the built backend); the built structures
    simply re-enter an empty cache.
    """
    with _CACHE_LOCK:
        _CACHE.clear()
        for stat in _STATS:
            _STATS[stat] = 0


def backend_cache_size() -> int:
    """Number of currently cached backends."""
    with _CACHE_LOCK:
        return len(_CACHE)


def backend_cache_stats() -> Dict[str, int]:
    """Snapshot of cumulative cache counters since the last clear.

    ``hits``
        Lookups served from the cache.
    ``builds``
        Backends actually constructed (each key is built at most once per
        residency — the single-build guarantee concurrent profiling relies
        on).
    ``evictions``
        LRU evictions past the cache capacity.
    ``build_waits``
        Requests that found their key mid-build and waited for the builder
        instead of duplicating the construction.
    """
    with _CACHE_LOCK:
        return dict(_STATS)


def _telemetry_collector(registry) -> None:
    # Folds the cache counters into gauges at export/state_dict time — the
    # hot path (get_backend under _CACHE_LOCK) stays untouched, and the
    # collector never runs while _CACHE_LOCK is held, so the two locks
    # cannot interleave.
    for stat, value in backend_cache_stats().items():
        registry.gauge(f"density.backend_cache.{stat}").set(float(value))


_get_telemetry_registry().add_collector(_telemetry_collector)
