"""Kernel functions for density estimation.

Each kernel maps a matrix of Euclidean distances (already divided by the
bandwidth) to unnormalized kernel values; :class:`repro.density.kde.KernelDensity`
handles the normalization constant so that the estimated density integrates
to one in ``d`` dimensions.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from repro.exceptions import ValidationError


def gaussian_kernel(scaled_distances: np.ndarray) -> np.ndarray:
    """Gaussian kernel ``exp(-u^2 / 2)``."""
    return np.exp(-0.5 * scaled_distances**2)


def tophat_kernel(scaled_distances: np.ndarray) -> np.ndarray:
    """Tophat (uniform) kernel: 1 inside the unit ball, 0 outside."""
    return (scaled_distances <= 1.0).astype(np.float64)


def epanechnikov_kernel(scaled_distances: np.ndarray) -> np.ndarray:
    """Epanechnikov kernel ``max(0, 1 - u^2)``."""
    return np.maximum(0.0, 1.0 - scaled_distances**2)


_KERNELS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "gaussian": gaussian_kernel,
    "tophat": tophat_kernel,
    "epanechnikov": epanechnikov_kernel,
}

COMPACT_KERNELS = ("tophat", "epanechnikov")
"""Kernels with support bounded by one bandwidth (spatial indexes apply)."""


def kernel_by_name(name: str) -> Callable[[np.ndarray], np.ndarray]:
    """Look up a kernel function by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in _KERNELS:
        raise ValidationError(f"Unknown kernel {name!r}; available: {sorted(_KERNELS)}")
    return _KERNELS[key]


def unit_ball_volume(n_dims: int) -> float:
    """Volume of the d-dimensional unit ball (used for tophat normalization)."""
    return math.pi ** (n_dims / 2.0) / math.gamma(n_dims / 2.0 + 1.0)


def log_normalization(kernel: str, bandwidth: float, n_dims: int) -> float:
    """Log of the normalization constant making the kernel integrate to one."""
    if bandwidth <= 0:
        raise ValidationError("bandwidth must be positive")
    if kernel == "gaussian":
        return -0.5 * n_dims * math.log(2.0 * math.pi) - n_dims * math.log(bandwidth)
    if kernel == "tophat":
        return -math.log(unit_ball_volume(n_dims)) - n_dims * math.log(bandwidth)
    if kernel == "epanechnikov":
        # Integral of (1 - |u|^2) over the unit ball is V_d * 2 / (d + 2).
        volume = unit_ball_volume(n_dims) * 2.0 / (n_dims + 2.0)
        return -math.log(volume) - n_dims * math.log(bandwidth)
    raise ValidationError(f"Unknown kernel {kernel!r}")
