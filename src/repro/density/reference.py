"""Frozen copy of the seed density implementation — DO NOT MODIFY.

This module preserves the original per-row, node-object implementation of
:class:`KDTree` and :class:`KernelDensity` exactly as it shipped before the
batch density engine replaced it.  It exists for one purpose: the engine's
*frozen-equivalence guarantee*.  The equivalence suite
(``tests/test_density_engine.py``) and the speedup benchmark
(``benchmarks/test_density_backends.py``) score the same inputs through both
implementations and assert that log-densities and density ranks are
**bit-identical**, so any numerical drift in the rewrite is caught
immediately.

Nothing outside those tests should import this module; production code uses
:mod:`repro.density.kde` and :mod:`repro.density.kdtree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.density.kde import scott_bandwidth, silverman_bandwidth
from repro.density.kernels import kernel_by_name, log_normalization
from repro.exceptions import ValidationError
from repro.learners.base import BaseEstimator
from repro.utils.validation import check_array


@dataclass
class _KDNode:
    """Internal node: splitting axis/value plus bounding box of its subtree."""

    indices: np.ndarray
    axis: int = -1
    split_value: float = 0.0
    left: Optional["_KDNode"] = None
    right: Optional["_KDNode"] = None
    lower_bound: Optional[np.ndarray] = None
    upper_bound: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class ReferenceKDTree:
    """The seed k-d tree: node objects, recursive per-point queries."""

    def __init__(self, points, leaf_size: int = 16) -> None:
        if leaf_size < 1:
            raise ValidationError("leaf_size must be at least 1")
        self._points = check_array(points, name="points")
        self.leaf_size = leaf_size
        self.n_points, self.n_dims = self._points.shape
        self._root = self._build(np.arange(self.n_points), depth=0)

    @property
    def points(self) -> np.ndarray:
        view = self._points.view()
        view.flags.writeable = False
        return view

    # ---------------------------------------------------------------- build
    def _build(self, indices: np.ndarray, depth: int) -> _KDNode:
        subset = self._points[indices]
        node = _KDNode(
            indices=indices,
            lower_bound=subset.min(axis=0),
            upper_bound=subset.max(axis=0),
        )
        if indices.size <= self.leaf_size:
            return node

        spreads = node.upper_bound - node.lower_bound
        axis = int(np.argmax(spreads))
        if spreads[axis] <= 0.0:
            # All remaining points are identical: keep as a leaf.
            return node

        values = subset[:, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against degenerate splits where the median equals the maximum.
        if left_mask.all() or not left_mask.any():
            order = np.argsort(values)
            half = indices.size // 2
            left_mask = np.zeros(indices.size, dtype=bool)
            left_mask[order[:half]] = True

        node.axis = axis
        node.split_value = median
        node.left = self._build(indices[left_mask], depth + 1)
        node.right = self._build(indices[~left_mask], depth + 1)
        return node

    # -------------------------------------------------------------- queries
    def query_radius(self, point, radius: float) -> np.ndarray:
        if radius < 0:
            raise ValidationError("radius must be non-negative")
        query = self._as_query(point)
        found: List[int] = []
        self._radius_search(self._root, query, radius, found)
        return np.array(sorted(found), dtype=np.int64)

    def _radius_search(
        self, node: _KDNode, query: np.ndarray, radius: float, found: List[int]
    ) -> None:
        if self._min_distance_to_box(node, query) > radius:
            return
        if node.is_leaf:
            subset = self._points[node.indices]
            distances = np.linalg.norm(subset - query, axis=1)
            found.extend(node.indices[distances <= radius].tolist())
            return
        self._radius_search(node.left, query, radius, found)
        self._radius_search(node.right, query, radius, found)

    def query(self, point, k: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        if k < 1:
            raise ValidationError("k must be at least 1")
        if k > self.n_points:
            raise ValidationError(f"k={k} exceeds the number of indexed points ({self.n_points})")
        query = self._as_query(point)
        best: List[Tuple[float, int]] = []
        self._knn_search(self._root, query, k, best)
        best.sort()
        distances = np.array([d for d, _ in best], dtype=np.float64)
        indices = np.array([i for _, i in best], dtype=np.int64)
        return distances, indices

    def _knn_search(
        self, node: _KDNode, query: np.ndarray, k: int, best: List[Tuple[float, int]]
    ) -> None:
        worst = best[-1][0] if len(best) == k else np.inf
        if self._min_distance_to_box(node, query) > worst:
            return
        if node.is_leaf:
            subset = self._points[node.indices]
            distances = np.linalg.norm(subset - query, axis=1)
            for distance, index in zip(distances, node.indices):
                if len(best) < k:
                    best.append((float(distance), int(index)))
                    best.sort()
                elif distance < best[-1][0]:
                    best[-1] = (float(distance), int(index))
                    best.sort()
            return
        if query[node.axis] <= node.split_value:
            first, second = node.left, node.right
        else:
            first, second = node.right, node.left
        self._knn_search(first, query, k, best)
        self._knn_search(second, query, k, best)

    # -------------------------------------------------------------- helpers
    def _as_query(self, point) -> np.ndarray:
        query = np.asarray(point, dtype=np.float64).ravel()
        if query.shape[0] != self.n_dims:
            raise ValidationError(
                f"Query point has {query.shape[0]} dimensions, tree holds {self.n_dims}"
            )
        if not np.all(np.isfinite(query)):
            raise ValidationError("Query point contains NaN or infinite values")
        return query

    @staticmethod
    def _min_distance_to_box(node: _KDNode, query: np.ndarray) -> float:
        below = np.maximum(0.0, node.lower_bound - query)
        above = np.maximum(0.0, query - node.upper_bound)
        return float(np.linalg.norm(below + above))


class ReferenceKernelDensity(BaseEstimator):
    """The seed KDE: one recursive tree query per scored row."""

    _COMPACT_KERNELS = ("tophat", "epanechnikov")

    def __init__(
        self,
        bandwidth="scott",
        kernel: str = "gaussian",
        algorithm: str = "auto",
        leaf_size: int = 32,
    ) -> None:
        self.bandwidth = bandwidth
        self.kernel = kernel
        self.algorithm = algorithm
        self.leaf_size = leaf_size

    # -------------------------------------------------------------------- fit
    def fit(self, X) -> "ReferenceKernelDensity":
        X = check_array(X, name="X")
        kernel_by_name(self.kernel)  # validate the kernel name early
        if self.algorithm not in ("auto", "brute", "kd_tree"):
            raise ValidationError("algorithm must be 'auto', 'brute', or 'kd_tree'")

        if isinstance(self.bandwidth, str):
            rule = self.bandwidth.strip().lower()
            if rule == "scott":
                resolved = scott_bandwidth(X)
            elif rule == "silverman":
                resolved = silverman_bandwidth(X)
            else:
                raise ValidationError(
                    f"Unknown bandwidth rule {self.bandwidth!r}; use 'scott' or 'silverman'"
                )
        else:
            resolved = float(self.bandwidth)
        if resolved <= 0:
            raise ValidationError("bandwidth must resolve to a positive value")

        self.bandwidth_ = resolved
        self.training_data_ = X.copy()
        self.n_features_ = X.shape[1]

        use_tree = self.algorithm == "kd_tree" or (
            self.algorithm == "auto"
            and self.kernel in self._COMPACT_KERNELS
            and X.shape[0] >= 4 * self.leaf_size
        )
        self._tree = ReferenceKDTree(X, leaf_size=self.leaf_size) if use_tree else None
        return self

    # ------------------------------------------------------------------ score
    def score_samples(self, X) -> np.ndarray:
        self._check_fitted("training_data_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features, estimator was fitted with {self.n_features_}"
            )
        kernel_fn = kernel_by_name(self.kernel)
        log_norm = log_normalization(self.kernel, self.bandwidth_, self.n_features_)
        n_train = self.training_data_.shape[0]

        densities = np.empty(X.shape[0], dtype=np.float64)
        if self._tree is not None and self.kernel in self._COMPACT_KERNELS:
            # Compact support: only points within one bandwidth contribute.
            for i, row in enumerate(X):
                neighbour_idx = self._tree.query_radius(row, self.bandwidth_)
                if neighbour_idx.size == 0:
                    densities[i] = 0.0
                    continue
                diffs = self.training_data_[neighbour_idx] - row
                scaled = np.linalg.norm(diffs, axis=1) / self.bandwidth_
                densities[i] = float(kernel_fn(scaled).sum())
        else:
            # Brute force in manageable blocks to bound memory.
            train_sq = np.einsum("ij,ij->i", self.training_data_, self.training_data_)
            block = max(1, int(4e6 // max(n_train, 1)))
            for start in range(0, X.shape[0], block):
                chunk = X[start : start + block]
                chunk_sq = np.einsum("ij,ij->i", chunk, chunk)
                squared = (
                    chunk_sq[:, None] + train_sq[None, :] - 2.0 * (chunk @ self.training_data_.T)
                )
                np.maximum(squared, 0.0, out=squared)
                scaled = np.sqrt(squared) / self.bandwidth_
                densities[start : start + block] = kernel_fn(scaled).sum(axis=1)

        with np.errstate(divide="ignore"):
            log_density = np.log(densities) - np.log(n_train) + log_norm
        return log_density

    def score(self, X) -> float:
        return float(np.sum(self.score_samples(X)))

    def density_rank(self, X) -> np.ndarray:
        log_density = self.score_samples(X)
        order = np.argsort(-log_density, kind="mergesort")
        ranks = np.empty_like(order)
        ranks[order] = np.arange(order.size)
        return ranks
