"""From-scratch ML substrate used by the fairness interventions.

The paper evaluates its interventions with two scikit-learn learners:
Logistic Regression ("LR") and gradient-boosted trees ("XGB").  Neither
scikit-learn nor XGBoost is available in this environment, so this subpackage
rebuilds the needed substrate on top of numpy:

* :class:`LogisticRegressionClassifier` — weighted, L2-regularized logistic
  regression trained by full-batch gradient descent with adaptive step size.
* :class:`GradientBoostingClassifier` — depth-limited regression trees boosted
  under the logistic loss, with per-sample weights (the "XGB" stand-in).
* :class:`DecisionTreeRegressor` / :class:`DecisionTreeClassifier` — the tree
  building blocks.
* :class:`StandardScaler`, :class:`MinMaxScaler`, :class:`OneHotEncoder` —
  preprocessing substrate.
* :func:`train_test_split`, :class:`GridSearch` — evaluation substrate.

Every estimator follows the familiar ``fit(X, y, sample_weight=None)`` /
``predict(X)`` / ``predict_proba(X)`` protocol declared in
:class:`repro.learners.base.BaseClassifier`.
"""

from repro.learners.base import BaseClassifier, BaseEstimator, BaseTransformer, clone
from repro.learners.boosting import GradientBoostingClassifier
from repro.learners.encoder import OneHotEncoder
from repro.learners.logistic import LogisticRegressionClassifier
from repro.learners.metrics import (
    accuracy_score,
    balanced_accuracy_score,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.learners.model_selection import GridSearch, train_test_split
from repro.learners.registry import available_learners, make_learner
from repro.learners.scaler import MinMaxScaler, StandardScaler
from repro.learners.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseClassifier",
    "BaseEstimator",
    "BaseTransformer",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "GridSearch",
    "LogisticRegressionClassifier",
    "MinMaxScaler",
    "OneHotEncoder",
    "StandardScaler",
    "accuracy_score",
    "available_learners",
    "balanced_accuracy_score",
    "clone",
    "confusion_matrix",
    "f1_score",
    "log_loss",
    "make_learner",
    "precision_score",
    "recall_score",
    "roc_auc_score",
    "train_test_split",
]
