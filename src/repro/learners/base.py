"""Estimator base classes and the ``clone`` helper.

The fairness interventions in :mod:`repro.core` are deliberately
*model-agnostic*: they only rely on the small protocol defined here —
construct with keyword hyper-parameters, ``fit(X, y, sample_weight=None)``,
``predict`` and (for classifiers) ``predict_proba``.  Keeping the protocol
explicit makes it easy to plug in alternative learners.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, ClassVar, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import NotFittedError, ValidationError


class BaseEstimator:
    """Minimal estimator base: hyper-parameter introspection and cloning.

    Subclasses must store every constructor argument on ``self`` under the
    same name (the usual scikit-learn convention), which is what makes
    :meth:`get_params` and :func:`clone` work without any per-class code.

    Subclasses that want to participate in artifact serialization
    (:mod:`repro.serving.artifacts`) additionally declare
    ``_state_attributes``: the names of the fitted attributes that, together
    with the constructor parameters, fully determine the estimator's
    predictions.  :meth:`state_dict` / :meth:`load_state_dict` then work
    without per-class code; estimators whose fitted state is not a flat set
    of attributes (e.g. trees) override the pair instead.
    """

    _state_attributes: ClassVar[Tuple[str, ...]] = ()

    def get_params(self) -> Dict[str, Any]:
        """Return constructor hyper-parameters as a dict."""
        signature = inspect.signature(type(self).__init__)
        names = [
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params: Any) -> "BaseEstimator":
        """Set hyper-parameters in place and return ``self``."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def state_dict(self) -> Dict[str, Any]:
        """Return the fitted state as ``{attribute: value}``.

        Only attributes that exist are included, so calling this on an
        unfitted estimator returns an empty dict (an unfitted estimator is a
        valid thing to persist: it round-trips through its parameters alone).
        """
        return {
            name: getattr(self, name)
            for name in self._state_attributes
            if hasattr(self, name)
        }

    def load_state_dict(self, state: Dict[str, Any]) -> "BaseEstimator":
        """Restore fitted state produced by :meth:`state_dict` and return ``self``."""
        unknown = sorted(set(state) - set(self._state_attributes))
        if unknown:
            raise ValidationError(
                f"{type(self).__name__} does not accept state entr"
                f"{'ies' if len(unknown) > 1 else 'y'} {', '.join(map(repr, unknown))}; "
                f"accepted state attributes: {tuple(self._state_attributes)}"
            )
        for name, value in state.items():
            setattr(self, name, value)
        return self

    def _check_fitted(self, attribute: str) -> None:
        """Raise :class:`NotFittedError` unless ``attribute`` exists."""
        if not hasattr(self, attribute):
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; call fit() before using it"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


class BaseClassifier(BaseEstimator):
    """Protocol for binary classifiers used throughout the library."""

    def fit(self, X, y, sample_weight: Optional[np.ndarray] = None) -> "BaseClassifier":
        raise NotImplementedError

    def predict_proba(self, X) -> np.ndarray:
        """Return an ``(n_samples, 2)`` array of class probabilities."""
        raise NotImplementedError

    def predict(self, X) -> np.ndarray:
        """Return hard 0/1 predictions (argmax of :meth:`predict_proba`)."""
        proba = self.predict_proba(X)
        return (proba[:, 1] >= 0.5).astype(np.int64)

    def score(self, X, y) -> float:
        """Plain accuracy of :meth:`predict` against ``y``."""
        y = np.asarray(y).ravel()
        return float(np.mean(self.predict(X) == y))


class BaseTransformer(BaseEstimator):
    """Protocol for feature transformers (scalers, encoders)."""

    def fit(self, X) -> "BaseTransformer":
        raise NotImplementedError

    def transform(self, X) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with identical hyper-parameters.

    Hyper-parameter values are deep-copied so the clone never shares mutable
    state (e.g. a parameter grid list) with the original.
    """
    params = copy.deepcopy(estimator.get_params())
    return type(estimator)(**params)
