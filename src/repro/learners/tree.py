"""Depth-limited CART trees with per-sample weights.

Two public estimators live here:

* :class:`DecisionTreeRegressor` — weighted squared-error regression tree,
  the building block of :class:`repro.learners.boosting.GradientBoostingClassifier`.
* :class:`DecisionTreeClassifier` — a thin classification wrapper fitting a
  regression tree on 0/1 labels and thresholding the predicted mean.

Split search is exact over a bounded number of candidate thresholds per
feature (quantile-based when a feature has many distinct values), which keeps
tree construction fast enough for the benchmark datasets while behaving like
an ordinary CART tree on small data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.learners.base import BaseClassifier, BaseEstimator
from repro.utils.validation import check_array, check_sample_weight, check_X_y


@dataclass
class _TreeNode:
    """A single node of a fitted tree (internal or leaf)."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    n_samples: int = 0
    depth: int = 0
    children: List["_TreeNode"] = field(default_factory=list, repr=False)

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _flatten_tree(root: _TreeNode) -> dict:
    """Serialize a fitted tree into parallel arrays (preorder node order).

    ``left`` / ``right`` hold child node indices, ``-1`` for leaves; the
    float arrays preserve thresholds and predictions bit-exactly.
    """
    nodes: List[_TreeNode] = []

    def visit(node: _TreeNode) -> int:
        index = len(nodes)
        nodes.append(node)
        if not node.is_leaf:
            visit(node.left)
            visit(node.right)
        return index

    visit(root)
    index_of = {id(node): i for i, node in enumerate(nodes)}
    left = np.array(
        [index_of[id(n.left)] if not n.is_leaf else -1 for n in nodes], dtype=np.int64
    )
    right = np.array(
        [index_of[id(n.right)] if not n.is_leaf else -1 for n in nodes], dtype=np.int64
    )
    return {
        "prediction": np.array([n.prediction for n in nodes], dtype=np.float64),
        "feature": np.array([n.feature for n in nodes], dtype=np.int64),
        "threshold": np.array([n.threshold for n in nodes], dtype=np.float64),
        "left": left,
        "right": right,
        "n_samples": np.array([n.n_samples for n in nodes], dtype=np.int64),
        "depth": np.array([n.depth for n in nodes], dtype=np.int64),
    }


def _unflatten_tree(flat: dict) -> _TreeNode:
    """Rebuild the node structure produced by :func:`_flatten_tree`."""
    prediction = np.asarray(flat["prediction"], dtype=np.float64)
    nodes = [
        _TreeNode(
            prediction=float(prediction[i]),
            feature=int(flat["feature"][i]),
            threshold=float(flat["threshold"][i]),
            n_samples=int(flat["n_samples"][i]),
            depth=int(flat["depth"][i]),
        )
        for i in range(prediction.shape[0])
    ]
    for i, node in enumerate(nodes):
        left_index = int(flat["left"][i])
        if left_index >= 0:
            node.left = nodes[left_index]
            node.right = nodes[int(flat["right"][i])]
            node.children = [node.left, node.right]
    return nodes[0]


def _weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    total = weights.sum()
    if total <= 0:
        return float(values.mean()) if values.size else 0.0
    return float(np.dot(values, weights) / total)


class DecisionTreeRegressor(BaseEstimator):
    """Weighted squared-error regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (the root is depth 0).
    min_samples_split:
        Minimum number of samples required to consider splitting a node.
    min_samples_leaf:
        Minimum number of samples in each child produced by a split.
    max_candidate_thresholds:
        Optional cap on the number of candidate split positions evaluated per
        feature.  ``None`` (default) evaluates every boundary between
        distinct values (exact CART behaviour); the gradient-boosting learner
        passes a small cap for speed.
    min_impurity_decrease:
        Minimum reduction in weighted squared error required to accept a split.
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_candidate_thresholds: Optional[int] = None,
        min_impurity_decrease: float = 0.0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_candidate_thresholds = max_candidate_thresholds
        self.min_impurity_decrease = min_impurity_decrease

    def fit(self, X, y, sample_weight: Optional[np.ndarray] = None) -> "DecisionTreeRegressor":
        """Grow the tree on ``(X, y)`` with optional per-sample weights."""
        X, y = check_X_y(X, y)
        y = np.asarray(y, dtype=np.float64).ravel()
        weights = check_sample_weight(sample_weight, X.shape[0])
        self.n_features_ = X.shape[1]
        self.root_ = self._build(X, y, weights, depth=0)
        return self

    # ------------------------------------------------------------------ fit
    def _build(self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(
            prediction=_weighted_mean(y, w), n_samples=int(X.shape[0]), depth=depth
        )
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or np.allclose(y, y[0])
        ):
            return node

        split = self._best_split(X, y, w)
        if split is None:
            return node

        feature, threshold = split
        left_mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[left_mask], y[left_mask], w[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], y[~left_mask], w[~left_mask], depth + 1)
        node.children = [node.left, node.right]
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray, w: np.ndarray):
        """Search the (feature, threshold) pair minimizing weighted SSE.

        For each feature the column is sorted once and every split position is
        evaluated simultaneously through prefix sums of ``w``, ``w*y``, and
        ``w*y**2`` — the weighted SSE of a child is
        ``sum(w*y^2) - sum(w*y)^2 / sum(w)``.
        """
        n_samples = X.shape[0]
        total_weight = float(w.sum())
        parent_sse = float(np.dot(w, (y - _weighted_mean(y, w)) ** 2))
        best = None
        best_gain = self.min_impurity_decrease
        wy = w * y
        wyy = wy * y

        for feature in range(X.shape[1]):
            column = X[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_column = column[order]
            # Valid split positions: boundaries between distinct consecutive values.
            boundaries = np.flatnonzero(sorted_column[:-1] < sorted_column[1:])
            if boundaries.size == 0:
                continue
            cap = self.max_candidate_thresholds
            if cap is not None and boundaries.size > cap:
                picks = np.linspace(0, boundaries.size - 1, cap)
                boundaries = boundaries[np.unique(picks.astype(int))]

            cum_w = np.cumsum(w[order])
            cum_wy = np.cumsum(wy[order])
            cum_wyy = np.cumsum(wyy[order])

            n_left = boundaries + 1
            n_right = n_samples - n_left
            valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
            if not valid.any():
                continue
            boundaries = boundaries[valid]
            n_left = n_left[valid]

            w_left = cum_w[boundaries]
            w_right = total_weight - w_left
            usable = (w_left > 0) & (w_right > 0)
            if not usable.any():
                continue
            boundaries = boundaries[usable]
            w_left, w_right = w_left[usable], w_right[usable]

            wy_left = cum_wy[boundaries]
            wy_right = cum_wy[-1] - wy_left
            wyy_left = cum_wyy[boundaries]
            wyy_right = cum_wyy[-1] - wyy_left
            sse_left = wyy_left - wy_left**2 / w_left
            sse_right = wyy_right - wy_right**2 / w_right
            gains = (parent_sse - sse_left - sse_right) / max(total_weight, 1e-12)

            best_index = int(np.argmax(gains))
            if gains[best_index] > best_gain:
                best_gain = float(gains[best_index])
                position = boundaries[best_index]
                threshold = (sorted_column[position] + sorted_column[position + 1]) / 2.0
                best = (feature, float(threshold))
        return best

    # ---------------------------------------------------------------- state
    def state_dict(self) -> dict:
        """Fitted state as flat arrays (the node structure is flattened)."""
        if not hasattr(self, "root_"):
            return {}
        return {"n_features_": self.n_features_, "tree_": _flatten_tree(self.root_)}

    def load_state_dict(self, state: dict) -> "DecisionTreeRegressor":
        """Restore a tree flattened by :meth:`state_dict`."""
        if state:
            self.n_features_ = int(state["n_features_"])
            self.root_ = _unflatten_tree(state["tree_"])
        return self

    # -------------------------------------------------------------- predict
    def predict(self, X) -> np.ndarray:
        """Return the leaf means for every row of ``X``."""
        self._check_fitted("root_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fitted with {self.n_features_}"
            )
        return np.array([self._predict_row(row) for row in X], dtype=np.float64)

    def _predict_row(self, row: np.ndarray) -> float:
        node = self.root_
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.prediction

    # ------------------------------------------------------------ inspection
    @property
    def depth_(self) -> int:
        """Actual depth of the fitted tree."""
        self._check_fitted("root_")

        def depth_of(node: _TreeNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(depth_of(node.left), depth_of(node.right))

        return depth_of(self.root_)

    @property
    def n_leaves_(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted("root_")

        def count(node: _TreeNode) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self.root_)


class DecisionTreeClassifier(BaseClassifier):
    """Binary classification tree built on :class:`DecisionTreeRegressor`.

    The tree is fitted against 0/1 labels under weighted squared error, so a
    leaf's prediction is the (weighted) positive rate of its training samples;
    that value is used directly as the positive-class probability.

    ``random_state`` is accepted for registry uniformity (every learner can
    be built as ``make_learner(name, random_state=seed)``); tree construction
    is fully deterministic, so the seed changes nothing.
    """

    _state_attributes = ("_tree", "classes_")

    def __init__(
        self,
        max_depth: int = 5,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_candidate_thresholds: Optional[int] = 64,
        random_state: Optional[int] = 0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_candidate_thresholds = max_candidate_thresholds
        self.random_state = random_state

    def fit(self, X, y, sample_weight: Optional[np.ndarray] = None) -> "DecisionTreeClassifier":
        from repro.utils.validation import check_binary_labels

        X, y = check_X_y(X, y)
        y = check_binary_labels(y)
        self._tree = DecisionTreeRegressor(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_candidate_thresholds=self.max_candidate_thresholds,
        ).fit(X, y.astype(np.float64), sample_weight)
        self.classes_ = np.array([0, 1])
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("_tree")
        positive = np.clip(self._tree.predict(X), 0.0, 1.0)
        return np.column_stack([1.0 - positive, positive])
