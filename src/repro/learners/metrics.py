"""Classification metrics used for model utility.

Balanced accuracy is the paper's headline utility metric; the other metrics
support tests, model selection, and the extended reports.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_consistent_length


def _as_labels(y_true, y_pred) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    check_consistent_length(y_true, y_pred, names=("y_true", "y_pred"))
    if y_true.size == 0:
        raise ValidationError("y_true must not be empty")
    return y_true, y_pred


def confusion_matrix(y_true, y_pred) -> np.ndarray:
    """Return the 2x2 confusion matrix ``[[TN, FP], [FN, TP]]`` for binary labels."""
    y_true, y_pred = _as_labels(y_true, y_pred)
    matrix = np.zeros((2, 2), dtype=np.int64)
    for true_value, predicted_value in zip(y_true.astype(int), y_pred.astype(int)):
        if true_value not in (0, 1) or predicted_value not in (0, 1):
            raise ValidationError("confusion_matrix expects binary 0/1 labels")
        matrix[true_value, predicted_value] += 1
    return matrix


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of predictions equal to the true label."""
    y_true, y_pred = _as_labels(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def true_positive_rate(y_true, y_pred) -> float:
    """TPR (sensitivity): TP / (TP + FN).  Returns 0.0 if there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    positives = matrix[1, 0] + matrix[1, 1]
    return float(matrix[1, 1] / positives) if positives else 0.0


def true_negative_rate(y_true, y_pred) -> float:
    """TNR (specificity): TN / (TN + FP).  Returns 0.0 if there are no negatives."""
    matrix = confusion_matrix(y_true, y_pred)
    negatives = matrix[0, 0] + matrix[0, 1]
    return float(matrix[0, 0] / negatives) if negatives else 0.0


def false_positive_rate(y_true, y_pred) -> float:
    """FPR: FP / (FP + TN).  Returns 0.0 if there are no negatives."""
    matrix = confusion_matrix(y_true, y_pred)
    negatives = matrix[0, 0] + matrix[0, 1]
    return float(matrix[0, 1] / negatives) if negatives else 0.0


def false_negative_rate(y_true, y_pred) -> float:
    """FNR: FN / (FN + TP).  Returns 0.0 if there are no positives."""
    matrix = confusion_matrix(y_true, y_pred)
    positives = matrix[1, 0] + matrix[1, 1]
    return float(matrix[1, 0] / positives) if positives else 0.0


def balanced_accuracy_score(y_true, y_pred) -> float:
    """Balanced accuracy ``(TPR + TNR) / 2`` — the paper's utility metric."""
    return (true_positive_rate(y_true, y_pred) + true_negative_rate(y_true, y_pred)) / 2.0


def precision_score(y_true, y_pred) -> float:
    """Precision: TP / (TP + FP).  Returns 0.0 when nothing is predicted positive."""
    matrix = confusion_matrix(y_true, y_pred)
    predicted_positive = matrix[0, 1] + matrix[1, 1]
    return float(matrix[1, 1] / predicted_positive) if predicted_positive else 0.0


def recall_score(y_true, y_pred) -> float:
    """Recall, identical to the true positive rate."""
    return true_positive_rate(y_true, y_pred)


def f1_score(y_true, y_pred) -> float:
    """Harmonic mean of precision and recall (0.0 when both are zero)."""
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def selection_rate(y_pred) -> float:
    """Fraction of predictions that are positive."""
    y_pred = np.asarray(y_pred).ravel()
    if y_pred.size == 0:
        raise ValidationError("y_pred must not be empty")
    return float(np.mean(y_pred == 1))


def log_loss(y_true, y_proba, eps: float = 1e-12) -> float:
    """Binary cross-entropy of predicted positive-class probabilities."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    proba = np.asarray(y_proba, dtype=np.float64)
    if proba.ndim == 2:
        proba = proba[:, 1]
    check_consistent_length(y_true, proba, names=("y_true", "y_proba"))
    proba = np.clip(proba, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(proba) + (1.0 - y_true) * np.log(1.0 - proba)))


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve via the rank-statistic (Mann-Whitney) formula."""
    y_true = np.asarray(y_true).ravel()
    scores = np.asarray(y_score, dtype=np.float64)
    if scores.ndim == 2:
        scores = scores[:, 1]
    check_consistent_length(y_true, scores, names=("y_true", "y_score"))
    positives = scores[y_true == 1]
    negatives = scores[y_true == 0]
    if positives.size == 0 or negatives.size == 0:
        raise ValidationError("roc_auc_score requires both classes to be present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # Average ranks for ties.
    sorted_scores = scores[order]
    i = 0
    while i < sorted_scores.size:
        j = i
        while j + 1 < sorted_scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    positive_rank_sum = ranks[y_true == 1].sum()
    n_pos, n_neg = positives.size, negatives.size
    return float((positive_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))
