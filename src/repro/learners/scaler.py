"""Feature scalers used in the experimental preprocessing pipeline.

The paper normalizes numerical attributes before training; these scalers
reproduce that step without scikit-learn.
"""

from __future__ import annotations

import numpy as np

from repro.learners.base import BaseTransformer
from repro.utils.validation import check_array


class StandardScaler(BaseTransformer):
    """Standardize features to zero mean and unit variance.

    Constant columns (zero variance) are shifted to zero but left unscaled so
    that the transform never divides by zero.

    Attributes
    ----------
    mean_ : per-feature training means.
    scale_ : per-feature training standard deviations (1.0 for constants).
    """

    _state_attributes = ("mean_", "scale_", "n_features_")

    def __init__(self, with_mean: bool = True, with_std: bool = True) -> None:
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = check_array(X, name="X")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.n_features_}"
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        """Map standardized values back to the original units."""
        self._check_fitted("mean_")
        X = check_array(X, name="X")
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseTransformer):
    """Scale features to the ``[0, 1]`` range observed on the training data.

    Constant columns map to 0.  Values outside the training range are allowed
    (and map outside ``[0, 1]``) unless ``clip=True``.
    """

    _state_attributes = ("min_", "range_", "n_features_")

    def __init__(self, clip: bool = False) -> None:
        self.clip = clip

    def fit(self, X) -> "MinMaxScaler":
        X = check_array(X, name="X")
        self.min_ = X.min(axis=0)
        data_range = X.max(axis=0) - self.min_
        data_range[data_range == 0.0] = 1.0
        self.range_ = data_range
        self.n_features_ = X.shape[1]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("min_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fitted with {self.n_features_}"
            )
        scaled = (X - self.min_) / self.range_
        if self.clip:
            scaled = np.clip(scaled, 0.0, 1.0)
        return scaled

    def inverse_transform(self, X) -> np.ndarray:
        """Map scaled values back to the original units."""
        self._check_fitted("min_")
        X = check_array(X, name="X")
        return X * self.range_ + self.min_
