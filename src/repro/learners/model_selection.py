"""Data splitting and hyper-parameter search substrate.

The paper splits data 70/15/15 into training/validation/deploy sets, tunes
hyper-parameters on the validation set, and evaluates on the deploy set.
:func:`train_test_split` and :class:`GridSearch` provide those two pieces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier, clone
from repro.learners.metrics import balanced_accuracy_score
from repro.utils.random import check_random_state


def train_test_split(
    *arrays,
    test_size: float = 0.25,
    random_state=None,
    stratify: Optional[np.ndarray] = None,
) -> List[np.ndarray]:
    """Split any number of equally-long arrays into train/test partitions.

    Parameters
    ----------
    arrays:
        One or more arrays sharing the same first dimension.
    test_size:
        Fraction of samples assigned to the test partition (0 < test_size < 1).
    random_state:
        Seed or generator controlling the shuffle.
    stratify:
        Optional label array; when given, the class proportions are preserved
        in both partitions.

    Returns
    -------
    list
        ``[a_train, a_test, b_train, b_test, ...]`` in the order of ``arrays``.
    """
    if not arrays:
        raise ValidationError("train_test_split requires at least one array")
    if not 0.0 < test_size < 1.0:
        raise ValidationError("test_size must be strictly between 0 and 1")
    lengths = {len(a) for a in arrays}
    if len(lengths) != 1:
        raise ValidationError(f"All arrays must share the same length, got {sorted(lengths)}")
    n_samples = lengths.pop()
    if n_samples < 2:
        raise ValidationError("Need at least 2 samples to split")

    rng = check_random_state(random_state)
    n_test = max(1, int(round(test_size * n_samples)))
    n_test = min(n_test, n_samples - 1)

    if stratify is not None:
        labels = np.asarray(stratify).ravel()
        if labels.shape[0] != n_samples:
            raise ValidationError("stratify must have the same length as the arrays")
        test_indices: List[int] = []
        for value in np.unique(labels):
            class_indices = np.flatnonzero(labels == value)
            rng.shuffle(class_indices)
            class_test = int(round(test_size * class_indices.size))
            class_test = min(max(class_test, 0), class_indices.size)
            test_indices.extend(class_indices[:class_test].tolist())
        test_index = np.array(sorted(test_indices), dtype=np.int64)
        if test_index.size == 0:
            test_index = np.array([int(rng.integers(0, n_samples))])
        if test_index.size == n_samples:
            test_index = test_index[:-1]
    else:
        permutation = rng.permutation(n_samples)
        test_index = np.sort(permutation[:n_test])

    test_mask = np.zeros(n_samples, dtype=bool)
    test_mask[test_index] = True

    result: List[np.ndarray] = []
    for array in arrays:
        array = np.asarray(array)
        result.append(array[~test_mask])
        result.append(array[test_mask])
    return result


@dataclass
class GridSearchResult:
    """Outcome of one hyper-parameter configuration evaluated by :class:`GridSearch`."""

    params: Dict[str, object]
    score: float


@dataclass
class GridSearch:
    """Exhaustive hyper-parameter search scored on a held-out validation set.

    Parameters
    ----------
    estimator:
        Prototype classifier; cloned for every configuration.
    param_grid:
        Mapping of parameter name to list of candidate values.
    scorer:
        ``scorer(y_true, y_pred) -> float`` — higher is better.  Defaults to
        balanced accuracy, matching the paper's utility metric.
    """

    estimator: BaseClassifier
    param_grid: Dict[str, Sequence]
    scorer: Callable[[np.ndarray, np.ndarray], float] = balanced_accuracy_score
    results_: List[GridSearchResult] = field(default_factory=list, init=False)

    def fit(
        self,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "GridSearch":
        """Evaluate every configuration; keep the best refit on the training data."""
        if not self.param_grid:
            combinations: List[Dict[str, object]] = [{}]
        else:
            names = sorted(self.param_grid)
            combinations = [
                dict(zip(names, values))
                for values in itertools.product(*(self.param_grid[name] for name in names))
            ]

        self.results_ = []
        best_score = -np.inf
        best_model: Optional[BaseClassifier] = None
        best_params: Dict[str, object] = {}
        for params in combinations:
            model = clone(self.estimator).set_params(**params)
            model.fit(X_train, y_train, sample_weight=sample_weight)
            score = float(self.scorer(y_val, model.predict(X_val)))
            self.results_.append(GridSearchResult(params=params, score=score))
            if score > best_score:
                best_score = score
                best_model = model
                best_params = params

        if best_model is None:  # pragma: no cover - defensive, grid is never empty
            raise ValidationError("GridSearch evaluated no configurations")
        self.best_estimator_ = best_model
        self.best_params_ = best_params
        self.best_score_ = best_score
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict with the best estimator found by :meth:`fit`."""
        if not hasattr(self, "best_estimator_"):
            raise ValidationError("GridSearch is not fitted yet")
        return self.best_estimator_.predict(X)


def three_way_split(
    X: np.ndarray,
    y: np.ndarray,
    group: np.ndarray,
    *,
    validation_size: float = 0.15,
    test_size: float = 0.15,
    random_state=None,
) -> Tuple[np.ndarray, ...]:
    """Split ``(X, y, group)`` into train/validation/deploy partitions.

    Matches the paper's 70/15/15 protocol (sizes are configurable).  Returns
    ``(X_tr, X_va, X_te, y_tr, y_va, y_te, g_tr, g_va, g_te)``.
    """
    if validation_size + test_size >= 1.0:
        raise ValidationError("validation_size + test_size must be < 1")
    rng = check_random_state(random_state)
    holdout = validation_size + test_size
    X_tr, X_hold, y_tr, y_hold, g_tr, g_hold = train_test_split(
        X, y, group, test_size=holdout, random_state=rng, stratify=y
    )
    relative_test = test_size / holdout
    X_va, X_te, y_va, y_te, g_va, g_te = train_test_split(
        X_hold, y_hold, g_hold, test_size=relative_test, random_state=rng, stratify=y_hold
    )
    return X_tr, X_va, X_te, y_tr, y_va, y_te, g_tr, g_va, g_te
