"""Weighted, L2-regularized logistic regression ("LR" learner in the paper).

Trained by full-batch gradient descent with an adaptive (backtracking) step
size.  Supports per-sample weights, which is the only requirement the
reweighing interventions (ConFair, KAM, OMN) place on a learner.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.learners.base import BaseClassifier
from repro.utils.validation import check_array, check_binary_labels, check_sample_weight, check_X_y


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegressionClassifier(BaseClassifier):
    """Binary logistic regression with L2 regularization and sample weights.

    Parameters
    ----------
    learning_rate:
        Initial gradient-descent step size; adapted multiplicatively during
        training (halved when the loss increases, grown 5% when it decreases).
    max_iter:
        Maximum number of full-batch updates.
    l2:
        L2 penalty strength applied to the non-intercept coefficients.
    tol:
        Convergence tolerance on the absolute loss improvement.
    fit_intercept:
        Whether to learn an intercept term.
    random_state:
        Seed for the (small) random initialization of the coefficients.

    Attributes
    ----------
    coef_:
        Learned coefficient vector of shape ``(n_features,)``.
    intercept_:
        Learned intercept (0.0 when ``fit_intercept=False``).
    n_iter_:
        Number of iterations actually run.
    converged_:
        Whether the loss improvement dropped below ``tol`` before
        ``max_iter``.
    """

    _state_attributes = ("coef_", "intercept_", "n_iter_", "converged_", "classes_")

    def __init__(
        self,
        learning_rate: float = 0.5,
        max_iter: int = 300,
        l2: float = 1e-3,
        tol: float = 1e-6,
        fit_intercept: bool = True,
        random_state: Optional[int] = 0,
    ) -> None:
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.l2 = l2
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state

    def fit(self, X, y, sample_weight: Optional[np.ndarray] = None) -> "LogisticRegressionClassifier":
        """Fit the model to ``(X, y)`` with optional per-sample weights."""
        X, y = check_X_y(X, y)
        y = check_binary_labels(y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        weights = weights / weights.mean()

        n_samples, n_features = X.shape
        if self.fit_intercept:
            design = np.hstack([X, np.ones((n_samples, 1))])
        else:
            design = X

        beta = np.zeros(design.shape[1], dtype=np.float64)
        penalty = np.full(design.shape[1], self.l2)
        if self.fit_intercept:
            penalty[-1] = 0.0

        step = float(self.learning_rate)
        previous_loss = self._loss(design, y, weights, beta, penalty)
        self.converged_ = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            probabilities = _sigmoid(design @ beta)
            gradient = design.T @ (weights * (probabilities - y)) / n_samples + penalty * beta
            candidate = beta - step * gradient
            loss = self._loss(design, y, weights, candidate, penalty)
            if loss > previous_loss:
                # Backtrack: shrink the step and retry from the same point.
                step *= 0.5
                if step < 1e-8:
                    break
                continue
            improvement = previous_loss - loss
            beta = candidate
            previous_loss = loss
            step *= 1.05
            if improvement < self.tol:
                self.converged_ = True
                break

        if self.fit_intercept:
            self.coef_ = beta[:-1].copy()
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta.copy()
            self.intercept_ = 0.0
        self.n_iter_ = iteration
        self.classes_ = np.array([0, 1])
        return self

    @staticmethod
    def _loss(design, y, weights, beta, penalty) -> float:
        """Weighted negative log-likelihood plus the L2 penalty."""
        z = design @ beta
        # log(1 + exp(z)) - y*z, computed stably.
        log_terms = np.logaddexp(0.0, z) - y * z
        data_term = float(np.mean(weights * log_terms))
        reg_term = 0.5 * float(np.sum(penalty * beta**2))
        return data_term + reg_term

    def decision_function(self, X) -> np.ndarray:
        """Return the raw linear scores ``X @ coef_ + intercept_``."""
        self._check_fitted("coef_")
        X = check_array(X, name="X")
        if X.shape[1] != self.coef_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with {self.coef_.shape[0]}"
            )
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Return class probabilities of shape ``(n_samples, 2)``."""
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])
