"""Learner registry: map the paper's learner names ("LR", "XGB") to estimators.

The experiment runners and benchmarks refer to learners by short string names,
mirroring the paper's figures.  :func:`make_learner` builds a fresh, unfitted
estimator for a name, optionally overriding hyper-parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier
from repro.learners.boosting import GradientBoostingClassifier
from repro.learners.logistic import LogisticRegressionClassifier
from repro.learners.tree import DecisionTreeClassifier

_FACTORIES: Dict[str, Callable[..., BaseClassifier]] = {
    "lr": LogisticRegressionClassifier,
    "xgb": GradientBoostingClassifier,
    "tree": DecisionTreeClassifier,
}

_DEFAULTS: Dict[str, Dict[str, object]] = {
    "lr": {"max_iter": 200, "l2": 1e-3},
    "xgb": {"n_estimators": 30, "max_depth": 3, "learning_rate": 0.2},
    "tree": {"max_depth": 5},
}


def available_learners() -> List[str]:
    """Return the registered learner names, sorted."""
    return sorted(_FACTORIES)


def make_learner(name: str, **overrides) -> BaseClassifier:
    """Instantiate an unfitted learner by name.

    Parameters
    ----------
    name:
        One of :func:`available_learners` (case-insensitive); ``"LR"`` and
        ``"XGB"`` are the two learners evaluated in the paper.
    overrides:
        Hyper-parameters overriding the registry defaults.
    """
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise ValidationError(
            f"Unknown learner {name!r}; available learners are {available_learners()}"
        )
    params = dict(_DEFAULTS.get(key, {}))
    params.update(overrides)
    return _FACTORIES[key](**params)
