"""Gradient-boosted trees under the logistic loss (the paper's "XGB" learner).

This is a standard gradient-boosting machine: each boosting round fits a
depth-limited :class:`repro.learners.tree.DecisionTreeRegressor` to the
negative gradient of the (weighted) logistic loss, and adds it to the additive
model with a shrinkage factor.  Per-sample weights are multiplied into the
gradient, exactly how ``xgboost`` consumes ``sample_weight``.

The exact second-order (Newton) leaf weights of XGBoost are not required for
any behaviour the paper measures; the relevant property — a flexible,
non-linear tree-ensemble learner that consumes sample weights — is preserved.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.learners.base import BaseClassifier
from repro.learners.logistic import _sigmoid
from repro.learners.tree import DecisionTreeRegressor
from repro.utils.random import check_random_state
from repro.utils.validation import check_array, check_binary_labels, check_sample_weight, check_X_y


class GradientBoostingClassifier(BaseClassifier):
    """Binary gradient-boosting classifier with logistic loss.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (trees).
    learning_rate:
        Shrinkage applied to each tree's contribution.
    max_depth:
        Depth of the individual regression trees.
    min_samples_leaf:
        Minimum samples per leaf in the individual trees.
    subsample:
        Fraction of rows sampled (without replacement) per boosting round;
        1.0 disables row subsampling.
    max_candidate_thresholds:
        Passed through to the tree split search.
    random_state:
        Seed controlling row subsampling.

    Attributes
    ----------
    estimators_:
        List of fitted :class:`DecisionTreeRegressor` instances.
    init_score_:
        The constant initial log-odds prediction.
    train_losses_:
        Weighted training loss after each boosting round.
    """

    _state_attributes = (
        "estimators_",
        "init_score_",
        "train_losses_",
        "n_features_",
        "classes_",
    )

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        max_candidate_thresholds: int = 16,
        random_state: Optional[int] = 0,
    ) -> None:
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_candidate_thresholds = max_candidate_thresholds
        self.random_state = random_state

    def fit(self, X, y, sample_weight: Optional[np.ndarray] = None) -> "GradientBoostingClassifier":
        """Fit the boosted ensemble to ``(X, y)``."""
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        X, y = check_X_y(X, y)
        y = check_binary_labels(y)
        weights = check_sample_weight(sample_weight, X.shape[0])
        weights = weights / weights.mean()
        rng = check_random_state(self.random_state)

        positive_rate = float(np.clip(np.average(y, weights=weights), 1e-6, 1 - 1e-6))
        self.init_score_ = float(np.log(positive_rate / (1.0 - positive_rate)))

        n_samples = X.shape[0]
        scores = np.full(n_samples, self.init_score_, dtype=np.float64)
        self.estimators_: List[DecisionTreeRegressor] = []
        self.train_losses_: List[float] = []

        for _ in range(self.n_estimators):
            probabilities = _sigmoid(scores)
            residuals = y - probabilities  # negative gradient of logistic loss

            if self.subsample < 1.0:
                sample_size = max(1, int(round(self.subsample * n_samples)))
                indices = rng.choice(n_samples, size=sample_size, replace=False)
            else:
                indices = np.arange(n_samples)

            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_candidate_thresholds=self.max_candidate_thresholds,
            )
            tree.fit(X[indices], residuals[indices], sample_weight=weights[indices])
            scores = scores + self.learning_rate * tree.predict(X)
            self.estimators_.append(tree)

            loss = float(np.mean(weights * (np.logaddexp(0.0, scores) - y * scores)))
            self.train_losses_.append(loss)

        self.n_features_ = X.shape[1]
        self.classes_ = np.array([0, 1])
        return self

    def decision_function(self, X) -> np.ndarray:
        """Return the additive-model log-odds for every row of ``X``."""
        self._check_fitted("estimators_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with {self.n_features_}"
            )
        scores = np.full(X.shape[0], self.init_score_, dtype=np.float64)
        for tree in self.estimators_:
            scores += self.learning_rate * tree.predict(X)
        return scores

    def predict_proba(self, X) -> np.ndarray:
        """Return class probabilities of shape ``(n_samples, 2)``."""
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def staged_decision_function(self, X) -> np.ndarray:
        """Return log-odds after each boosting round, shape ``(n_estimators, n_samples)``."""
        self._check_fitted("estimators_")
        X = check_array(X, name="X")
        scores = np.full(X.shape[0], self.init_score_, dtype=np.float64)
        stages = np.empty((len(self.estimators_), X.shape[0]), dtype=np.float64)
        for i, tree in enumerate(self.estimators_):
            scores = scores + self.learning_rate * tree.predict(X)
            stages[i] = scores
        return stages
