"""One-hot encoding of categorical columns.

The experimental pipeline one-hot encodes categorical attributes before
training, mirroring the paper's preprocessing.  The encoder accepts arbitrary
hashable category values (strings, ints) stored in an object array.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.base import BaseTransformer


class OneHotEncoder(BaseTransformer):
    """Encode categorical columns as 0/1 indicator columns.

    Parameters
    ----------
    handle_unknown:
        ``"ignore"`` encodes unseen categories as all-zero rows (the default,
        matching how serving data is handled in the experiments);
        ``"error"`` raises :class:`ValidationError` instead.

    Attributes
    ----------
    categories_:
        One sorted array of category values per input column.
    feature_names_:
        Output feature names in ``col{i}={value}`` form.
    """

    def __init__(self, handle_unknown: str = "ignore") -> None:
        if handle_unknown not in ("ignore", "error"):
            raise ValueError("handle_unknown must be 'ignore' or 'error'")
        self.handle_unknown = handle_unknown

    def state_dict(self) -> dict:
        """Fitted state with the category arrays unpacked into plain lists.

        Category values are arbitrary hashable scalars held in object arrays,
        which binary payload formats cannot store; lists round-trip them
        exactly (the fitted ordering is preserved verbatim).
        """
        if not hasattr(self, "categories_"):
            return {}
        return {
            "categories_": [column.tolist() for column in self.categories_],
            "n_features_": self.n_features_,
            "feature_names_": list(self.feature_names_),
        }

    def load_state_dict(self, state: dict) -> "OneHotEncoder":
        """Restore state produced by :meth:`state_dict`."""
        if state:
            self.categories_ = [
                np.array(list(column), dtype=object) for column in state["categories_"]
            ]
            self.n_features_ = int(state["n_features_"])
            self.feature_names_ = list(state["feature_names_"])
        return self

    def fit(self, X) -> "OneHotEncoder":
        X = self._as_object_2d(X)
        self.categories_: List[np.ndarray] = [
            np.array(sorted(set(X[:, j].tolist()), key=repr), dtype=object)
            for j in range(X.shape[1])
        ]
        self.n_features_ = X.shape[1]
        self.feature_names_ = [
            f"col{j}={value}" for j, cats in enumerate(self.categories_) for value in cats
        ]
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("categories_")
        X = self._as_object_2d(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} columns, encoder was fitted with {self.n_features_}"
            )
        blocks = []
        for j, categories in enumerate(self.categories_):
            index = {value: i for i, value in enumerate(categories.tolist())}
            block = np.zeros((X.shape[0], len(categories)), dtype=np.float64)
            for row, value in enumerate(X[:, j].tolist()):
                position = index.get(value)
                if position is None:
                    if self.handle_unknown == "error":
                        raise ValidationError(
                            f"Unknown category {value!r} in column {j} during transform"
                        )
                    continue
                block[row, position] = 1.0
            blocks.append(block)
        if not blocks:
            return np.zeros((X.shape[0], 0), dtype=np.float64)
        return np.hstack(blocks)

    @staticmethod
    def _as_object_2d(X) -> np.ndarray:
        arr = np.asarray(X, dtype=object)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValidationError(f"X must be 2-dimensional, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise ValidationError("X must not be empty")
        return arr
