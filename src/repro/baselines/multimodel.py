"""MultiModel: naive model splitting routed by group membership.

The paper's simple baseline: train one model per group and, at serving time,
pick the model matching the tuple's *declared* group membership.  Unlike
DiffFair this requires (and trusts) the sensitive attribute at deployment,
which is exactly the limitation DiffFair's conformance-based routing removes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier, BaseEstimator, clone
from repro.learners.registry import make_learner
from repro.utils.validation import check_array, check_binary_labels


class MultiModel(BaseEstimator):
    """Group-membership-routed model splitting.

    Parameters
    ----------
    learner:
        Learner name or prototype instance; cloned per group.
    random_state:
        Seed passed to learners created from a registry name.
    """

    _state_attributes = ("model_majority_", "model_minority_", "n_features_")

    def __init__(self, learner="lr", random_state: Optional[int] = 0) -> None:
        self.learner = learner
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "MultiModel":
        """Train one model per group on that group's training rows."""
        if not np.any(train.group == 0) or not np.any(train.group == 1):
            raise ValidationError("MultiModel needs training tuples from both groups")
        majority = train.partition(group_value=0)
        minority = train.partition(group_value=1)
        self.model_majority_ = self._fit_one(majority)
        self.model_minority_ = self._fit_one(minority)
        self.n_features_ = train.n_features
        return self

    def _fit_one(self, group_data: Dataset) -> BaseClassifier:
        model = (
            make_learner(self.learner, random_state=self.random_state)
            if isinstance(self.learner, str)
            else clone(self.learner)
        )
        model.fit(group_data.X, group_data.y)
        return model

    def predict(self, X, group) -> np.ndarray:
        """Predict labels, routing each row by its declared group membership.

        Parameters
        ----------
        X:
            Feature matrix.
        group:
            Declared group membership per row (0 = majority, 1 = minority);
            required — this baseline cannot operate without it.
        """
        self._check_fitted("model_majority_")
        X = check_array(X, name="X")
        group = check_binary_labels(group, name="group")
        if group.shape[0] != X.shape[0]:
            raise ValidationError("X and group must have the same number of rows")
        predictions = np.empty(X.shape[0], dtype=np.int64)
        majority_rows = group == 0
        if majority_rows.any():
            predictions[majority_rows] = self.model_majority_.predict(X[majority_rows])
        if (~majority_rows).any():
            predictions[~majority_rows] = self.model_minority_.predict(X[~majority_rows])
        return predictions

    def predict_proba(self, X, group) -> np.ndarray:
        """Class probabilities, routed by declared group membership."""
        self._check_fitted("model_majority_")
        X = check_array(X, name="X")
        group = check_binary_labels(group, name="group")
        probabilities = np.empty((X.shape[0], 2), dtype=np.float64)
        majority_rows = group == 0
        if majority_rows.any():
            probabilities[majority_rows] = self.model_majority_.predict_proba(X[majority_rows])
        if (~majority_rows).any():
            probabilities[~majority_rows] = self.model_minority_.predict_proba(X[~majority_rows])
        return probabilities
