"""Baselines the paper compares against.

* :class:`NoIntervention` — train the learner on the raw data (the reference
  every figure compares against).
* :class:`MultiModel` — naive model splitting routed by true group membership.
* :class:`KamiranReweighing` (KAM) — frequency-based group/label reweighing
  (Kamiran & Calders 2011).
* :class:`OmniFairReweighing` (OMN) — model-output-calibrated group-level
  reweighing with a λ intervention degree (OmniFair, SIGMOD 2021 — the group
  reweighing core the paper evaluates).
* :class:`CapuchinRepair` (CAP) — the invasive comparator: repairs the
  categorical view of the data toward independence of group and label by
  resampling (Capuchin, SIGMOD 2019 — interface-level reimplementation).
"""

from repro.baselines.capuchin import CapuchinRepair
from repro.baselines.kamiran import KamiranReweighing
from repro.baselines.multimodel import MultiModel
from repro.baselines.no_intervention import NoIntervention
from repro.baselines.omnifair import OmniFairReweighing

__all__ = [
    "CapuchinRepair",
    "KamiranReweighing",
    "MultiModel",
    "NoIntervention",
    "OmniFairReweighing",
]
