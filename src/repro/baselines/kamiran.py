"""KAM: Kamiran & Calders (2011) frequency-based reweighing.

Every tuple in (group ``g``, label ``y``) receives the weight
``P(G = g) * P(Y = y) / P(G = g, Y = y)`` — the ratio between the expected
and the observed frequency of its cell under independence of group and label.
All tuples in the same cell get the *same* weight, which is precisely the
behaviour ConFair improves on by differentiating tuples through conformance.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier, BaseEstimator, clone
from repro.learners.registry import make_learner


class KamiranReweighing(BaseEstimator):
    """The KAM reweighing baseline.

    Parameters
    ----------
    learner:
        Learner name or prototype used by :meth:`fit_learner`.
    random_state:
        Seed passed to learners created from a registry name.

    Attributes (after :meth:`fit`)
    ------------------------------
    weights_ :
        Per-tuple training weights.
    cell_weights_ :
        The weight assigned to each (group, label) cell.
    """

    _state_attributes = ("weights_", "cell_weights_", "_train")

    def __init__(self, learner="lr", random_state: Optional[int] = 0) -> None:
        self.learner = learner
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "KamiranReweighing":
        """Compute the independence-restoring cell weights on the training data."""
        n_total = train.n_samples
        weights = np.ones(n_total, dtype=np.float64)
        cell_weights: Dict[Tuple[int, int], float] = {}
        for group_value in (0, 1):
            group_mask = train.group == group_value
            p_group = float(group_mask.sum()) / n_total
            for label in (0, 1):
                label_mask = train.y == label
                p_label = float(label_mask.sum()) / n_total
                cell_mask = group_mask & label_mask
                observed = float(cell_mask.sum()) / n_total
                if cell_mask.sum() == 0:
                    continue
                if observed == 0.0:
                    cell_weight = 1.0
                else:
                    cell_weight = (p_group * p_label) / observed
                cell_weights[(group_value, label)] = cell_weight
                weights[cell_mask] = cell_weight
        if not cell_weights:
            raise ValidationError("Training data has no populated (group, label) cells")
        self.weights_ = weights
        self.cell_weights_ = cell_weights
        self._train = train
        return self

    def fit_learner(self, learner: Optional[BaseClassifier] = None) -> BaseClassifier:
        """Train a learner on the training data using the KAM weights."""
        self._check_fitted("weights_")
        model = (
            make_learner(self.learner, random_state=self.random_state)
            if isinstance(self.learner, str)
            else clone(self.learner)
        ) if learner is None else learner
        model.fit(self._train.X, self._train.y, sample_weight=self.weights_)
        return model
