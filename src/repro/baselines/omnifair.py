"""OMN: OmniFair-style, model-calibrated group reweighing.

OmniFair (Zhang et al., SIGMOD 2021) is a declarative system whose group-
fairness core assigns one weight delta per (group, label) cell and calibrates
those deltas against the *output of the model* trained on the current
weights, scaled by an intervention parameter λ.  This reimplements that core
behaviour, which is the facet the paper compares against:

* weights are **uniform within each (group, label) cell** (no intra-group
  variability — contrast with ConFair);
* the deltas are derived from the model's observed fairness gap, so the
  method is calibrated to a specific learner (and loses reliability when its
  weights are transferred to a different learner — Fig. 7);
* the λ → fairness relationship is not guaranteed to be monotonic, because
  every λ re-enters the model-in-the-loop calibration (Fig. 8/9).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.fairness.metrics import disparate_impact_star, statistical_parity_difference
from repro.learners.base import BaseClassifier, BaseEstimator, clone
from repro.learners.metrics import balanced_accuracy_score
from repro.learners.registry import make_learner


class OmniFairReweighing(BaseEstimator):
    """The OMN reweighing baseline.

    Parameters
    ----------
    lam:
        Intervention degree λ.  ``None`` triggers a grid search on the
        validation split during :meth:`fit` (like the paper's experiments).
    learner:
        Learner name or prototype used for the model-in-the-loop calibration
        (and by :meth:`fit_learner` when no learner is supplied).
    n_calibration_rounds:
        Number of calibration iterations (retrain model, measure gap, adjust
        the cell deltas).
    lam_grid:
        Candidate λ values for the automatic search.
    fairness_target:
        ``"di"`` (selection-rate gap, default), ``"fnr"``, or ``"fpr"`` —
        which gap the calibration tries to close.
    random_state:
        Seed passed to learners created from a registry name.

    Attributes (after :meth:`fit`)
    ------------------------------
    weights_ :
        Per-tuple training weights under the resolved λ.
    lam_ :
        The resolved intervention degree.
    cell_deltas_ :
        The per-cell weight deltas after calibration.
    """

    _state_attributes = ("weights_", "lam_", "cell_deltas_", "_train")

    def __init__(
        self,
        lam: Optional[float] = None,
        learner="lr",
        n_calibration_rounds: int = 3,
        lam_grid: Optional[Sequence[float]] = None,
        fairness_target: str = "di",
        random_state: Optional[int] = 0,
    ) -> None:
        if lam is not None and lam < 0:
            raise ValidationError("lam must be non-negative")
        if n_calibration_rounds < 1:
            raise ValidationError("n_calibration_rounds must be at least 1")
        if fairness_target not in ("di", "fnr", "fpr"):
            raise ValidationError("fairness_target must be 'di', 'fnr', or 'fpr'")
        self.lam = lam
        self.learner = learner
        self.n_calibration_rounds = n_calibration_rounds
        self.lam_grid = tuple(lam_grid) if lam_grid is not None else tuple(np.linspace(0.0, 2.0, 9))
        self.fairness_target = fairness_target
        self.random_state = random_state

    # ------------------------------------------------------------------ fit
    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "OmniFairReweighing":
        """Calibrate the cell deltas (and λ, when not supplied) on the data."""
        self._train = train
        if self.lam is not None:
            self.lam_ = float(self.lam)
        else:
            if validation is None:
                raise ValidationError(
                    "OmniFairReweighing needs a validation dataset to search λ; "
                    "either pass validation= to fit() or supply lam explicitly"
                )
            self.lam_ = self._search_lambda(train, validation)
        self.weights_, self.cell_deltas_ = self.compute_weights(train, self.lam_)
        return self

    def compute_weights(
        self, train: Optional[Dataset], lam: float
    ) -> Tuple[np.ndarray, Dict[Tuple[int, int], float]]:
        """Model-in-the-loop calibration of per-cell weights for a given λ.

        ``train=None`` reuses the training data the estimator was fitted on
        (the λ-sweep path), so callers never need to reach into internals.
        """
        if train is None:
            self._check_fitted("_train")
            train = self._train
        if lam < 0:
            raise ValidationError("lam must be non-negative")
        weights = np.ones(train.n_samples, dtype=np.float64)
        deltas: Dict[Tuple[int, int], float] = {(g, y): 0.0 for g in (0, 1) for y in (0, 1)}
        if lam == 0.0:
            return weights, deltas

        for _ in range(self.n_calibration_rounds):
            model = self._make_learner()
            model.fit(train.X, train.y, sample_weight=weights)
            predictions = model.predict(train.X)
            gap = self._gap(train.y, predictions, train.group)
            if abs(gap) < 1e-3:
                break
            # A negative gap means the minority is under-selected: boost the
            # whole minority-positive cell and the majority-negative cell by
            # λ·|gap|, uniformly (OmniFair has no intra-group variability).
            adjustment = lam * abs(gap)
            if gap < 0:
                boosted_cells = ((1, 1), (0, 0))
            else:
                boosted_cells = ((1, 0), (0, 1))
            for cell in boosted_cells:
                deltas[cell] += adjustment
            weights = np.ones(train.n_samples, dtype=np.float64)
            for (group_value, label), delta in deltas.items():
                mask = (train.group == group_value) & (train.y == label)
                weights[mask] += delta
        return weights, deltas

    def fit_learner(self, learner: Optional[BaseClassifier] = None) -> BaseClassifier:
        """Train a learner on the training data using the OMN weights."""
        self._check_fitted("weights_")
        model = learner if learner is not None else self._make_learner()
        model.fit(self._train.X, self._train.y, sample_weight=self.weights_)
        return model

    # ------------------------------------------------------------ internals
    def _make_learner(self) -> BaseClassifier:
        if isinstance(self.learner, str):
            return make_learner(self.learner, random_state=self.random_state)
        return clone(self.learner)

    def _gap(self, y_true, y_pred, group) -> float:
        """Signed fairness gap (minority minus majority) for the target metric."""
        from repro.fairness.metrics import group_rates

        if self.fairness_target == "di":
            return statistical_parity_difference(y_true, y_pred, group)
        rates = group_rates(y_true, y_pred, group)
        if self.fairness_target == "fnr":
            # A higher minority FNR means the minority is under-served.
            return -(rates["minority"].fnr - rates["majority"].fnr)
        return -(rates["minority"].fpr - rates["majority"].fpr)

    def _search_lambda(self, train: Dataset, validation: Dataset) -> float:
        """Grid-search λ by validation Disparate Impact (ties: balanced accuracy)."""
        best_lambda = 0.0
        best_key = (-np.inf, -np.inf)
        for lam in self.lam_grid:
            weights, _ = self.compute_weights(train, lam)
            model = self._make_learner()
            model.fit(train.X, train.y, sample_weight=weights)
            predictions = model.predict(validation.X)
            fairness = disparate_impact_star(validation.y, predictions, validation.group)
            utility = balanced_accuracy_score(validation.y, predictions)
            key = (fairness, utility)
            if key > best_key:
                best_key = key
                best_lambda = float(lam)
        return best_lambda
