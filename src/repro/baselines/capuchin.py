"""CAP: Capuchin-style invasive data repair.

Capuchin (Salimi et al., SIGMOD 2019) repairs the training database so that
the sensitive attribute and the outcome satisfy a causal independence
constraint, by inserting and deleting tuples in the categorical projection of
the data.  The paper evaluates it as the representative *invasive*
pre-processing intervention.

This reimplementation reproduces the interface and the behaviour the paper's
comparison exercises: it resamples the training data so that the empirical
joint distribution of (group, label) factorizes into its marginals —
duplicating tuples of under-represented cells and dropping tuples of
over-represented ones.  Because tuples are added and removed, the method is
*invasive*: it returns a new, modified :class:`Dataset` rather than weights.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier, BaseEstimator, clone
from repro.learners.registry import make_learner
from repro.utils.random import check_random_state


class CapuchinRepair(BaseEstimator):
    """The CAP data-repair baseline.

    Parameters
    ----------
    learner:
        Learner name or prototype used by :meth:`fit_learner` (the paper
        pairs CAP with the tree-based learner, which handles the categorical
        one-hot features well).
    repair_strength:
        Interpolation between the observed cell counts (0.0) and the fully
        independent target counts (1.0).
    random_state:
        Seed controlling which tuples are duplicated or dropped.

    Attributes (after :meth:`fit`)
    ------------------------------
    repaired_ : Dataset
        The repaired (resampled) training dataset.
    cell_targets_ :
        Target row counts per (group, label) cell after the repair.
    """

    _state_attributes = ("repaired_", "cell_targets_")

    def __init__(
        self,
        learner="xgb",
        repair_strength: float = 1.0,
        random_state: Optional[int] = 0,
    ) -> None:
        if not 0.0 <= repair_strength <= 1.0:
            raise ValidationError("repair_strength must be in [0, 1]")
        self.learner = learner
        self.repair_strength = repair_strength
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "CapuchinRepair":
        """Resample the training data toward independence of group and label."""
        rng = check_random_state(self.random_state)
        n_total = train.n_samples
        cell_targets: Dict[Tuple[int, int], int] = {}
        repaired_indices = []
        for group_value in (0, 1):
            group_mask = train.group == group_value
            p_group = float(group_mask.sum()) / n_total
            for label in (0, 1):
                label_mask = train.y == label
                p_label = float(label_mask.sum()) / n_total
                cell_rows = np.flatnonzero(group_mask & label_mask)
                observed = cell_rows.size
                independent = p_group * p_label * n_total
                target = int(round(observed + self.repair_strength * (independent - observed)))
                target = max(target, 1) if observed > 0 else 0
                cell_targets[(group_value, label)] = target
                if observed == 0 or target == 0:
                    continue
                if target <= observed:
                    chosen = rng.choice(cell_rows, size=target, replace=False)
                else:
                    extra = rng.choice(cell_rows, size=target - observed, replace=True)
                    chosen = np.concatenate([cell_rows, extra])
                repaired_indices.append(chosen)
        if not repaired_indices:
            raise ValidationError("Training data has no populated (group, label) cells")
        indices = np.concatenate(repaired_indices)
        rng.shuffle(indices)
        self.repaired_ = train.subset(indices).with_name(f"{train.name}-capuchin")
        self.cell_targets_ = cell_targets
        return self

    def fit_learner(self, learner: Optional[BaseClassifier] = None) -> BaseClassifier:
        """Train a learner on the repaired dataset."""
        self._check_fitted("repaired_")
        model = learner if learner is not None else (
            make_learner(self.learner, random_state=self.random_state)
            if isinstance(self.learner, str)
            else clone(self.learner)
        )
        model.fit(self.repaired_.X, self.repaired_.y)
        return model
