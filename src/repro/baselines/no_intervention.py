"""The no-intervention baseline: train the learner on the raw training data."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.table import Dataset
from repro.learners.base import BaseEstimator, clone
from repro.learners.registry import make_learner


class NoIntervention(BaseEstimator):
    """Train a single model on unweighted data (the paper's reference point).

    Parameters
    ----------
    learner:
        Learner name or prototype instance.
    random_state:
        Seed passed to learners created from a registry name.
    """

    _state_attributes = ("model_",)

    def __init__(self, learner="lr", random_state: Optional[int] = 0) -> None:
        self.learner = learner
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "NoIntervention":
        """Fit the underlying learner; ``validation`` is accepted for API symmetry."""
        model = (
            make_learner(self.learner, random_state=self.random_state)
            if isinstance(self.learner, str)
            else clone(self.learner)
        )
        model.fit(train.X, train.y)
        self.model_ = model
        return self

    def predict(self, X) -> np.ndarray:
        """Predict with the fitted learner."""
        self._check_fitted("model_")
        return self.model_.predict(X)

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities from the fitted learner."""
        self._check_fitted("model_")
        return self.model_.predict_proba(X)
