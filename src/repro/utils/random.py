"""Random-state handling helpers.

Every stochastic component in the library accepts a ``random_state`` argument
which may be ``None``, an integer seed, or a :class:`numpy.random.Generator`.
:func:`check_random_state` normalizes these three forms into a ``Generator``
so downstream code has a single type to work with.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RandomStateLike = Union[None, int, np.random.Generator]


def check_random_state(random_state: RandomStateLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for fresh entropy, an ``int`` seed for reproducible streams,
        or an existing ``Generator`` which is returned unchanged.

    Raises
    ------
    TypeError
        If ``random_state`` is none of the accepted types.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise TypeError("random_state seed must be non-negative")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or numpy.random.Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_seeds(random_state: RandomStateLike, n_seeds: int) -> list:
    """Derive ``n_seeds`` independent integer seeds from ``random_state``.

    Used by experiment runners that repeat a pipeline over many seeds while
    remaining reproducible from a single top-level seed.
    """
    if n_seeds < 0:
        raise ValueError("n_seeds must be non-negative")
    rng = check_random_state(random_state)
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n_seeds)]


def resolve_seed(random_state: RandomStateLike, offset: int = 0) -> Optional[int]:
    """Return a deterministic integer seed derived from ``random_state``.

    ``None`` stays ``None`` (fresh entropy); integer seeds are offset so that
    distinct components seeded from the same experiment seed do not share an
    identical stream.
    """
    if random_state is None:
        return None
    if isinstance(random_state, np.random.Generator):
        return int(random_state.integers(0, 2**31 - 1))
    return int(random_state) + int(offset)
