"""Deterministic thread-level parallelism helpers.

The fit-side hot paths (partition profiling, Algorithm 3 filtering) are
numpy-bound: the interpreter releases the GIL inside the batch kernels, so a
thread pool scales them without any pickling or process overhead.  The one
rule every caller of this module relies on is **determinism**: results are
always assembled in *input* order, never completion order, so a parallel run
is bit-identical to its serial counterpart.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.exceptions import ValidationError

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def effective_cpu_count() -> int:
    """The CPU count used to resolve ``n_jobs=-1`` (at least 1)."""
    return max(os.cpu_count() or 1, 1)


def resolve_n_jobs(n_jobs: Optional[int], n_items: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``1`` mean serial; ``-1`` means one worker per CPU; any
    other positive integer is taken as-is.  When ``n_items`` is given the
    result is capped by it (there is never a reason to start idle workers).
    """
    if n_jobs is None:
        jobs = 1
    elif n_jobs == -1:
        jobs = effective_cpu_count()
    elif n_jobs < 1:
        raise ValidationError("n_jobs must be a positive integer, -1, or None")
    else:
        jobs = int(n_jobs)
    if n_items is not None:
        jobs = min(jobs, max(int(n_items), 1))
    return jobs


def thread_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    *,
    n_jobs: Optional[int] = None,
) -> List[_ResultT]:
    """Map ``fn`` over ``items``, optionally on a thread pool.

    Results are returned in **input order** regardless of completion order
    (``ThreadPoolExecutor.map`` preserves ordering), and the serial path is
    taken verbatim for ``n_jobs in (None, 1)`` — so callers get bit-identical
    outputs whether or not they parallelize.  Exceptions raised by ``fn``
    propagate to the caller either way.
    """
    materialized = list(items)
    jobs = resolve_n_jobs(n_jobs, len(materialized))
    if jobs <= 1:
        return [fn(item) for item in materialized]
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, materialized))
