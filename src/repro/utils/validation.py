"""Input-validation helpers shared across learners, profilers, and metrics.

These mirror the small subset of scikit-learn's ``check_*`` utilities that the
library needs, implemented on plain numpy.  They normalize inputs to
``float64`` arrays, reject NaN/inf where appropriate, and raise
:class:`repro.exceptions.ValidationError` with actionable messages.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError


def check_array(
    X,
    *,
    name: str = "X",
    ensure_2d: bool = True,
    allow_empty: bool = False,
    dtype=np.float64,
    force_finite: bool = True,
) -> np.ndarray:
    """Validate and convert ``X`` to a numpy array.

    Parameters
    ----------
    X:
        Array-like input.
    name:
        Name used in error messages.
    ensure_2d:
        Require a 2-D matrix (the common case for feature matrices).
    allow_empty:
        Permit zero rows.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    force_finite:
        Reject NaN and infinity.
    """
    try:
        arr = np.asarray(X, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} could not be converted to a numeric array: {exc}") from exc

    if ensure_2d:
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.ndim != 2:
            raise ValidationError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if force_finite and arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_consistent_length(*arrays, names: Optional[Tuple[str, ...]] = None) -> None:
    """Ensure all arrays share the same first-dimension length."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        label = ", ".join(names) if names else "inputs"
        raise ValidationError(f"Inconsistent lengths for {label}: {lengths}")


def check_X_y(X, y, *, force_finite: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix and label vector together."""
    X_arr = check_array(X, name="X", force_finite=force_finite)
    y_arr = np.asarray(y)
    if y_arr.ndim != 1:
        y_arr = y_arr.ravel()
    if y_arr.shape[0] != X_arr.shape[0]:
        raise ValidationError(
            f"X and y have inconsistent lengths: {X_arr.shape[0]} vs {y_arr.shape[0]}"
        )
    if y_arr.shape[0] == 0:
        raise ValidationError("y must not be empty")
    return X_arr, y_arr


def check_binary_labels(y, *, name: str = "y") -> np.ndarray:
    """Validate that ``y`` contains only the labels 0 and 1."""
    y_arr = np.asarray(y).ravel()
    uniques = np.unique(y_arr)
    if not np.all(np.isin(uniques, (0, 1))):
        raise ValidationError(f"{name} must contain only binary labels 0/1, got {uniques!r}")
    return y_arr.astype(np.int64)


def check_sample_weight(sample_weight, n_samples: int) -> np.ndarray:
    """Validate per-sample weights: non-negative, finite, length ``n_samples``.

    ``None`` yields uniform unit weights.
    """
    if sample_weight is None:
        return np.ones(n_samples, dtype=np.float64)
    weights = np.asarray(sample_weight, dtype=np.float64).ravel()
    if weights.shape[0] != n_samples:
        raise ValidationError(
            f"sample_weight has length {weights.shape[0]}, expected {n_samples}"
        )
    if not np.all(np.isfinite(weights)):
        raise ValidationError("sample_weight contains NaN or infinite values")
    if np.any(weights < 0):
        raise ValidationError("sample_weight must be non-negative")
    if np.all(weights == 0):
        raise ValidationError("sample_weight must not be all zeros")
    return weights
