"""Shared low-level utilities (validation, random-state handling, parallelism)."""

from repro.utils.parallel import effective_cpu_count, resolve_n_jobs, thread_map
from repro.utils.random import check_random_state, spawn_seeds
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_sample_weight,
    check_X_y,
)

__all__ = [
    "check_array",
    "check_binary_labels",
    "check_consistent_length",
    "check_random_state",
    "check_sample_weight",
    "check_X_y",
    "effective_cpu_count",
    "resolve_n_jobs",
    "spawn_seeds",
    "thread_map",
]
