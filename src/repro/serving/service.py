"""``PredictionService``: serve a fitted fairness model to batched traffic.

The service is the consumer of the serving contract the intervention layer
declares: it loads a :class:`~repro.interventions.DeployedModel` (directly,
from a :class:`~repro.interventions.PipelineResult`, or from a saved
artifact), splits incoming requests into micro-batches, optionally fans the
batches across a thread pool (NumPy releases the GIL in the hot kernels), and
enforces the intervention's declared capabilities: a request without group
membership is rejected *only* when the producing intervention declared
``requires_group_at_predict`` — ConFair and DiffFair traffic stays
group-blind end to end, which is the paper's deployment premise.

A :class:`~repro.serving.monitor.FairnessMonitor` can be attached; every
served batch then feeds the monitor's sliding window (predictions, audit
group labels, optional delayed ground truth, and the raw features for
conformance-drift scoring).

Thread safety
-------------
One :class:`PredictionService` may be shared across caller threads: the
worker-pool initialization, the :class:`ServiceStats` accumulation, and the
monitor feed are serialized under a single internal lock, so concurrent
``predict`` calls never leak a second pool or drop a stats update, and the
attached monitor sees whole batches in a consistent order (the *relative*
order of concurrent requests is whatever the race resolves to, as for any
concurrent server).  ``close`` is idempotent; a ``predict`` after ``close``
raises :class:`~repro.exceptions.ValidationError` instead of silently
resurrecting a worker pool.  The model itself must be read-only at predict
time (every shipped learner is).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.preprocessing import PreprocessingPipeline
from repro.exceptions import ArtifactError, ValidationError
from repro.fairness.report import FairnessReport
from repro.fairness.streaming import StreamCounts, report_from_counts
from repro.interventions.base import DeployedModel
from repro.interventions.pipeline import PipelineResult
from repro.serving.artifacts import load_artifact
from repro.serving.monitor import FairnessMonitor
from repro.telemetry import (
    DEFAULT_SIZE_BUCKETS,
    EventLog,
    MetricsRegistry,
    get_event_log,
    get_registry,
)


@dataclass
class ServiceStats:
    """Cumulative serving statistics (requests, records, wall time)."""

    n_requests: int = 0
    n_records: int = 0
    total_seconds: float = 0.0

    @property
    def records_per_second(self) -> float:
        return self.n_records / self.total_seconds if self.total_seconds > 0 else 0.0


class PredictionService:
    """Micro-batched serving front-end over a :class:`DeployedModel`.

    Parameters
    ----------
    model:
        A :class:`DeployedModel`, a :class:`PipelineResult` (its ``model`` is
        served), or any fitted estimator exposing ``predict`` (wrapped via
        :meth:`DeployedModel.from_predictor`).
    batch_size:
        Maximum rows per micro-batch.
    max_workers:
        Thread-pool width for concurrent micro-batches; ``None``/``1`` serves
        sequentially.  Results are order-preserving either way.
    monitor:
        Optional :class:`FairnessMonitor` fed after every request.
    preprocessor:
        Optional fitted :class:`PreprocessingPipeline`; enables
        :meth:`predict_records` on raw numeric/categorical columns, reusing
        the fit-time scaler and one-hot vocabulary vectorized.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry` to record into;
        defaults to the process-wide registry.  When the registry is enabled
        every request feeds ``serving.requests_total`` /
        ``serving.records_total`` counters and the
        ``serving.request_latency_seconds`` / ``serving.batch_rows`` /
        ``serving.queue_wait_seconds`` histograms; when disabled the cost is
        one attribute read per request.  Fleet shards pass private
        registries so per-shard histograms merge without double counting.
    events:
        Optional :class:`~repro.telemetry.EventLog` (flight recorder);
        defaults to the process-wide log.  When enabled, every monitored
        request emits a ``request`` event keyed by the sequence stamp the
        monitor folded it under, so shard-local logs merge bit-identically
        to the union stream.  Fleet shards pass private logs, mirroring the
        registry discipline.
    shard_id:
        Optional shard identity stamped onto ``serving.request`` spans so a
        stitched fleet trace names which shard served each micro-batch.
    """

    def __init__(
        self,
        model,
        *,
        batch_size: int = 2048,
        max_workers: Optional[int] = None,
        monitor: Optional[FairnessMonitor] = None,
        preprocessor: Optional[PreprocessingPipeline] = None,
        telemetry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
        shard_id: Optional[int] = None,
    ) -> None:
        if isinstance(model, PipelineResult):
            model = model.model
        if not isinstance(model, DeployedModel):
            model = DeployedModel.from_predictor(model, name=type(model).__name__)
        if batch_size < 1:
            raise ValidationError("batch_size must be at least 1")
        if max_workers is not None and max_workers < 1:
            raise ValidationError("max_workers must be at least 1 when given")
        self.model = model
        self.batch_size = int(batch_size)
        self.max_workers = max_workers
        self.monitor = monitor
        self.preprocessor = preprocessor
        self.stats = ServiceStats()
        self.telemetry = telemetry if telemetry is not None else get_registry()
        self.events = events if events is not None else get_event_log()
        self.shard_id = None if shard_id is None else int(shard_id)
        # Metric handles are resolved once here so the per-request cost when
        # telemetry is enabled is a few lock-guarded integer updates — and a
        # single `enabled` attribute read when it is not.
        self._m_requests = self.telemetry.counter("serving.requests_total")
        self._m_records = self.telemetry.counter("serving.records_total")
        self._m_latency = self.telemetry.histogram("serving.request_latency_seconds")
        self._m_batch_rows = self.telemetry.histogram(
            "serving.batch_rows", buckets=DEFAULT_SIZE_BUCKETS, resolution=1.0
        )
        self._m_queue_wait = self.telemetry.histogram("serving.queue_wait_seconds")
        self._pool: Optional[ThreadPoolExecutor] = None
        # Serializes pool init, stats accumulation, the monitor feed, and
        # the closed flag; never held across a model predict call.
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------ factory
    @classmethod
    def from_artifact(cls, path, **kwargs) -> "PredictionService":
        """Build a service from an artifact directory saved by ``save_artifact``.

        Accepts ``deployed_model`` and ``pipeline_result`` artifacts (and any
        artifact whose payload exposes ``predict``).
        """
        loaded = load_artifact(path)
        if isinstance(loaded, PipelineResult):
            loaded = loaded.model
        if not isinstance(loaded, DeployedModel) and not hasattr(loaded, "predict"):
            raise ArtifactError(
                f"Artifact at {path} contains {type(loaded).__name__}, which is not servable"
            )
        return cls(loaded, **kwargs)

    # ------------------------------------------------------------ serving
    @property
    def requires_group(self) -> bool:
        """Whether requests must carry group membership (capability-driven)."""
        return self.model.requires_group

    def predict(self, X, group=None, *, y_true=None, sequence=None, trace_id=None) -> np.ndarray:
        """Serve one request of ``len(X)`` records and return the predictions.

        ``group`` is required only when the model's intervention declared
        ``requires_group_at_predict``; otherwise it is optional audit
        information consumed by the attached monitor (never by the model).
        ``y_true`` (optional, audit) likewise only feeds the monitor.
        ``sequence`` (optional) stamps the monitor chunk with a stream-wide
        position — a :class:`~repro.fleet.FleetService` fanning one stream
        across shards passes it so per-shard monitor windows stay mergeable
        into the union view; standalone callers leave it ``None``.
        ``trace_id`` (optional) is the fleet-assigned trace identity for this
        micro-batch: when present (and telemetry is enabled) the request is
        wrapped in a ``serving.request`` span carrying
        ``trace_id``/``shard_id``/``sequence``, and the latency observation
        attaches the trace id as a bucket exemplar, so stitched fleet traces
        and tail-latency buckets resolve to concrete requests.

        Safe to call from multiple threads; raises
        :class:`~repro.exceptions.ValidationError` once the service has been
        closed.
        """
        if self._closed:
            raise ValidationError(
                "PredictionService is closed; predictions after close() are not "
                "served (create a new service from the same model or artifact)"
            )
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if self.model.requires_group and group is None:
            raise ValidationError(
                f"{self.model.name} declared requires_group_at_predict; this request "
                "must include the group array (group-blind serving is only available "
                "for interventions that did not declare the capability)"
            )
        if group is not None:
            group = np.asarray(group).ravel()
            if group.shape[0] != X.shape[0]:
                raise ValidationError("X and group must have the same number of rows")

        # The request span only exists for traced calls (fleet dispatch), so
        # untraced hot paths pay nothing beyond the usual `enabled` read.
        span_cm = nullcontext(None)
        if trace_id is not None and self.telemetry.enabled:
            attributes = {"trace_id": str(trace_id), "rows": int(X.shape[0])}
            if self.shard_id is not None:
                attributes["shard_id"] = self.shard_id
            span_cm = self.telemetry.span("serving.request", **attributes)
        with span_cm as span_handle:
            start = time.perf_counter()
            predictions = self._predict_batched(X, group)
            elapsed = time.perf_counter() - start

            if self.telemetry.enabled:
                self._m_requests.inc()
                self._m_records.inc(int(X.shape[0]))
                self._m_latency.observe(
                    elapsed, exemplar=None if trace_id is None else str(trace_id)
                )

            # Stats are read-modify-write and the monitor's sliding window is
            # not internally synchronized; one lock keeps both exact under
            # concurrent callers.
            with self._lock:
                self.stats.n_requests += 1
                self.stats.n_records += int(X.shape[0])
                self.stats.total_seconds += elapsed
                served_sequence = sequence
                if self.monitor is not None:
                    # Group-blind requests still feed the monitor: the drift
                    # alarm scores features alone, only the fairness counts
                    # need `group`.
                    served_sequence = self.monitor.update(
                        predictions, group, y_true=y_true, X=X, sequence=sequence
                    )
                if served_sequence is not None and self.events.enabled:
                    # Keyed by the monitor's sequence stamp — never by trace
                    # id or wall clock — so shard logs merge bit-identically.
                    self.events.emit(
                        "request", sequence=int(served_sequence), rows=int(X.shape[0])
                    )
            if span_handle is not None and served_sequence is not None:
                span_handle.set(sequence=int(served_sequence))
        return predictions

    def predict_records(self, numeric, categorical=None, group=None, *, y_true=None) -> np.ndarray:
        """Serve *raw* records through the fit-time preprocessing, then predict."""
        if self.preprocessor is None:
            raise ValidationError(
                "PredictionService has no preprocessor; construct it with "
                "preprocessor= to serve raw records"
            )
        X = self.preprocessor.transform_features(numeric, categorical)
        return self.predict(X, group, y_true=y_true)

    def score(self, X, y_true, group) -> FairnessReport:
        """Serve a labelled batch and return its offline-equivalent report.

        The report is computed from the same streaming counts the monitor
        accumulates, so ``score`` and the windowed monitor agree exactly.
        """
        y_true = np.asarray(y_true).ravel()
        predictions = self.predict(X, group, y_true=y_true)
        return report_from_counts(StreamCounts.from_batch(predictions, group, y_true))

    def close(self) -> None:
        """Shut down the worker pool and refuse further predictions.

        Idempotent.  Subsequent :meth:`predict` calls raise
        :class:`~repro.exceptions.ValidationError` — they used to silently
        resurrect a fresh pool, which leaked executors and masked lifecycle
        bugs in callers.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- batching
    def _worker_pool(self) -> ThreadPoolExecutor:
        # One pool for the service's lifetime: per-request thread spawn and
        # join would dominate small-request latency.  Lazy init runs under
        # the service lock — two concurrent first requests used to race the
        # None check and each build an executor, leaking one.
        with self._lock:
            if self._closed:
                raise ValidationError("PredictionService is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
            return self._pool

    def _predict_batched(self, X: np.ndarray, group) -> np.ndarray:
        n = X.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        slices = [slice(i, min(i + self.batch_size, n)) for i in range(0, n, self.batch_size)]
        recording = self.telemetry.enabled
        if recording:
            for sl in slices:
                self._m_batch_rows.observe(sl.stop - sl.start)
        if self.max_workers is not None and self.max_workers > 1 and len(slices) > 1:
            if recording:
                # Queue wait = time a micro-batch sat in the pool's queue
                # between submission and a worker thread picking it up.
                queue_wait = self._m_queue_wait
                submitted = time.perf_counter()

                def run(sl: slice) -> np.ndarray:
                    queue_wait.observe(time.perf_counter() - submitted)
                    return self._predict_one(X, group, sl)

                chunks = list(self._worker_pool().map(run, slices))
            else:
                chunks = list(
                    self._worker_pool().map(lambda sl: self._predict_one(X, group, sl), slices)
                )
        else:
            chunks = [self._predict_one(X, group, sl) for sl in slices]
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks)

    def _predict_one(self, X: np.ndarray, group, sl: slice) -> np.ndarray:
        group_slice = group[sl] if (group is not None and self.model.requires_group) else None
        return np.asarray(self.model.predict(X[sl], group=group_slice))
