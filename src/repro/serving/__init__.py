"""Model serving: artifacts, a batched prediction service, online monitoring.

This subpackage turns a fitted intervention into something *deployable*,
completing the paper's non-invasive premise (fair serving without the group
attribute at prediction time):

* :mod:`repro.serving.artifacts` — schema-versioned save/load of fitted
  learners, interventions, :class:`~repro.interventions.DeployedModel`
  artifacts, and whole :class:`~repro.interventions.PipelineResult` bundles
  (manifest JSON + npz payload, bit-identical prediction round trips,
  :class:`~repro.exceptions.ArtifactError` on any mismatch);
* :mod:`repro.serving.service` — :class:`PredictionService`, a micro-batched
  (optionally thread-pooled) serving front end that enforces the
  intervention's declared capabilities;
* :mod:`repro.serving.monitor` — :class:`FairnessMonitor`, sliding-window
  DI*/AOD*/balanced-accuracy over served traffic plus three drift alarms:
  conformance violation (training-time partition profile), density drift
  (training-data KDE), and group-prevalence shift (windowed minority
  fraction vs. the training mix).  The monitor is checkpointable —
  ``state_dict`` / ``load_state_dict`` round-trip the full sliding window
  bit-identically, and it rides in artifacts;
* :mod:`repro.serving.mitigation` — :class:`MitigationController`, the
  response half of the loop (see *Closing the loop* below), plus
  :func:`calibrate_thresholds` for data-driven alarm thresholds;
* :mod:`repro.serving.cli` — the ``repro-serve`` command
  (``fit``/``save``/``score``/``serve``), also ``python -m repro.serve``.

Closing the loop
----------------
Detection alone does not keep a deployment fair; the paper's premise is
that its interventions are cheap enough to *refit online*.
:class:`MitigationController` wraps a monitored service and completes
detect → mitigate → shadow-deploy → promote: on any monitor alarm it
refits the intervention on the buffered drifted window (a fresh
:class:`~repro.interventions.FairnessPipeline` with the same registry and
``fit_n_jobs`` threading), runs the candidate as a **shadow model** scored
by its own private :class:`FairnessMonitor` on the same live traffic —
profile and baselines re-anchored on the drifted regime — and **promotes**
it once the windowed DI* recovers to within tolerance of the last healthy
level with no balanced-accuracy regression.  Every transition (``alarm``,
``refit``, ``shadow_start``, ``promote``/``reject``) is recorded and
persists via :func:`save_audit_trail` as a schema-versioned artifact that
replays bit-identically.  Monitor configuration is first-class for this:
thresholds travel as one :class:`MonitorThresholds` object (derive one
from a control replay with :func:`calibrate_thresholds`), and baselines as
one :class:`MonitorBaselines` via :meth:`FairnessMonitor.set_baselines`.
Drive the whole loop from simulated drift with
``repro-simulate run --mitigate`` or
:meth:`repro.simulate.SuiteRunner.replay_scenario` (``mitigate=True``),
which also scores time-to-recovery and fairness-regret.

Thread safety
-------------
A :class:`PredictionService` **is** safe to share across caller threads:
worker-pool initialization, :class:`ServiceStats` accumulation, and the
attached monitor's window updates are serialized under one internal service
lock, and ``predict`` after ``close()`` raises
:class:`~repro.exceptions.ValidationError` (it never resurrects a pool).  A
bare :class:`FairnessMonitor` is **not** internally synchronized — share it
only through a service (which locks around ``update``) or add your own
lock.  Loaded artifacts and :class:`~repro.interventions.DeployedModel`
instances are read-only at predict time and safe to share.

Observability
-------------
With :mod:`repro.telemetry` enabled (``telemetry.enable()`` or any CLI's
``--metrics-out``), every ``predict`` records ``serving.requests_total`` /
``serving.records_total`` counters and ``serving.request_latency_seconds``
/ ``serving.batch_rows`` / ``serving.queue_wait_seconds`` histograms, and
the mmap extraction cache publishes ``serving.mmap_cache.*`` gauges at
export time.  Pass a private :class:`~repro.telemetry.MetricsRegistry` via
``PredictionService(..., telemetry=...)`` to keep one service's metrics
separable (fleet shards do this so their histograms merge exactly); by
default the process-wide registry is used.  Recording costs one attribute
read while telemetry is off.

The flight recorder rides alongside: when the service's
:class:`~repro.telemetry.EventLog` is enabled (``--events-out`` on any
CLI), every ``predict`` emits a ``request`` event stamped with the
monitor-assigned sequence, :class:`MitigationController` logs every
transition together with a full
:meth:`FairnessMonitor.alarm_report` channel-attribution snapshot, and
alarm edges carry the same snapshot — so ``repro-telemetry tail --kind
channel_snapshot`` answers *which channel alarmed, at what statistic,
against what threshold* after the fact.  When a request arrives with a
``trace_id`` (the fleet front-end assigns deterministic ones), the service
opens a ``serving.request`` span carrying the trace id, row count,
shard id, and served sequence — the join key back into the event log.

Scaling out
-----------
One service on one thread pool is the single-shard case.  To serve the same
artifact from N shards, see :mod:`repro.fleet`: ``load_artifact(...,
mmap_mode="r")`` memory-maps the payload so every extra worker's cold start
is O(manifest) rather than O(weights), per-shard monitors stay mergeable —
:meth:`FairnessMonitor.merge` folds their ``state_dict``s into the exact
state one monitor would hold after observing the union stream (chunks carry
monotone sequence stamps, so the merge is associative, order-invariant, and
bit-identical) — and :class:`~repro.fleet.FleetService` fans micro-batches
out to the shards while aggregating their :class:`ServiceStats` and merged
windowed report.  Everything here stays valid per shard; the fleet layer
only adds dispatch and aggregation on top.

Quickstart::

    from repro import FairnessPipeline
    from repro.serving import PredictionService, FairnessMonitor, save_artifact

    result = FairnessPipeline("diffair", dataset="meps", seed=7).run()
    save_artifact(result, "artifacts/meps-diffair")

    service = PredictionService.from_artifact(
        "artifacts/meps-diffair", monitor=FairnessMonitor(window_size=5000)
    )
    predictions = service.predict(incoming_rows)          # group-blind
    print(service.monitor.windowed_summary())
"""

from repro.serving.artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    describe_artifact,
    find_profile,
    load_artifact,
    read_manifest,
    register_serializable,
    save_artifact,
)
from repro.serving.mitigation import (
    MITIGATION_SCHEMA_VERSION,
    MitigationController,
    MitigationTransition,
    ThresholdCalibration,
    calibrate_thresholds,
    load_audit_trail,
    save_audit_trail,
    summarize_transitions,
)
from repro.serving.monitor import (
    DensityDriftStatus,
    DriftStatus,
    FairnessMonitor,
    GroupShiftStatus,
    MonitorBaselines,
    MonitorThresholds,
)
from repro.serving.service import PredictionService, ServiceStats

# The monitor is checkpointable: registering it here (the one module that
# already imports both sides) lets a windowed monitor ride inside artifacts
# without coupling monitor.py to the artifact encoder.
register_serializable(FairnessMonitor)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "MITIGATION_SCHEMA_VERSION",
    "DensityDriftStatus",
    "DriftStatus",
    "FairnessMonitor",
    "GroupShiftStatus",
    "MitigationController",
    "MitigationTransition",
    "MonitorBaselines",
    "MonitorThresholds",
    "PredictionService",
    "ServiceStats",
    "ThresholdCalibration",
    "calibrate_thresholds",
    "describe_artifact",
    "find_profile",
    "load_artifact",
    "load_audit_trail",
    "read_manifest",
    "register_serializable",
    "save_artifact",
    "save_audit_trail",
    "summarize_transitions",
]
