"""Close the loop: detect → mitigate → shadow-deploy → promote.

The monitors (:mod:`repro.serving.monitor`) only *detect* drift; this module
responds to it.  :class:`MitigationController` wraps a monitored
:class:`~repro.serving.PredictionService` and runs a small state machine on
the live traffic:

1. **monitoring** — traffic flows through the primary service; while no
   alarm is raised the controller tracks the last *healthy* windowed DI* and
   balanced accuracy (the recovery targets);
2. **alarmed** — any monitor channel (conformance, density, group) fired.
   Labelled traffic keeps accumulating in a bounded buffer; once enough rows
   are available the controller *refits* the intervention on the drifted
   window through a fresh :class:`~repro.interventions.FairnessPipeline`
   (same registry and ``fit_n_jobs`` threading as offline fits);
3. **shadowing** — the refitted candidate serves the same live traffic as a
   *shadow model*: its predictions are scored by a private
   :class:`~repro.serving.FairnessMonitor` (rebuilt around the candidate's
   new partition profile, with baselines re-anchored on the drifted window)
   but never returned to callers;
4. **promote / reject** — once the shadow window is warm, the candidate is
   promoted when its windowed DI* has recovered to within tolerance of the
   healthy level with no balanced-accuracy regression and no shadow alarm;
   a candidate that cannot prove itself within ``max_shadow_steps`` is
   rejected and the primary keeps serving.

Every transition (``alarm``, ``refit``, ``refit_failed``, ``shadow_start``,
``promote``, ``reject``) is recorded as a :class:`MitigationTransition` with
deterministic, JSON-scalar details, so the audit trail of a seeded replay is
reproducible run to run and — persisted via :func:`save_audit_trail` /
:func:`load_audit_trail` as a schema-versioned artifact — replays
bit-identically.

Adaptive thresholds live here too: :func:`calibrate_thresholds` replays
*control* (drift-free) traffic through a probe monitor and derives
``drift_factor`` / ``density_drop`` / ``group_tolerance`` that keep the
joint false-alarm rate at or below a requested target, returning the
calibrated :class:`~repro.serving.MonitorThresholds` inside a
:class:`ThresholdCalibration`.

With :mod:`repro.telemetry` enabled, every transition increments a
``mitigation.<event>_total`` counter and leaves a ``mitigation.transition``
span; refits additionally run under a ``mitigation.refit`` span and feed the
``mitigation.refit_seconds`` histogram.
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.splits import split_dataset
from repro.datasets.table import Dataset
from repro.density.kde import KernelDensity
from repro.exceptions import ArtifactError, ReproError, ValidationError
from repro.serving.artifacts import find_profile, load_artifact, save_artifact
from repro.serving.monitor import FairnessMonitor, MonitorThresholds
from repro.serving.service import PredictionService, ServiceStats
from repro.telemetry import MetricsRegistry, get_event_log, get_registry

MITIGATION_SCHEMA_VERSION = 1
"""Bumped whenever the persisted audit-trail layout changes incompatibly."""

#: Transition events in the order the state machine can emit them.
TRANSITION_EVENTS = (
    "alarm",
    "refit",
    "refit_failed",
    "shadow_start",
    "promote",
    "reject",
)


@dataclass(frozen=True)
class MitigationTransition:
    """One audit-trail entry: what the controller did, when, and why.

    ``step`` counts the controller's served requests (one replay step each);
    ``n_seen`` is the primary monitor's cumulative record count at the
    transition.  ``details`` holds only JSON scalars (strings, ints, floats,
    bools, ``None``) so the trail round-trips bit-identically through the
    artifact manifest.
    """

    event: str
    step: int
    n_seen: int
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.event not in TRANSITION_EVENTS:
            raise ValidationError(
                f"Unknown mitigation event {self.event!r}; expected one of "
                f"{TRANSITION_EVENTS}"
            )
        for key, value in self.details.items():
            if value is not None and not isinstance(value, (bool, int, float, str)):
                raise ValidationError(
                    f"Transition detail {key!r} must be a JSON scalar, got "
                    f"{type(value).__name__} (the audit trail must replay "
                    "bit-identically through the manifest)"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "event": self.event,
            "step": self.step,
            "n_seen": self.n_seen,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MitigationTransition":
        return cls(
            event=data["event"],
            step=int(data["step"]),
            n_seen=int(data["n_seen"]),
            details=dict(data.get("details") or {}),
        )


@dataclass(frozen=True)
class ThresholdCalibration:
    """Outcome of :func:`calibrate_thresholds` on a control replay.

    ``thresholds`` is the calibrated config; ``empirical_false_alarm_rate``
    is the rate those thresholds achieve on the calibration traffic itself.
    The guarantee is one-sided (the documented slack): the empirical rate is
    **at most** the target — thresholds are placed so at most
    ``floor(target * n_eligible_steps)`` calibration steps alarm — and can
    sit below it when the per-channel statistics of the borderline steps
    are not separable.
    """

    thresholds: MonitorThresholds
    target_false_alarm_rate: float
    empirical_false_alarm_rate: float
    n_steps: int
    n_eligible_steps: int
    n_allowed_alarms: int
    channel_cutoffs: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "thresholds": self.thresholds.to_dict(),
            "target_false_alarm_rate": self.target_false_alarm_rate,
            "empirical_false_alarm_rate": self.empirical_false_alarm_rate,
            "n_steps": self.n_steps,
            "n_eligible_steps": self.n_eligible_steps,
            "n_allowed_alarms": self.n_allowed_alarms,
            "channel_cutoffs": dict(self.channel_cutoffs),
        }


# --------------------------------------------------------------------------
# threshold calibration
# --------------------------------------------------------------------------


def _alarmed_channels(monitor: FairnessMonitor) -> Tuple[str, ...]:
    """Names of the monitor channels currently raising an alarm."""
    channels = []
    if monitor.profile is not None and monitor.drift_status().alarm:
        channels.append("conformance")
    if monitor.density_estimator is not None and monitor.density_status().alarm:
        channels.append("density")
    if monitor.group_baseline_fraction is not None and monitor.group_status().alarm:
        channels.append("group")
    return tuple(channels)


def calibrate_thresholds(
    monitor: FairnessMonitor,
    control_batches,
    *,
    target_false_alarm_rate: float = 0.05,
) -> ThresholdCalibration:
    """Derive alarm thresholds from a control replay at a target false-alarm rate.

    Parameters
    ----------
    monitor:
        A configured :class:`FairnessMonitor` whose *baselines are already
        fixed* — its channels (profile, density estimator, group baseline)
        define which thresholds are calibrated; its current
        ``min_violation`` / ``min_samples`` are carried over unchanged.
        The monitor itself is not touched: calibration replays through a
        :meth:`~FairnessMonitor.config_clone`.
    control_batches:
        Iterable of drift-free traffic batches — anything exposing ``X``
        and ``group`` row arrays per item, e.g. a
        :class:`~repro.simulate.TrafficStream` built without a scenario.
        Predictions are irrelevant to the drift channels, so none are made.
    target_false_alarm_rate:
        Desired fraction of calibration steps that may alarm (jointly,
        across all active channels).  The achieved rate is at most this
        (see :class:`ThresholdCalibration` for the slack direction).

    Returns
    -------
    ThresholdCalibration
        Carrying the calibrated :class:`MonitorThresholds` — construct the
        production monitor with ``FairnessMonitor(thresholds=...)`` (the
        object round-trips through ``state_dict`` and artifacts, and drives
        a monitor bit-identical to the equivalent flat-kwargs spelling).
    """
    if not 0.0 <= target_false_alarm_rate < 1.0:
        raise ValidationError("target_false_alarm_rate must be in [0, 1)")
    base = monitor.baselines
    probe = monitor.config_clone()
    probe.set_baselines(base)

    # Per eligible step, the raw statistic each active channel would compare
    # against its threshold: windowed mean violation, log-density drop,
    # minority-fraction shift.
    observed: List[Dict[str, float]] = []
    n_steps = 0
    for batch in control_batches:
        X = np.asarray(batch.X, dtype=np.float64)
        group = np.asarray(batch.group).ravel() if batch.group is not None else None
        probe.update(np.zeros(X.shape[0], dtype=np.int64), group, X=X)
        n_steps += 1
        stats: Dict[str, float] = {}
        if probe.profile is not None and base.violation is not None:
            status = probe.drift_status()
            if status.n_scored >= probe.min_samples:
                stats["conformance"] = status.mean_violation
        if probe.density_estimator is not None and base.log_density is not None:
            status = probe.density_status()
            if status.n_scored >= probe.min_samples and status.drop is not None:
                stats["density"] = status.drop
        if base.group_fraction is not None:
            status = probe.group_status()
            if status.n_scored >= probe.min_samples and status.shift is not None:
                stats["group"] = status.shift
        if stats:
            observed.append(stats)
    if not observed:
        raise ValidationError(
            "calibrate_thresholds saw no eligible control steps: the replay "
            "must be long enough for at least one window to reach min_samples "
            "on some active channel (and the monitor needs fixed baselines)"
        )

    n_eligible = len(observed)
    n_allowed = int(target_false_alarm_rate * n_eligible)

    # Rank every step by how extreme its worst channel is *within that
    # channel's own distribution* (cross-channel statistics are not
    # comparable in raw units).  The n_allowed most extreme steps are the
    # only ones permitted to alarm; each channel's cutoff is then the
    # largest statistic any non-permitted step showed, so — alarms being
    # strict inequalities — no other step can fire on any channel.
    channels = sorted({name for stats in observed for name in stats})
    ranks: List[float] = []
    per_channel: Dict[str, List[float]] = {
        name: sorted(stats[name] for stats in observed if name in stats)
        for name in channels
    }
    for stats in observed:
        score = 0.0
        for name, value in stats.items():
            pool = per_channel[name]
            score = max(score, bisect.bisect_left(pool, value) / len(pool))
        ranks.append(score)
    order = sorted(range(n_eligible), key=lambda i: (-ranks[i], -i))
    allowed = set(order[:n_allowed])

    cutoffs: Dict[str, float] = {}
    for name in channels:
        disallowed = [
            observed[i][name]
            for i in range(n_eligible)
            if i not in allowed and name in observed[i]
        ]
        pool = disallowed if disallowed else per_channel[name]
        cutoffs[name] = float(max(pool))

    current = monitor.thresholds
    updates: Dict[str, float] = {}
    if "conformance" in cutoffs and base.violation is not None and base.violation > 0:
        updates["drift_factor"] = max(cutoffs["conformance"] / base.violation, 1e-9)
    if "density" in cutoffs:
        updates["density_drop"] = max(cutoffs["density"], 1e-9)
    if "group" in cutoffs:
        updates["group_tolerance"] = min(max(cutoffs["group"], 1e-9), 1.0)
    calibrated = current.replace(**updates)

    # Empirical check against the recorded statistics, with the calibrated
    # monitor's exact alarm predicates.
    def step_alarms(stats: Dict[str, float]) -> bool:
        if "conformance" in stats and base.violation is not None:
            threshold = max(
                calibrated.drift_factor * base.violation, calibrated.min_violation
            )
            if stats["conformance"] > threshold:
                return True
        if "density" in stats and stats["density"] > calibrated.density_drop:
            return True
        return "group" in stats and stats["group"] > calibrated.group_tolerance

    n_alarms = sum(1 for stats in observed if step_alarms(stats))
    return ThresholdCalibration(
        thresholds=calibrated,
        target_false_alarm_rate=float(target_false_alarm_rate),
        empirical_false_alarm_rate=n_alarms / n_eligible,
        n_steps=n_steps,
        n_eligible_steps=n_eligible,
        n_allowed_alarms=n_allowed,
        channel_cutoffs=cutoffs,
    )


# --------------------------------------------------------------------------
# the controller
# --------------------------------------------------------------------------


class MitigationController:
    """Self-healing front end: serve, watch, refit, shadow-score, promote.

    Speaks the same protocol as :class:`PredictionService` — ``predict`` /
    ``monitor`` / ``stats`` / ``telemetry`` / ``close`` — so a
    :class:`~repro.simulate.ReplayHarness` (or any caller) can drive it as a
    drop-in replacement; ``stats`` accumulates across promotions, and
    ``monitor`` always exposes the *currently serving* model's monitor.

    Parameters
    ----------
    service:
        The primary :class:`PredictionService`; must carry a
        :class:`FairnessMonitor` with fixed baselines (the alarms drive the
        loop).  The controller owns it from here on — ``close`` closes it,
        and a promotion closes and replaces it.
    intervention, learner, intervention_params, fit_n_jobs, seed:
        Refit recipe, forwarded verbatim to
        :class:`~repro.interventions.FairnessPipeline` over the buffered
        drifted window.
    n_numeric_features:
        Leading numeric columns of the traffic (defaults to the primary
        monitor's setting); the refit window :class:`Dataset` and the
        shadow monitor's density refit need it.
    min_refit_rows:
        Labelled rows that must be buffered before a refit is attempted.
    buffer_rows:
        Bound on the labelled-row buffer (oldest rows are dropped first).
    min_shadow_steps, max_shadow_steps:
        A candidate is scored only after ``min_shadow_steps`` shadow updates
        and rejected after ``max_shadow_steps`` without promotion.
    di_tolerance, accuracy_tolerance:
        Promotion requires the shadow's windowed DI* within
        ``di_tolerance`` of the last healthy DI* and its balanced accuracy
        within ``accuracy_tolerance`` of the last healthy level.
    cooldown_steps:
        Steps after a promotion/rejection during which alarms are ignored
        (mixed windows legitimately stay alarmed while drifted rows age
        out).
    refit_density:
        Refit a fresh KDE on the drifted window for the shadow monitor's
        density channel (only when the primary monitor has one).
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry`; defaults to the
        primary service's registry.
    """

    def __init__(
        self,
        service: PredictionService,
        *,
        intervention: str = "confair",
        learner: str = "lr",
        intervention_params: Optional[Dict[str, Any]] = None,
        fit_n_jobs: Optional[int] = None,
        seed: int = 7,
        n_numeric_features: Optional[int] = None,
        min_refit_rows: int = 400,
        buffer_rows: int = 4000,
        min_shadow_steps: int = 5,
        max_shadow_steps: int = 25,
        di_tolerance: float = 0.10,
        accuracy_tolerance: float = 0.05,
        cooldown_steps: int = 5,
        refit_density: bool = True,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        if service.monitor is None:
            raise ValidationError(
                "MitigationController needs a PredictionService with a "
                "FairnessMonitor attached; construct the service with monitor="
            )
        if min_refit_rows < 1:
            raise ValidationError("min_refit_rows must be at least 1")
        if buffer_rows < min_refit_rows:
            raise ValidationError("buffer_rows must be at least min_refit_rows")
        if min_shadow_steps < 1:
            raise ValidationError("min_shadow_steps must be at least 1")
        if max_shadow_steps < min_shadow_steps:
            raise ValidationError("max_shadow_steps must be at least min_shadow_steps")
        if di_tolerance < 0 or accuracy_tolerance < 0:
            raise ValidationError("promotion tolerances must be non-negative")
        if cooldown_steps < 0:
            raise ValidationError("cooldown_steps must be non-negative")
        self.service = service
        self.intervention = intervention
        self.learner = learner
        self.intervention_params = dict(intervention_params or {})
        self.fit_n_jobs = fit_n_jobs
        self.seed = int(seed)
        self.n_numeric_features = (
            n_numeric_features
            if n_numeric_features is not None
            else service.monitor.n_numeric_features
        )
        self.min_refit_rows = int(min_refit_rows)
        self.buffer_rows = int(buffer_rows)
        self.min_shadow_steps = int(min_shadow_steps)
        self.max_shadow_steps = int(max_shadow_steps)
        self.di_tolerance = float(di_tolerance)
        self.accuracy_tolerance = float(accuracy_tolerance)
        self.cooldown_steps = int(cooldown_steps)
        self.refit_density = bool(refit_density)
        self.telemetry = telemetry if telemetry is not None else service.telemetry

        self.state = "monitoring"
        self.stats = ServiceStats()
        self.transitions: List[MitigationTransition] = []
        self.n_promotions = 0
        self.n_rejections = 0
        self._step = 0
        self._cooldown = 0
        self._healthy_di: Optional[float] = None
        self._healthy_bacc: Optional[float] = None
        self._shadow: Optional[PredictionService] = None
        self._shadow_steps = 0
        self._buffer: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffer_count = 0
        self._lock = threading.Lock()
        self._m_transitions = {
            event: self.telemetry.counter(f"mitigation.{event}s_total")
            for event in TRANSITION_EVENTS
        }
        self._m_refit_seconds = self.telemetry.histogram("mitigation.refit_seconds")

    # ----------------------------------------------------------- protocol
    @property
    def monitor(self) -> FairnessMonitor:
        """The currently serving model's monitor (swapped on promotion)."""
        return self.service.monitor

    @property
    def events(self):
        """The primary service's flight recorder (swapped on promotion)."""
        return self.service.events

    @property
    def shadow_service(self) -> Optional[PredictionService]:
        """The candidate being shadow-scored, if any."""
        return self._shadow

    def close(self) -> None:
        """Close the primary service and any in-flight shadow candidate."""
        with self._lock:
            shadow, self._shadow = self._shadow, None
        if shadow is not None:
            shadow.close()
        self.service.close()

    def __enter__(self) -> "MitigationController":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ serving
    def predict(self, X, group=None, *, y_true=None, sequence=None) -> np.ndarray:
        """Serve one request through the primary model and advance the loop.

        Returns the *primary* model's predictions always — a shadow
        candidate sees the same request but its predictions never leave the
        controller.  One ``predict`` call is one controller step.
        """
        start = time.perf_counter()
        predictions = self.service.predict(X, group, y_true=y_true, sequence=sequence)
        elapsed = time.perf_counter() - start
        rows = int(predictions.shape[0])
        # The controller keeps its own cumulative stats: a promotion swaps
        # the primary service (whose stats restart at zero), but the loop's
        # caller sees one uninterrupted serving history.
        with self._lock:
            self._step += 1
            self.stats.n_requests += 1
            self.stats.n_records += rows
            self.stats.total_seconds += elapsed
            self._buffer_batch(X, group, y_true)
            self._advance(X, group, y_true)
        return predictions

    # -------------------------------------------------------- state machine
    def _buffer_batch(self, X, group, y_true) -> None:
        if group is None or y_true is None:
            return
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        self._buffer.append(
            (X, np.asarray(y_true).ravel(), np.asarray(group).ravel())
        )
        self._buffer_count += X.shape[0]
        while self._buffer_count - self._buffer[0][0].shape[0] >= self.buffer_rows:
            dropped, *_ = self._buffer.pop(0)
            self._buffer_count -= dropped.shape[0]

    def _record(self, event: str, **details: Any) -> None:
        transition = MitigationTransition(
            event=event,
            step=self._step,
            n_seen=int(self.monitor.n_seen),
            details=details,
        )
        self.transitions.append(transition)
        if self.telemetry.enabled:
            self._m_transitions[event].inc()
            with self.telemetry.span("mitigation.transition", event=event, step=self._step):
                pass
        events = getattr(self.service, "events", None)
        events = events if events is not None else get_event_log()
        if events.enabled:
            # Transition details stay JSON scalars (the audit-trail contract);
            # the full per-channel attribution rides a channel_snapshot event
            # at the same sequence stamp, so the trail and the flight recorder
            # correlate exactly.
            sequence = int(self.monitor.last_sequence)
            events.emit(
                "mitigation_transition",
                sequence=sequence,
                event=event,
                step=self._step,
                n_seen=int(self.monitor.n_seen),
                details=dict(details),
            )
            events.emit(
                "channel_snapshot",
                sequence=sequence,
                trigger=f"mitigation:{event}",
                step=self._step,
                report=self.monitor.alarm_report(),
            )

    def _windowed_health(self, monitor: FairnessMonitor):
        """(di_star, balanced_accuracy) of a monitor's window, where computable."""
        di = monitor.windowed_summary().get("di_star")
        try:
            bacc: Optional[float] = monitor.windowed_report().balanced_accuracy
        except ReproError:
            # Unlabelled or one-group windows cannot produce a full report.
            bacc = None
        return di, bacc

    def _advance(self, X, group, y_true) -> None:
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.state == "monitoring":
            channels = _alarmed_channels(self.monitor)
            if channels:
                self._record(
                    "alarm",
                    channels=",".join(channels),
                    healthy_di_star=self._healthy_di,
                    healthy_balanced_accuracy=self._healthy_bacc,
                )
                # The alarm marks a regime change: rows buffered before it
                # belong to the old regime and would drag the refit (and the
                # shadow monitor's re-anchored baselines) back toward the
                # stale distribution.  Refit on post-alarm traffic only.
                self._buffer.clear()
                self._buffer_count = 0
                self.state = "alarmed"
            else:
                di, bacc = self._windowed_health(self.monitor)
                if di is not None:
                    self._healthy_di = float(di)
                if bacc is not None:
                    self._healthy_bacc = float(bacc)
                return
        if self.state == "alarmed":
            if self._buffer_count >= self.min_refit_rows:
                self._attempt_refit()
            return
        if self.state == "shadowing":
            self._shadow_step(X, group, y_true)

    def _window_dataset(self) -> Dataset:
        X = np.concatenate([chunk for chunk, _, _ in self._buffer])
        y = np.concatenate([labels for _, labels, _ in self._buffer])
        group = np.concatenate([members for _, _, members in self._buffer])
        return Dataset(
            X=X,
            y=y.astype(np.int64),
            group=group.astype(np.int64),
            n_numeric_features=self.n_numeric_features,
            name="mitigation-window",
        )

    def _attempt_refit(self) -> None:
        # Imported lazily: interventions.pipeline is a heavier layer than
        # serving, and only refits need it.
        from repro.interventions.pipeline import FairnessPipeline

        start = time.perf_counter()
        try:
            with self.telemetry.span(
                "mitigation.refit",
                intervention=self.intervention,
                learner=self.learner,
                rows=self._buffer_count,
            ):
                window = self._window_dataset()
                split = split_dataset(window, random_state=self.seed)
                result = FairnessPipeline(
                    intervention=self.intervention,
                    learner=self.learner,
                    dataset=split,
                    seed=self.seed,
                    intervention_params=dict(self.intervention_params),
                    fit_n_jobs=self.fit_n_jobs,
                ).run()
        except ReproError as error:
            self._record(
                "refit_failed",
                error=f"{type(error).__name__}: {error}",
                rows=self._buffer_count,
            )
            # Back off before retrying so a structurally unsplittable window
            # does not refit on every subsequent request.
            self._cooldown = self.cooldown_steps
            return
        if self.telemetry.enabled:
            self._m_refit_seconds.observe(time.perf_counter() - start)
        self._record(
            "refit",
            intervention=self.intervention,
            learner=self.learner,
            rows=self._buffer_count,
            refit_di_star=float(result.report.di_star),
            refit_balanced_accuracy=float(result.report.balanced_accuracy),
        )
        self._start_shadow(result, split)

    def _start_shadow(self, result, split) -> None:
        primary_monitor = self.monitor
        density = None
        if self.refit_density and primary_monitor.density_estimator is not None:
            # Re-anchor the density channel on the drifted regime: clone the
            # primary KDE's configuration, fit on the window's train rows.
            density = KernelDensity(
                **primary_monitor.density_estimator.get_params()
            ).fit(split.train.numeric_X)
        shadow_monitor = FairnessMonitor(
            window_size=primary_monitor.window_size,
            profile=find_profile(result),
            density_estimator=density,
            n_numeric_features=primary_monitor.n_numeric_features,
            thresholds=primary_monitor.thresholds,
        )
        # Fresh baselines from the drifted window: the candidate must look
        # healthy *in the new regime*, not relative to the stale fit.
        if shadow_monitor.profile is not None:
            shadow_monitor.set_baselines(violation=split.train.X)
        if density is not None:
            shadow_monitor.set_baselines(log_density=split.validation.X)
        shadow_monitor.set_baselines(group_fraction=float(split.train.minority_fraction))
        # The shadow records into a private registry so its internal
        # predictions never inflate the serving counters callers scrape.
        self._shadow = PredictionService(
            result,
            batch_size=self.service.batch_size,
            max_workers=self.service.max_workers,
            monitor=shadow_monitor,
            telemetry=MetricsRegistry(enabled=self.telemetry.enabled),
        )
        self._shadow_steps = 0
        self._record(
            "shadow_start",
            intervention=self.intervention,
            learner=self.learner,
            window_size=primary_monitor.window_size,
        )
        self.state = "shadowing"

    def _shadow_step(self, X, group, y_true) -> None:
        shadow = self._shadow
        if shadow is None:  # pragma: no cover - defensive
            self.state = "monitoring"
            return
        shadow.predict(X, group, y_true=y_true)
        self._shadow_steps += 1
        if self._shadow_steps < self.min_shadow_steps:
            return
        shadow_di, shadow_bacc = self._windowed_health(shadow.monitor)
        di_ok = shadow_di is not None and (
            self._healthy_di is None or shadow_di >= self._healthy_di - self.di_tolerance
        )
        bacc_ok = (
            self._healthy_bacc is None
            or shadow_bacc is None
            or shadow_bacc >= self._healthy_bacc - self.accuracy_tolerance
        )
        calm = not _alarmed_channels(shadow.monitor)
        if di_ok and bacc_ok and calm:
            self._promote(shadow_di, shadow_bacc)
        elif self._shadow_steps >= self.max_shadow_steps:
            self._reject(shadow_di, shadow_bacc)

    def _promote(self, shadow_di, shadow_bacc) -> None:
        self._record(
            "promote",
            shadow_steps=self._shadow_steps,
            shadow_di_star=shadow_di,
            shadow_balanced_accuracy=shadow_bacc,
            healthy_di_star=self._healthy_di,
            healthy_balanced_accuracy=self._healthy_bacc,
        )
        old, self.service = self.service, self._shadow
        self._shadow = None
        old.close()
        self.n_promotions += 1
        self.state = "monitoring"
        self._cooldown = self.cooldown_steps
        # The promoted model's own window restates what healthy means.
        self._healthy_di = None
        self._healthy_bacc = None

    def _reject(self, shadow_di, shadow_bacc) -> None:
        self._record(
            "reject",
            shadow_steps=self._shadow_steps,
            shadow_di_star=shadow_di,
            shadow_balanced_accuracy=shadow_bacc,
            healthy_di_star=self._healthy_di,
            healthy_balanced_accuracy=self._healthy_bacc,
        )
        shadow, self._shadow = self._shadow, None
        if shadow is not None:
            shadow.close()
        self.n_rejections += 1
        self.state = "monitoring"
        self._cooldown = self.cooldown_steps


# --------------------------------------------------------------------------
# audit-trail persistence
# --------------------------------------------------------------------------


def save_audit_trail(
    source,
    path,
    *,
    metadata: Optional[Dict[str, Any]] = None,
):
    """Persist a mitigation audit trail as a schema-versioned artifact.

    ``source`` is a :class:`MitigationController` or a sequence of
    :class:`MitigationTransition`.  The trail is stored inside a standard
    artifact directory (manifest + payload), so :func:`load_audit_trail`
    restores it bit-identically — every step index, event, and detail value
    compares equal to the original.
    """
    transitions = source.transitions if isinstance(source, MitigationController) else source
    payload = {
        "mitigation_schema_version": MITIGATION_SCHEMA_VERSION,
        "transitions": [
            transition.to_dict()
            for transition in transitions
        ],
    }
    return save_artifact(
        payload,
        path,
        metadata={"kind": "mitigation_audit", **dict(metadata or {})},
    )


def load_audit_trail(path) -> List[MitigationTransition]:
    """Load an audit trail saved by :func:`save_audit_trail`."""
    loaded = load_artifact(path)
    if not isinstance(loaded, dict) or "transitions" not in loaded:
        raise ArtifactError(
            f"Artifact at {path} does not contain a mitigation audit trail"
        )
    version = loaded.get("mitigation_schema_version")
    if version != MITIGATION_SCHEMA_VERSION:
        raise ArtifactError(
            f"Audit trail at {path} has mitigation schema version {version!r}; "
            f"this build supports version {MITIGATION_SCHEMA_VERSION}"
        )
    return [MitigationTransition.from_dict(entry) for entry in loaded["transitions"]]


def summarize_transitions(
    transitions: Sequence[MitigationTransition],
) -> Dict[str, Any]:
    """Compact JSON summary of an audit trail (event counts + verdict)."""
    counts = {event: 0 for event in TRANSITION_EVENTS}
    for transition in transitions:
        counts[transition.event] += 1
    promote_step = next(
        (t.step for t in transitions if t.event == "promote"), None
    )
    return {
        "n_transitions": len(transitions),
        "events": counts,
        "promoted": counts["promote"] > 0,
        "first_promote_step": promote_step,
    }
