"""Online fairness and drift monitoring of served traffic.

The paper frames unfairness as a *data drift* problem: the minority's tuples
follow a different distribution than the majority's, and a deployed model's
fairness degrades exactly when the serving distribution drifts relative to
the profiled training partitions.  :class:`FairnessMonitor` operationalizes
both halves of that framing for a live service:

* **fairness over a sliding window** — DI*, AOD*, and balanced accuracy
  computed incrementally from :class:`~repro.fairness.streaming.StreamCounts`
  (integer sufficient statistics, so window eviction is subtraction and the
  windowed report is bit-identical to the offline
  :func:`~repro.fairness.evaluate_predictions` on the same rows);
* **conformance-violation drift** — every observed tuple is scored against
  the training-time conformance constraints (the same
  :class:`~repro.core.partitions.PartitionProfile` DiffFair routes by); a
  windowed mean violation well above the fit-time baseline means the serving
  data no longer conforms to any training partition, and the monitor raises
  a drift alarm before the fairness metrics (which need labels) can react;
* **density drift** (optional) — when the monitor holds a fitted
  :class:`~repro.density.KernelDensity`, every observed batch is scored in
  one vectorized ``score_samples`` pass (the batch density engine — no
  per-row work on the serving hot path) and the windowed mean log-density is
  compared against the fit-time baseline: traffic sliding into low-density
  regions of the training distribution is the soft, early version of the
  conformance signal;
* **group-prevalence drift** (optional) — a prevalence shift moves the group
  *mix* of the traffic while every individual tuple stays perfectly
  conformant, so neither per-tuple channel can see it; once
  :meth:`FairnessMonitor.set_group_baseline` fixes the training-time minority
  fraction, the windowed minority fraction is compared against it and
  :meth:`FairnessMonitor.group_status` flags mixes that moved beyond the
  tolerance.

The monitor is **checkpointable**: it is a
:class:`~repro.learners.base.BaseEstimator` with a ``state_dict`` /
``load_state_dict`` pair covering the full sliding window (retained chunks,
window aggregates, baselines), and it is registered with
:func:`repro.serving.artifacts.register_serializable` — a long replay can be
paused into an artifact and resumed with bit-identical windowed reports and
alarm decisions.

The monitor is also **mergeable**: every update chunk carries a monotone
*sequence number* (self-assigned, or stamped globally by a
:class:`~repro.fleet.FleetService` fanning one stream across shards), window
float statistics are folded from the retained chunks in sequence order
(never carried as running add/subtract aggregates, whose value would depend
on evicted history), and :meth:`FairnessMonitor.merge` /
:meth:`FairnessMonitor.merge_state_dicts` reduce per-shard windows into one
monitor that is bit-identical — same ``state_dict``, reports, statuses, and
alarms — to a single monitor that observed the union stream.  Merging is
associative and order-invariant: chunks are reordered by sequence, every
monitor records its eviction horizon (the highest sequence it ever evicted
— anything below it is provably union-evicted, since front-first eviction
drops a time-prefix), and the merge replay discards chunks below the
combined horizon before evicting afresh, so any merge tree converges to the
same state.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Any, Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.partitions import PartitionProfile
from repro.density.kde import KernelDensity
from repro.exceptions import ValidationError
from repro.fairness.report import FairnessReport
from repro.fairness.streaming import (
    StreamCounts,
    fold_disparate_impact,
    report_from_counts,
)
from repro.learners.base import BaseEstimator

LOG_DENSITY_FLOOR = -700.0
"""Clamp for ``-inf`` log-densities (zero density under a compact kernel):
``exp(-700)`` sits just above the smallest positive double, so a clamped
window mean stays finite while still signalling maximal drift."""


@dataclass(frozen=True)
class DriftStatus:
    """Snapshot of the conformance-drift alarm.

    ``ratio`` is the windowed mean violation over the baseline (``inf`` when
    the baseline is zero and violations are observed); ``alarm`` is set once
    enough scored samples are in the window and the mean violation exceeds
    ``max(drift_factor * baseline, min_violation)``.
    """

    n_scored: int
    mean_violation: float
    baseline_violation: Optional[float]
    ratio: Optional[float]
    alarm: bool


@dataclass(frozen=True)
class DensityDriftStatus:
    """Snapshot of the density-drift signal.

    ``drop`` is how far (in nats) the windowed mean log-density sits below
    the fit-time baseline; ``alarm`` fires once enough scored samples are in
    the window and the drop exceeds the configured ``density_drop``.
    """

    n_scored: int
    mean_log_density: float
    baseline_log_density: Optional[float]
    drop: Optional[float]
    alarm: bool


@dataclass(frozen=True)
class GroupShiftStatus:
    """Snapshot of the group-prevalence drift signal.

    ``shift`` is the absolute difference between the windowed minority
    fraction and the baseline fraction; ``alarm`` fires once enough
    group-carrying samples are in the window and the shift exceeds the
    configured ``group_tolerance``.
    """

    n_scored: int
    minority_fraction: float
    baseline_fraction: Optional[float]
    shift: Optional[float]
    alarm: bool


@dataclass(frozen=True)
class MonitorThresholds:
    """The monitor's alarm thresholds as one validated, immutable config object.

    This is the canonical spelling of what used to be five loose keyword
    arguments on :class:`FairnessMonitor` — and the value
    :func:`repro.serving.mitigation.calibrate_thresholds` returns, so a
    calibrated configuration can be passed around, persisted in artifacts,
    and handed to ``FairnessMonitor(thresholds=...)`` as a single object.

    Fields mirror the monitor's semantics: ``drift_factor`` (alarm when the
    windowed mean violation exceeds this multiple of the baseline),
    ``min_violation`` (absolute floor for that threshold), ``min_samples``
    (scored observations required before any alarm may fire),
    ``density_drop`` (nats the windowed mean log-density must fall below the
    baseline), and ``group_tolerance`` (absolute minority-fraction shift
    tolerated).
    """

    drift_factor: float = 3.0
    min_violation: float = 0.05
    min_samples: int = 50
    density_drop: float = 1.0
    group_tolerance: float = 0.15

    def __post_init__(self) -> None:
        object.__setattr__(self, "drift_factor", float(self.drift_factor))
        object.__setattr__(self, "min_violation", float(self.min_violation))
        object.__setattr__(self, "min_samples", int(self.min_samples))
        object.__setattr__(self, "density_drop", float(self.density_drop))
        object.__setattr__(self, "group_tolerance", float(self.group_tolerance))
        if self.drift_factor <= 0:
            raise ValidationError("drift_factor must be positive")
        if self.min_violation < 0:
            raise ValidationError("min_violation must be non-negative")
        if self.min_samples < 1:
            raise ValidationError("min_samples must be at least 1")
        if self.density_drop <= 0:
            raise ValidationError("density_drop must be positive")
        if not 0.0 < self.group_tolerance <= 1.0:
            raise ValidationError("group_tolerance must be in (0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-scalar dict form (JSON- and artifact-friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MonitorThresholds":
        """Rebuild from :meth:`to_dict` output, rejecting unknown keys."""
        fields = ("drift_factor", "min_violation", "min_samples", "density_drop", "group_tolerance")
        unknown = sorted(set(data) - set(fields))
        if unknown:
            raise ValidationError(
                f"MonitorThresholds does not accept: {', '.join(map(repr, unknown))}"
            )
        return cls(**{key: data[key] for key in fields if key in data})

    def replace(self, **changes: Any) -> "MonitorThresholds":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class MonitorBaselines:
    """The monitor's drift reference points as one immutable record.

    Each field is a *precomputed scalar* — ``violation`` (fit-time mean
    conformance violation), ``log_density`` (fit-time mean log-density), and
    ``group_fraction`` (training minority fraction) — with ``None`` meaning
    "leave that channel's baseline untouched / unset".  Produced by
    :attr:`FairnessMonitor.baselines` and consumed by
    :meth:`FairnessMonitor.set_baselines`, which also accepts raw arrays per
    channel and scores them itself.
    """

    violation: Optional[float] = None
    log_density: Optional[float] = None
    group_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("violation", "log_density", "group_fraction"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, float(value))
        if self.group_fraction is not None and not 0.0 <= self.group_fraction <= 1.0:
            raise ValidationError("the baseline minority fraction must be in [0, 1]")

    def to_dict(self) -> Dict[str, Any]:
        """Plain-scalar dict form (JSON- and artifact-friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MonitorBaselines":
        """Rebuild from :meth:`to_dict` output, rejecting unknown keys."""
        fields = ("violation", "log_density", "group_fraction")
        unknown = sorted(set(data) - set(fields))
        if unknown:
            raise ValidationError(
                f"MonitorBaselines does not accept: {', '.join(map(repr, unknown))}"
            )
        return cls(**{key: data[key] for key in fields if key in data})


class FairnessMonitor(BaseEstimator):
    """Sliding-window fairness metrics plus conformance/density/group drift alarms.

    Parameters
    ----------
    window_size:
        Target number of most-recent observations retained.  Eviction is
        chunk-granular (whole update batches are dropped oldest-first once
        the total exceeds the window), which keeps updates O(1).
    profile:
        Optional :class:`PartitionProfile` (e.g. ``DiffFair.profile_`` or the
        output of :func:`repro.core.profile_partitions`).  When provided,
        every observed feature batch is scored for conformance violation and
        the drift alarm becomes active.
    density_estimator:
        Optional *fitted* :class:`~repro.density.KernelDensity` (typically
        fitted on the training data's numeric columns).  When provided,
        every observed feature batch is scored through the batch density
        engine and the density-drift signal becomes active.
    n_numeric_features:
        How many leading feature columns are numeric (what the constraints
        and the density estimator profile).  Defaults to the width the
        profile's constraints (or the density estimator) expect.
    thresholds:
        The alarm thresholds as one :class:`MonitorThresholds` config object
        — the canonical spelling, and what
        :func:`repro.serving.mitigation.calibrate_thresholds` returns.
    drift_factor, min_violation, min_samples, density_drop, group_tolerance:
        **Deprecated** flat spelling of the same thresholds; equivalent to
        passing ``thresholds=MonitorThresholds(...)``.  Passing both
        spellings is accepted only when they agree (clones and artifact
        round trips do this); a disagreement raises
        :class:`~repro.exceptions.ValidationError`.
    """

    def __init__(
        self,
        window_size: int = 5000,
        *,
        profile: Optional[PartitionProfile] = None,
        density_estimator: Optional[KernelDensity] = None,
        n_numeric_features: Optional[int] = None,
        thresholds: Optional[MonitorThresholds] = None,
        drift_factor: Optional[float] = None,
        min_violation: Optional[float] = None,
        min_samples: Optional[int] = None,
        density_drop: Optional[float] = None,
        group_tolerance: Optional[float] = None,
    ) -> None:
        if window_size < 1:
            raise ValidationError("window_size must be at least 1")
        if density_estimator is not None and not hasattr(density_estimator, "training_data_"):
            raise ValidationError(
                "density_estimator must be a fitted KernelDensity (call fit() first)"
            )
        flat = {
            "drift_factor": drift_factor,
            "min_violation": min_violation,
            "min_samples": min_samples,
            "density_drop": density_drop,
            "group_tolerance": group_tolerance,
        }
        provided = {key: value for key, value in flat.items() if value is not None}
        if thresholds is None:
            if provided:
                warnings.warn(
                    "Passing flat threshold kwargs to FairnessMonitor is "
                    "deprecated; pass thresholds=MonitorThresholds(...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            resolved = MonitorThresholds(**provided)
        else:
            if not isinstance(thresholds, MonitorThresholds):
                raise ValidationError(
                    "thresholds must be a MonitorThresholds instance, got "
                    f"{type(thresholds).__name__}"
                )
            resolved = thresholds
            for key, value in provided.items():
                coerced = int(value) if key == "min_samples" else float(value)
                if coerced != getattr(resolved, key):
                    raise ValidationError(
                        f"ambiguous monitor configuration: thresholds.{key}="
                        f"{getattr(resolved, key)!r} but the flat kwarg {key}="
                        f"{value!r} disagrees; pass a single spelling"
                    )
        self.window_size = int(window_size)
        self.profile = profile
        self.density_estimator = density_estimator
        self.n_numeric_features = n_numeric_features
        self._apply_thresholds(resolved)

        # Per retained batch: (counts, batch size, violation sum, violation
        # rows, log-density sum, log-density rows, sequence number).  The
        # integer aggregates below are running (integer add/subtract is
        # exact); the float window sums are *folded from the chunks* on
        # demand so their value depends only on the retained window, never
        # on the add/subtract history of evicted chunks — the property that
        # makes shard merging bit-identical.
        self._chunks: Deque[Tuple[StreamCounts, int, float, int, float, int, int]] = deque()
        self._window_counts = StreamCounts()
        self._window_rows = 0
        self._violation_rows = 0
        self._log_density_rows = 0
        self._next_sequence = 0
        # Highest sequence number ever evicted (-1 before any eviction): the
        # eviction horizon.  Merging drops chunks at or below any input's
        # horizon — a chunk one sub-monitor evicted would have been evicted
        # by the union stream too — which is what makes staged merges agree
        # with the monolithic one (see merge_state_dicts).
        self._evicted_through = -1
        self._baseline_violation: Optional[float] = None
        self._baseline_log_density: Optional[float] = None
        self._baseline_group_fraction: Optional[float] = None
        self.n_seen = 0

    def _apply_thresholds(self, thresholds: MonitorThresholds) -> None:
        """Install a threshold config, mirroring it onto the flat attributes.

        The flat attributes stay the internal (and ``merge``-compared)
        representation so existing readers keep working; ``self.thresholds``
        is the canonical config object they mirror.
        """
        self.thresholds = thresholds
        self.drift_factor = thresholds.drift_factor
        self.min_violation = thresholds.min_violation
        self.min_samples = thresholds.min_samples
        self.density_drop = thresholds.density_drop
        self.group_tolerance = thresholds.group_tolerance

    # ----------------------------------------------------------- updating
    def update(self, y_pred, group=None, *, y_true=None, X=None, sequence=None) -> int:
        """Fold one served batch into the window; returns the batch's sequence.

        Parameters
        ----------
        y_pred:
            The predictions the service returned.
        group:
            Group membership per row — audit-time information the per-group
            fairness accounting needs (even for interventions that never
            read it at prediction time).  ``None`` is the genuinely
            group-blind case: the batch still counts toward the window and
            feeds the drift alarms (conformance and density scoring need
            only ``X``), but contributes nothing to the fairness metrics.
        y_true:
            Optional ground-truth labels (delayed labels are the norm in
            serving; windows mixing labelled and unlabelled traffic support
            :meth:`windowed_summary` but not the full report).
        X:
            Optional feature rows; scored for conformance violation when the
            monitor holds a profile and for log-density when it holds a
            density estimator.
        sequence:
            Optional global position of this batch in the stream.  Left
            ``None`` (a single monitor consuming its own stream) the monitor
            self-assigns 0, 1, 2, …; a fleet front-end fanning one stream
            across shards stamps each dispatched batch with the stream-wide
            sequence instead, which is what lets :meth:`merge` reconstruct
            the union window in arrival order.

        Returns
        -------
        int
            The sequence stamp this batch was folded in under (the assigned
            value when ``sequence`` was ``None``) — what event-log emitters
            key their ``request`` events by.
        """
        counts = (
            StreamCounts.from_batch(y_pred, group, y_true)
            if group is not None
            else StreamCounts()
        )
        size = int(np.asarray(y_pred).ravel().shape[0])
        violation_sum, scored = 0.0, 0
        density_sum, density_scored = 0.0, 0
        if X is not None and self.profile is not None:
            violations = self.violation_scores(X)
            violation_sum = float(violations.sum())
            scored = int(violations.shape[0])
        if X is not None and self.density_estimator is not None:
            log_densities = self.log_density_scores(X)
            density_sum = float(log_densities.sum())
            density_scored = int(log_densities.shape[0])
        if sequence is None:
            sequence = self._next_sequence
        else:
            sequence = int(sequence)
            if sequence < 0:
                raise ValidationError("sequence numbers must be non-negative")
        self._next_sequence = max(self._next_sequence, sequence + 1)
        self._chunks.append(
            (counts, size, violation_sum, scored, density_sum, density_scored, sequence)
        )
        self._window_counts += counts
        self._window_rows += size
        self._violation_rows += scored
        self._log_density_rows += density_scored
        self.n_seen += size
        self._evict()
        return sequence

    def _evict(self) -> None:
        while self._window_rows > self.window_size and len(self._chunks) > 1:
            counts, size, _, scored, _, density_scored, sequence = self._chunks.popleft()
            self._window_counts -= counts
            self._window_rows -= size
            self._violation_rows -= scored
            self._log_density_rows -= density_scored
            if sequence > self._evicted_through:
                self._evicted_through = sequence

    def _fold_window_sums(self) -> Tuple[float, float]:
        """Window float sums folded left-to-right over the retained chunks.

        Identical chunk deques fold to identical floats, so a merged monitor
        whose replayed deque matches the union monitor's reports the same
        means bit for bit — the determinism running aggregates cannot offer
        (their value carries the add/subtract history of evicted chunks).
        The deque is short (window_size / batch size entries), so the fold is
        a negligible O(#chunks) per status call.
        """
        violation_sum = 0.0
        density_sum = 0.0
        for _, _, chunk_violation, _, chunk_density, _, _ in self._chunks:
            violation_sum += chunk_violation
            density_sum += chunk_density
        return violation_sum, density_sum

    # -------------------------------------------------------------- drift
    def _numeric_columns(self, X, width_default: int) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        width = self.n_numeric_features
        if width is None:
            width = width_default
        return X[:, :width]

    def violation_scores(self, X) -> np.ndarray:
        """Per-row conformance violation against the *closest* training partition.

        A tuple that conforms to any (group, label) partition of the training
        data scores ~0; tuples conforming to none score high — the paper's
        signature of drift.
        """
        if self.profile is None:
            raise ValidationError("FairnessMonitor has no partition profile to score against")
        first = next(iter(self.profile.constraint_sets.values()))
        width_default = (
            first.constraints[0].projection.n_features
            if len(first)
            else np.asarray(X).shape[-1]
        )
        numeric = self._numeric_columns(X, width_default)
        per_group = [
            self.profile.min_violation_for_group(g, numeric)
            for g in (0, 1)
            if any(key[0] == g for key in self.profile.keys())
        ]
        return np.minimum.reduce(per_group)

    def log_density_scores(self, X) -> np.ndarray:
        """Per-row log-density of the observed tuples under the training KDE.

        One batch ``score_samples`` call — the vectorized density engine —
        with ``-inf`` (zero density under a compact kernel) clamped to
        :data:`LOG_DENSITY_FLOOR` so window sums stay finite.
        """
        if self.density_estimator is None:
            raise ValidationError("FairnessMonitor has no density estimator to score with")
        numeric = self._numeric_columns(X, int(self.density_estimator.n_features_))
        scores = self.density_estimator.score_samples(numeric)
        return np.maximum(scores, LOG_DENSITY_FLOOR)

    def _resolve_drift_baseline(self, X) -> float:
        if np.isscalar(X):
            return float(X)
        return float(self.violation_scores(X).mean())

    def _resolve_density_baseline(self, X) -> float:
        if np.isscalar(X):
            return float(X)
        return float(self.log_density_scores(X).mean())

    def _resolve_group_baseline(self, group_or_fraction) -> float:
        if np.isscalar(group_or_fraction):
            baseline = float(group_or_fraction)
        else:
            group = np.asarray(group_or_fraction).ravel()
            if group.size == 0:
                raise ValidationError("group baseline needs at least one row")
            baseline = float(np.mean(group == 1))
        if not 0.0 <= baseline <= 1.0:
            raise ValidationError("the baseline minority fraction must be in [0, 1]")
        return baseline

    def set_baselines(
        self,
        baselines: Optional[MonitorBaselines] = None,
        *,
        violation=None,
        log_density=None,
        group_fraction=None,
    ) -> MonitorBaselines:
        """Fix the drift reference points in one call; returns the result.

        Accepts either a :class:`MonitorBaselines` of precomputed scalars
        (e.g. another monitor's :attr:`baselines`, or a suite runner's shared
        scores) *or* per-channel keyword values, where each value may be raw
        data the monitor scores itself — a feature matrix for ``violation``
        and ``log_density``, an array of 0/1 memberships or a float for
        ``group_fraction`` — or an already-computed scalar.  Channels left
        ``None`` keep their current baseline, so partial updates compose.
        """
        if baselines is not None:
            if not isinstance(baselines, MonitorBaselines):
                raise ValidationError(
                    "baselines must be a MonitorBaselines instance, got "
                    f"{type(baselines).__name__}"
                )
            if violation is not None or log_density is not None or group_fraction is not None:
                raise ValidationError(
                    "pass either a MonitorBaselines object or per-channel "
                    "values, not both"
                )
            if baselines.violation is not None:
                self._baseline_violation = baselines.violation
            if baselines.log_density is not None:
                self._baseline_log_density = baselines.log_density
            if baselines.group_fraction is not None:
                self._baseline_group_fraction = baselines.group_fraction
            return self.baselines
        if violation is not None:
            self._baseline_violation = self._resolve_drift_baseline(violation)
        if log_density is not None:
            self._baseline_log_density = self._resolve_density_baseline(log_density)
        if group_fraction is not None:
            self._baseline_group_fraction = self._resolve_group_baseline(group_fraction)
        return self.baselines

    @property
    def baselines(self) -> MonitorBaselines:
        """The currently fixed reference points (``None`` fields are unset)."""
        return MonitorBaselines(
            violation=self._baseline_violation,
            log_density=self._baseline_log_density,
            group_fraction=self._baseline_group_fraction,
        )

    def set_drift_baseline(self, X) -> float:
        """Deprecated: use :meth:`set_baselines` ``(violation=X)``.

        ``X`` is typically the fit-time feature matrix; a scalar is accepted
        as a precomputed baseline (so suite runners can score the training
        data once and share the number across many fresh monitors).
        """
        warnings.warn(
            "set_drift_baseline is deprecated; use "
            "FairnessMonitor.set_baselines(violation=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        baseline = self._resolve_drift_baseline(X)
        self._baseline_violation = baseline
        return baseline

    def set_density_baseline(self, X) -> float:
        """Deprecated: use :meth:`set_baselines` ``(log_density=X)``."""
        warnings.warn(
            "set_density_baseline is deprecated; use "
            "FairnessMonitor.set_baselines(log_density=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        baseline = self._resolve_density_baseline(X)
        self._baseline_log_density = baseline
        return baseline

    def set_group_baseline(self, group_or_fraction) -> float:
        """Deprecated: use :meth:`set_baselines` ``(group_fraction=...)``."""
        warnings.warn(
            "set_group_baseline is deprecated; use "
            "FairnessMonitor.set_baselines(group_fraction=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        baseline = self._resolve_group_baseline(group_or_fraction)
        self._baseline_group_fraction = baseline
        return baseline

    @property
    def group_baseline_fraction(self) -> Optional[float]:
        """The fixed baseline minority fraction (``None`` until set)."""
        return self._baseline_group_fraction

    def config_clone(self) -> "FairnessMonitor":
        """An *empty* monitor sharing this monitor's configuration.

        The profile and density estimator are shared by reference (both are
        read-only at scoring time), not copied — this is the cheap way to
        stamp out per-shard monitors, and the target a fleet aggregator loads
        merged shard state into.  Baselines and window contents are not
        carried over.
        """
        return FairnessMonitor(
            window_size=self.window_size,
            profile=self.profile,
            density_estimator=self.density_estimator,
            n_numeric_features=self.n_numeric_features,
            thresholds=self.thresholds,
        )

    def drift_status(self) -> DriftStatus:
        """Current state of the conformance-drift alarm."""
        n = self._violation_rows
        violation_sum, _ = self._fold_window_sums()
        mean = violation_sum / n if n else 0.0
        baseline = self._baseline_violation
        if baseline is None:
            return DriftStatus(n, mean, None, None, False)
        if baseline > 0:
            ratio: Optional[float] = mean / baseline
        else:
            ratio = float("inf") if mean > 0 else 1.0
        threshold = max(self.drift_factor * baseline, self.min_violation)
        alarm = n >= self.min_samples and mean > threshold
        return DriftStatus(n, mean, baseline, ratio, alarm)

    def density_status(self) -> DensityDriftStatus:
        """Current state of the density-drift signal."""
        n = self._log_density_rows
        _, density_sum = self._fold_window_sums()
        mean = density_sum / n if n else 0.0
        baseline = self._baseline_log_density
        if baseline is None:
            return DensityDriftStatus(n, mean, None, None, False)
        drop = baseline - mean
        alarm = n >= self.min_samples and drop > self.density_drop
        return DensityDriftStatus(n, mean, baseline, drop, alarm)

    def group_status(self) -> GroupShiftStatus:
        """Current state of the group-prevalence drift signal.

        Only rows that carried group membership count (``n_scored``); the
        windowed minority fraction is their exact count ratio.
        """
        counts = self._window_counts
        n = counts.group_n(0) + counts.group_n(1)
        fraction = counts.group_n(1) / n if n else 0.0
        baseline = self._baseline_group_fraction
        if baseline is None:
            return GroupShiftStatus(n, fraction, None, None, False)
        shift = abs(fraction - baseline)
        alarm = n >= self.min_samples and shift > self.group_tolerance
        return GroupShiftStatus(n, fraction, baseline, shift, alarm)

    @property
    def last_sequence(self) -> int:
        """Highest sequence stamp folded into this monitor (-1 before any)."""
        return self._next_sequence - 1

    def alarm_report(self) -> Dict[str, Any]:
        """One attribution snapshot explaining the monitor's current alarms.

        Per active channel (``conformance`` when a profile is attached,
        ``density`` when a density estimator is, ``group`` when a group
        baseline is fixed): the windowed statistic, its baseline, the exact
        alarm threshold the status predicate compares against, the margin by
        which the statistic clears it (positive = alarming, assuming
        ``min_samples`` is met), the alarm verdict, and the scored count.
        Statistic/baseline/threshold values match :meth:`drift_status` /
        :meth:`density_status` / :meth:`group_status` exactly — the report is
        computed from the same status objects, not re-derived.

        Also carries the windowed sequence range (which stream positions the
        verdict was computed over — the join keys into the event log and the
        trace view), per-group windowed counts and selection rates, and the
        list of currently alarming channel names.  Every value is a JSON
        scalar or a flat dict of them, so the report rides event-log records
        and mitigation audit trails verbatim.
        """
        channels: Dict[str, Dict[str, Any]] = {}
        if self.profile is not None:
            drift = self.drift_status()
            if drift.baseline_violation is None:
                threshold: Optional[float] = None
                margin: Optional[float] = None
            else:
                threshold = max(
                    self.drift_factor * drift.baseline_violation, self.min_violation
                )
                margin = drift.mean_violation - threshold
            channels["conformance"] = {
                "statistic": drift.mean_violation,
                "baseline": drift.baseline_violation,
                "threshold": threshold,
                "margin": margin,
                "ratio": drift.ratio,
                "alarm": drift.alarm,
                "n_scored": drift.n_scored,
            }
        if self.density_estimator is not None:
            density = self.density_status()
            if density.baseline_log_density is None:
                threshold = None
                margin = None
            else:
                threshold = density.baseline_log_density - self.density_drop
                margin = (density.drop or 0.0) - self.density_drop
            channels["density"] = {
                "statistic": density.mean_log_density,
                "baseline": density.baseline_log_density,
                "threshold": threshold,
                "margin": margin,
                "drop": density.drop,
                "alarm": density.alarm,
                "n_scored": density.n_scored,
            }
        if self._baseline_group_fraction is not None:
            group = self.group_status()
            channels["group"] = {
                "statistic": group.minority_fraction,
                "baseline": group.baseline_fraction,
                "threshold": self.group_tolerance,
                "margin": (group.shift or 0.0) - self.group_tolerance,
                "shift": group.shift,
                "alarm": group.alarm,
                "n_scored": group.n_scored,
            }
        sequences = [sequence for *_, sequence in self._chunks]
        counts = self._window_counts
        group_rates: Dict[str, Dict[str, Any]] = {}
        for label, g in (("majority", 0), ("minority", 1)):
            n = counts.group_n(g)
            group_rates[label] = {
                "n": n,
                "selection_rate": counts.selection_rate(g) if n else None,
            }
        return {
            "n_seen": self.n_seen,
            "n_window": self._window_rows,
            "min_samples": self.min_samples,
            "last_sequence": self.last_sequence,
            "window_sequence_min": min(sequences) if sequences else None,
            "window_sequence_max": max(sequences) if sequences else None,
            "alarmed": [name for name, channel in channels.items() if channel["alarm"]],
            "channels": channels,
            "group_rates": group_rates,
        }

    # ------------------------------------------------------------ reports
    @property
    def window_counts(self) -> StreamCounts:
        """The window's current sufficient statistics (a defensive copy)."""
        return self._window_counts.copy()

    @property
    def n_window(self) -> int:
        return self._window_rows

    def windowed_report(self) -> FairnessReport:
        """Full fairness report over the window (requires labelled traffic)."""
        return report_from_counts(self._window_counts)

    def windowed_summary(self) -> dict:
        """Label-free window view: selection rates, DI*, and drift state."""
        counts = self._window_counts
        out = {"n_window": self._window_rows, "n_seen": self.n_seen}
        if counts.n_samples and counts.group_n(0) and counts.group_n(1):
            sr_minority = counts.selection_rate(1)
            sr_majority = counts.selection_rate(0)
            _, di_star = fold_disparate_impact(sr_minority, sr_majority)
            out["selection_rate_minority"] = sr_minority
            out["selection_rate_majority"] = sr_majority
            out["di_star"] = di_star
        drift = self.drift_status()
        out["drift"] = {
            "n_scored": drift.n_scored,
            "mean_violation": drift.mean_violation,
            "baseline_violation": drift.baseline_violation,
            "alarm": drift.alarm,
        }
        if self.density_estimator is not None:
            density = self.density_status()
            out["density"] = {
                "n_scored": density.n_scored,
                "mean_log_density": density.mean_log_density,
                "baseline_log_density": density.baseline_log_density,
                "alarm": density.alarm,
            }
        if self._baseline_group_fraction is not None:
            group = self.group_status()
            out["group"] = {
                "n_scored": group.n_scored,
                "minority_fraction": group.minority_fraction,
                "baseline_fraction": group.baseline_fraction,
                "alarm": group.alarm,
            }
        return out

    # ------------------------------------------------------- checkpointing
    _state_attributes = (
        "thresholds_",
        "n_seen_",
        "next_sequence_",
        "evicted_through_",
        "window_counts_",
        "window_rows_",
        "violation_rows_",
        "log_density_rows_",
        "baseline_violation_",
        "baseline_log_density_",
        "baseline_group_fraction_",
        "chunk_counts_",
        "chunk_rows_",
        "chunk_sums_",
        "chunk_sequences_",
    )

    def state_dict(self) -> Dict[str, Any]:
        """Pack the full sliding window into flat, artifact-storable state.

        The per-chunk float sums are the *only* float window state — window
        means are folded from them in sequence order on demand — so the state
        is exactly reproducible: restoring the chunks restores every report
        and status bit for bit, and two monitors with equal states are
        indistinguishable.  That is also what makes states comparable with
        ``==`` in merge tests.
        """
        chunks = list(self._chunks)
        return {
            "thresholds_": self.thresholds.to_dict(),
            "n_seen_": self.n_seen,
            "next_sequence_": self._next_sequence,
            "evicted_through_": self._evicted_through,
            "window_counts_": self._window_counts.counts.copy(),
            "window_rows_": self._window_rows,
            "violation_rows_": self._violation_rows,
            "log_density_rows_": self._log_density_rows,
            "baseline_violation_": self._baseline_violation,
            "baseline_log_density_": self._baseline_log_density,
            "baseline_group_fraction_": self._baseline_group_fraction,
            "chunk_counts_": (
                np.stack([counts.counts for counts, *_ in chunks])
                if chunks
                else np.zeros((0, 2, 6), dtype=np.int64)
            ),
            "chunk_rows_": np.array(
                [
                    [size, scored, density_scored]
                    for _, size, _, scored, _, density_scored, _ in chunks
                ],
                dtype=np.int64,
            ).reshape(len(chunks), 3),
            "chunk_sums_": np.array(
                [
                    [violation_sum, density_sum]
                    for _, _, violation_sum, _, density_sum, _, _ in chunks
                ],
                dtype=np.float64,
            ).reshape(len(chunks), 2),
            "chunk_sequences_": np.array(
                [sequence for *_, sequence in chunks], dtype=np.int64
            ),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> "FairnessMonitor":
        """Restore a window packed by :meth:`state_dict` and return ``self``.

        Unlike the flat-attribute base behaviour, the window state is one
        all-or-nothing snapshot: unknown *and* missing entries are both
        rejected.
        """
        unknown = sorted(set(state) - set(self._state_attributes))
        missing = sorted(set(self._state_attributes) - set(state))
        if unknown or missing:
            problems = [
                f"unexpected entries: {', '.join(map(repr, unknown))}" if unknown else "",
                f"missing entries: {', '.join(map(repr, missing))}" if missing else "",
            ]
            raise ValidationError(
                "FairnessMonitor state does not match its declared attributes "
                f"({'; '.join(p for p in problems if p)}); accepted state "
                f"attributes: {self._state_attributes}"
            )
        chunk_counts = np.asarray(state["chunk_counts_"], dtype=np.int64)
        chunk_rows = np.asarray(state["chunk_rows_"], dtype=np.int64)
        chunk_sums = np.asarray(state["chunk_sums_"], dtype=np.float64)
        chunk_sequences = np.asarray(state["chunk_sequences_"], dtype=np.int64)
        if not (
            len(chunk_counts) == len(chunk_rows) == len(chunk_sums) == len(chunk_sequences)
        ):
            raise ValidationError("FairnessMonitor chunk state arrays disagree in length")
        self._chunks = deque(
            (
                StreamCounts(chunk_counts[i].copy()),
                int(chunk_rows[i, 0]),
                float(chunk_sums[i, 0]),
                int(chunk_rows[i, 1]),
                float(chunk_sums[i, 1]),
                int(chunk_rows[i, 2]),
                int(chunk_sequences[i]),
            )
            for i in range(len(chunk_counts))
        )
        self._window_counts = StreamCounts(
            np.asarray(state["window_counts_"], dtype=np.int64).copy()
        )
        self._window_rows = int(state["window_rows_"])
        self._violation_rows = int(state["violation_rows_"])
        self._log_density_rows = int(state["log_density_rows_"])
        self._next_sequence = int(state["next_sequence_"])
        self._evicted_through = int(state["evicted_through_"])
        self._apply_thresholds(MonitorThresholds.from_dict(dict(state["thresholds_"])))
        for attribute, key in (
            ("_baseline_violation", "baseline_violation_"),
            ("_baseline_log_density", "baseline_log_density_"),
            ("_baseline_group_fraction", "baseline_group_fraction_"),
        ):
            value = state[key]
            setattr(self, attribute, None if value is None else float(value))
        self.n_seen = int(state["n_seen_"])
        return self

    # ------------------------------------------------------------- merging
    @classmethod
    def merge_state_dicts(
        cls, states: Sequence[Dict[str, Any]], *, window_size: int
    ) -> Dict[str, Any]:
        """Reduce per-shard window states into the union monitor's state.

        The reduction replays every retained chunk, ordered by its sequence
        number, through the same append-then-evict loop a live monitor runs.
        Why this is *exactly* the union monitor's state:

        * a shard retains the maximal suffix of *its* chunks whose rows fit
          the window; the union monitor retains the maximal fitting suffix of
          *all* chunks — a subset of the shards' union, so no needed chunk
          was lost to shard-local eviction;
        * eviction is sound across scopes: a sub-monitor evicts a chunk only
          when its *own* suffix rows overflow the window, and the union
          stream's suffix rows are never smaller — so anything any input
          evicted, the union monitor evicted too.  Each monitor therefore
          records its **eviction horizon** (``evicted_through_``, the
          highest sequence it ever evicted), and the merge first drops every
          chunk at or below the inputs' combined horizon: union eviction is
          front-first, so evicting sequence *s* implies evicting everything
          older.  Without the horizon, a staged merge that evicted under its
          partial view would later accept an even older chunk from a third
          input that the monolithic replay rejects — the one way staged and
          monolithic merges could disagree.  With it, any merge tree
          replays to the same retained suffix *and* the same horizon, which
          makes the merge associative;
        * sorting by sequence erases argument order — which makes it
          commutative — and a duplicate sequence number (the same stream
          position claimed by two shards) is rejected as ambiguous.

        ``window_size`` must be the shards' common window; baselines must
        agree across shards (they are fixed from the same training split).
        Raises :class:`~repro.exceptions.ValidationError` on any mismatch.
        """
        if not states:
            raise ValidationError("merge_state_dicts needs at least one monitor state")
        if window_size < 1:
            raise ValidationError("window_size must be at least 1")
        thresholds = MonitorThresholds.from_dict(dict(states[0]["thresholds_"]))
        for state in states[1:]:
            other = MonitorThresholds.from_dict(dict(state["thresholds_"]))
            if other != thresholds:
                raise ValidationError(
                    "Cannot merge monitor states with diverging thresholds "
                    f"({thresholds!r} vs {other!r}); shards of one fleet must "
                    "share a monitor configuration"
                )
        baselines: Dict[str, Any] = {}
        for key in ("baseline_violation_", "baseline_log_density_", "baseline_group_fraction_"):
            values = [state[key] for state in states]
            first = values[0]
            for value in values[1:]:
                if (value is None) != (first is None) or (
                    value is not None and float(value) != float(first)
                ):
                    raise ValidationError(
                        f"Cannot merge monitor states with diverging {key[:-1]} "
                        f"({first!r} vs {value!r}); shards must share baselines "
                        "fixed from the same training split"
                    )
            baselines[key] = first
        chunks = []
        for state in states:
            chunk_counts = np.asarray(state["chunk_counts_"], dtype=np.int64)
            chunk_rows = np.asarray(state["chunk_rows_"], dtype=np.int64)
            chunk_sums = np.asarray(state["chunk_sums_"], dtype=np.float64)
            chunk_sequences = np.asarray(state["chunk_sequences_"], dtype=np.int64)
            if not (
                len(chunk_counts) == len(chunk_rows) == len(chunk_sums) == len(chunk_sequences)
            ):
                raise ValidationError("FairnessMonitor chunk state arrays disagree in length")
            for i in range(len(chunk_counts)):
                chunks.append(
                    (
                        int(chunk_sequences[i]),
                        (
                            StreamCounts(chunk_counts[i].copy()),
                            int(chunk_rows[i, 0]),
                            float(chunk_sums[i, 0]),
                            int(chunk_rows[i, 1]),
                            float(chunk_sums[i, 1]),
                            int(chunk_rows[i, 2]),
                            int(chunk_sequences[i]),
                        ),
                    )
                )
        chunks.sort(key=lambda pair: pair[0])
        for (a, _), (b, _) in zip(chunks, chunks[1:]):
            if a == b:
                raise ValidationError(
                    f"Cannot merge monitor states: sequence {a} is claimed by two "
                    "chunks (the same stream position served by two shards); "
                    "assign each dispatched batch a unique stream-wide sequence"
                )
        evicted_through = max(int(state["evicted_through_"]) for state in states)
        merged = cls(window_size=window_size, thresholds=thresholds)
        merged._evicted_through = evicted_through
        for sequence, chunk in chunks:
            if sequence <= evicted_through:
                # Some input already evicted this stream position or a newer
                # one, so the union monitor evicted this chunk too (front-
                # first eviction drops a time-prefix).
                continue
            merged._chunks.append(chunk)
            merged._window_counts += chunk[0]
            merged._window_rows += chunk[1]
            merged._violation_rows += chunk[3]
            merged._log_density_rows += chunk[5]
            merged._evict()
        merged.n_seen = sum(int(state["n_seen_"]) for state in states)
        merged._next_sequence = max(int(state["next_sequence_"]) for state in states)
        for key, value in baselines.items():
            setattr(merged, f"_{key[:-1]}", None if value is None else float(value))
        return merged.state_dict()

    @classmethod
    def merge(cls, *monitors: "FairnessMonitor") -> "FairnessMonitor":
        """Merge per-shard monitors into one union-stream monitor.

        The result carries the first monitor's configuration (window size,
        thresholds, profile, density estimator) and the replayed union
        window; its ``state_dict``, windowed report, and every status are
        bit-identical to a single monitor that observed all the shards'
        batches in sequence order.  All monitors must share the same scalar
        configuration and baselines; see :meth:`merge_state_dicts` for the
        merge semantics and failure modes.
        """
        if not monitors:
            raise ValidationError("merge needs at least one monitor")
        first = monitors[0]
        scalar_keys = (
            "window_size",
            "drift_factor",
            "min_violation",
            "min_samples",
            "density_drop",
            "group_tolerance",
            "n_numeric_features",
        )
        for other in monitors[1:]:
            if not isinstance(other, FairnessMonitor):
                raise ValidationError(
                    f"merge expects FairnessMonitor instances, got {type(other).__name__}"
                )
            mismatched = [
                key
                for key in scalar_keys
                if getattr(other, key) != getattr(first, key)
            ]
            if mismatched:
                raise ValidationError(
                    "Cannot merge monitors with diverging configuration: "
                    f"{', '.join(mismatched)} differ (shards of one fleet must "
                    "share a monitor configuration)"
                )
            if (other.profile is None) != (first.profile is None) or (
                other.density_estimator is None
            ) != (first.density_estimator is None):
                raise ValidationError(
                    "Cannot merge monitors with diverging channels: every shard "
                    "must hold the same profile / density estimator (or none)"
                )
        merged = first.config_clone()
        state = cls.merge_state_dicts(
            [monitor.state_dict() for monitor in monitors],
            window_size=first.window_size,
        )
        return merged.load_state_dict(state)
