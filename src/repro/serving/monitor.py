"""Online fairness and drift monitoring of served traffic.

The paper frames unfairness as a *data drift* problem: the minority's tuples
follow a different distribution than the majority's, and a deployed model's
fairness degrades exactly when the serving distribution drifts relative to
the profiled training partitions.  :class:`FairnessMonitor` operationalizes
both halves of that framing for a live service:

* **fairness over a sliding window** — DI*, AOD*, and balanced accuracy
  computed incrementally from :class:`~repro.fairness.streaming.StreamCounts`
  (integer sufficient statistics, so window eviction is subtraction and the
  windowed report is bit-identical to the offline
  :func:`~repro.fairness.evaluate_predictions` on the same rows);
* **conformance-violation drift** — every observed tuple is scored against
  the training-time conformance constraints (the same
  :class:`~repro.core.partitions.PartitionProfile` DiffFair routes by); a
  windowed mean violation well above the fit-time baseline means the serving
  data no longer conforms to any training partition, and the monitor raises
  a drift alarm before the fairness metrics (which need labels) can react.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import numpy as np

from repro.core.partitions import PartitionProfile
from repro.exceptions import ValidationError
from repro.fairness.report import FairnessReport
from repro.fairness.streaming import (
    StreamCounts,
    fold_disparate_impact,
    report_from_counts,
)


@dataclass(frozen=True)
class DriftStatus:
    """Snapshot of the conformance-drift alarm.

    ``ratio`` is the windowed mean violation over the baseline (``inf`` when
    the baseline is zero and violations are observed); ``alarm`` is set once
    enough scored samples are in the window and the mean violation exceeds
    ``max(drift_factor * baseline, min_violation)``.
    """

    n_scored: int
    mean_violation: float
    baseline_violation: Optional[float]
    ratio: Optional[float]
    alarm: bool


class FairnessMonitor:
    """Sliding-window fairness metrics plus a conformance-drift alarm.

    Parameters
    ----------
    window_size:
        Target number of most-recent observations retained.  Eviction is
        chunk-granular (whole update batches are dropped oldest-first once
        the total exceeds the window), which keeps updates O(1).
    profile:
        Optional :class:`PartitionProfile` (e.g. ``DiffFair.profile_`` or the
        output of :func:`repro.core.profile_partitions`).  When provided,
        every observed feature batch is scored for conformance violation and
        the drift alarm becomes active.
    n_numeric_features:
        How many leading feature columns are numeric (what the constraints
        profile).  Defaults to the width the profile's constraints expect.
    drift_factor:
        Alarm when the windowed mean violation exceeds this multiple of the
        baseline violation.
    min_violation:
        Absolute floor for the alarm threshold, so near-zero baselines do
        not turn noise into alarms.
    min_samples:
        Minimum scored observations in the window before the alarm may fire.
    """

    def __init__(
        self,
        window_size: int = 5000,
        *,
        profile: Optional[PartitionProfile] = None,
        n_numeric_features: Optional[int] = None,
        drift_factor: float = 3.0,
        min_violation: float = 0.05,
        min_samples: int = 50,
    ) -> None:
        if window_size < 1:
            raise ValidationError("window_size must be at least 1")
        if drift_factor <= 0:
            raise ValidationError("drift_factor must be positive")
        self.window_size = int(window_size)
        self.profile = profile
        self.n_numeric_features = n_numeric_features
        self.drift_factor = float(drift_factor)
        self.min_violation = float(min_violation)
        self.min_samples = int(min_samples)

        # (counts, batch size, violation sum, scored rows) per retained batch.
        self._chunks: Deque[Tuple[StreamCounts, int, float, int]] = deque()
        self._window_counts = StreamCounts()
        self._window_rows = 0
        self._violation_sum = 0.0
        self._violation_rows = 0
        self._baseline_violation: Optional[float] = None
        self.n_seen = 0

    # ----------------------------------------------------------- updating
    def update(self, y_pred, group=None, *, y_true=None, X=None) -> None:
        """Fold one served batch into the window.

        Parameters
        ----------
        y_pred:
            The predictions the service returned.
        group:
            Group membership per row — audit-time information the per-group
            fairness accounting needs (even for interventions that never
            read it at prediction time).  ``None`` is the genuinely
            group-blind case: the batch still counts toward the window and
            feeds the drift alarm (conformance scoring needs only ``X``),
            but contributes nothing to the fairness metrics.
        y_true:
            Optional ground-truth labels (delayed labels are the norm in
            serving; windows mixing labelled and unlabelled traffic support
            :meth:`windowed_summary` but not the full report).
        X:
            Optional feature rows; scored for conformance violation when the
            monitor holds a profile.
        """
        counts = (
            StreamCounts.from_batch(y_pred, group, y_true)
            if group is not None
            else StreamCounts()
        )
        size = int(np.asarray(y_pred).ravel().shape[0])
        violation_sum, scored = 0.0, 0
        if X is not None and self.profile is not None:
            violations = self.violation_scores(X)
            violation_sum = float(violations.sum())
            scored = int(violations.shape[0])
        self._chunks.append((counts, size, violation_sum, scored))
        self._window_counts += counts
        self._window_rows += size
        self._violation_sum += violation_sum
        self._violation_rows += scored
        self.n_seen += size
        self._evict()

    def _evict(self) -> None:
        while self._window_rows > self.window_size and len(self._chunks) > 1:
            counts, size, violation_sum, scored = self._chunks.popleft()
            self._window_counts -= counts
            self._window_rows -= size
            self._violation_sum -= violation_sum
            self._violation_rows -= scored

    # -------------------------------------------------------------- drift
    def violation_scores(self, X) -> np.ndarray:
        """Per-row conformance violation against the *closest* training partition.

        A tuple that conforms to any (group, label) partition of the training
        data scores ~0; tuples conforming to none score high — the paper's
        signature of drift.
        """
        if self.profile is None:
            raise ValidationError("FairnessMonitor has no partition profile to score against")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        width = self.n_numeric_features
        if width is None:
            first = next(iter(self.profile.constraint_sets.values()))
            width = first.constraints[0].projection.n_features if len(first) else X.shape[1]
        numeric = X[:, :width]
        per_group = [
            self.profile.min_violation_for_group(g, numeric)
            for g in (0, 1)
            if any(key[0] == g for key in self.profile.keys())
        ]
        return np.minimum.reduce(per_group)

    def set_drift_baseline(self, X) -> float:
        """Fix the reference mean violation (typically on fit-time data)."""
        baseline = float(self.violation_scores(X).mean())
        self._baseline_violation = baseline
        return baseline

    def drift_status(self) -> DriftStatus:
        """Current state of the conformance-drift alarm."""
        n = self._violation_rows
        mean = self._violation_sum / n if n else 0.0
        baseline = self._baseline_violation
        if baseline is None:
            return DriftStatus(n, mean, None, None, False)
        if baseline > 0:
            ratio: Optional[float] = mean / baseline
        else:
            ratio = float("inf") if mean > 0 else 1.0
        threshold = max(self.drift_factor * baseline, self.min_violation)
        alarm = n >= self.min_samples and mean > threshold
        return DriftStatus(n, mean, baseline, ratio, alarm)

    # ------------------------------------------------------------ reports
    @property
    def window_counts(self) -> StreamCounts:
        """The window's current sufficient statistics (a defensive copy)."""
        return self._window_counts.copy()

    @property
    def n_window(self) -> int:
        return self._window_rows

    def windowed_report(self) -> FairnessReport:
        """Full fairness report over the window (requires labelled traffic)."""
        return report_from_counts(self._window_counts)

    def windowed_summary(self) -> dict:
        """Label-free window view: selection rates, DI*, and drift state."""
        counts = self._window_counts
        out = {"n_window": self._window_rows, "n_seen": self.n_seen}
        if counts.n_samples and counts.group_n(0) and counts.group_n(1):
            sr_minority = counts.selection_rate(1)
            sr_majority = counts.selection_rate(0)
            _, di_star = fold_disparate_impact(sr_minority, sr_majority)
            out["selection_rate_minority"] = sr_minority
            out["selection_rate_majority"] = sr_majority
            out["di_star"] = di_star
        drift = self.drift_status()
        out["drift"] = {
            "n_scored": drift.n_scored,
            "mean_violation": drift.mean_violation,
            "baseline_violation": drift.baseline_violation,
            "alarm": drift.alarm,
        }
        return out
