"""Command-line front end: dataset → pipeline → artifact → service.

Four subcommands wire the serving subsystem end to end::

    repro-serve fit    --dataset meps --intervention confair --out art/meps
    repro-serve save   --source art/meps --out art/meps-lean
    repro-serve score  --artifact art/meps --dataset meps
    repro-serve serve  --artifact art/meps --dataset meps --rows 10000

``fit`` runs a :class:`~repro.interventions.FairnessPipeline` and persists
the full :class:`~repro.interventions.PipelineResult`; ``save`` extracts the
lean :class:`~repro.interventions.DeployedModel` for deployment; ``score``
replays a dataset's deploy split through the loaded artifact and prints the
offline fairness report; ``serve`` pushes batched traffic through a
:class:`~repro.serving.PredictionService` with an attached
:class:`~repro.serving.FairnessMonitor` and reports throughput, windowed
fairness, and drift state.

Also available as ``python -m repro.serve``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datasets import available_datasets, load_dataset, split_dataset
from repro.exceptions import ReproError, ValidationError
from repro.fairness import evaluate_predictions
from repro.interventions import FairnessPipeline, PipelineResult, available_interventions
from repro.serving.artifacts import (
    describe_artifact,
    find_profile,
    load_artifact,
    save_artifact,
)
from repro.serving.monitor import FairnessMonitor
from repro.serving.service import PredictionService
from repro.telemetry import (
    enable as enable_telemetry,
    get_event_log,
    write_events,
    write_metrics,
)


def parse_params(pairs: Optional[List[str]]) -> Dict[str, object]:
    """Parse repeatable ``--param key=value`` options (values parsed as JSON).

    Shared with ``repro-simulate``, whose ``--param`` / ``--scenario-param``
    options follow the same convention.
    """
    params: Dict[str, object] = {}
    for pair in pairs or []:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            # ValidationError is a ReproError, so main() turns this into the
            # clean `error: ...` + exit 2 path instead of a traceback.
            raise ValidationError(f"--param expects key=value, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _load_split(args) -> Tuple[object, object]:
    dataset = load_dataset(
        args.dataset, size_factor=args.size_factor, random_state=args.seed
    )
    return dataset, split_dataset(dataset, random_state=args.seed)


def emit_json(payload: Dict[str, object]) -> None:
    """Write one JSON document to stdout (every CLI's single output shape)."""
    json.dump(payload, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


# find_profile now lives in repro.serving.artifacts (the mitigation
# controller needs it without a CLI import); the name stays importable from
# here for existing callers.
__all__ = ["emit_json", "find_profile", "main", "parse_params"]


# ---------------------------------------------------------------- commands
def cmd_fit(args) -> int:
    pipeline = FairnessPipeline(
        intervention=args.intervention,
        learner=args.learner,
        dataset=args.dataset,
        size_factor=args.size_factor,
        seed=args.seed,
        intervention_params=parse_params(args.param),
        fit_n_jobs=args.n_jobs,
    )
    result = pipeline.run()
    payload: Dict[str, object] = {
        "dataset": result.dataset,
        "method": result.method,
        "learner": result.learner,
        "seed": result.seed,
        "runtime_seconds": round(result.runtime_seconds, 4),
        "report": result.report.to_dict(),
    }
    if args.out:
        save_artifact(
            result,
            args.out,
            metadata={
                "command": "fit",
                "dataset": args.dataset,
                "intervention": args.intervention,
                "learner": args.learner,
                "seed": args.seed,
                "size_factor": args.size_factor,
            },
        )
        payload["artifact"] = args.out
    emit_json(payload)
    return 0


def cmd_save(args) -> int:
    loaded = load_artifact(args.source)
    model = loaded.model if isinstance(loaded, PipelineResult) else loaded
    save_artifact(
        model,
        args.out,
        metadata={
            **describe_artifact(args.source)["metadata"],
            "command": "save",
            "source": args.source,
        },
    )
    emit_json({"artifact": args.out, "kind": describe_artifact(args.out)["kind"]})
    return 0


def cmd_score(args) -> int:
    service = PredictionService.from_artifact(args.artifact)
    _, split = _load_split(args)
    deploy = split.deploy
    # --group-blind is honored unconditionally: a model that declared
    # requires_group_at_predict then rejects the request (exit code 2),
    # which is exactly the capability check the flag exists to exercise.
    group = None if args.group_blind else deploy.group
    if group is None:
        predictions = service.predict(deploy.X)
        report = evaluate_predictions(deploy.y, predictions, deploy.group)
    else:
        report = service.score(deploy.X, deploy.y, group)
    emit_json(
        {
            "artifact": args.artifact,
            "dataset": args.dataset,
            "n_records": deploy.n_samples,
            "report": report.to_dict(),
        }
    )
    return 0


def cmd_serve(args) -> int:
    if args.metrics_out:
        enable_telemetry()
    events = get_event_log()
    if args.events_out:
        events.enable()
    loaded = load_artifact(args.artifact)
    monitor = FairnessMonitor(
        window_size=args.window, profile=find_profile(loaded)
    )
    service = PredictionService(
        loaded,
        batch_size=args.batch_size,
        max_workers=args.workers,
        monitor=monitor,
    )
    _, split = _load_split(args)
    deploy = split.deploy
    if monitor.profile is not None:
        monitor.set_baselines(violation=split.train.X)

    rows = args.rows if args.rows else deploy.n_samples
    repeats = int(np.ceil(rows / deploy.n_samples))
    index = np.tile(np.arange(deploy.n_samples), repeats)[:rows]
    X, y_true, group = deploy.X[index], deploy.y[index], deploy.group[index]

    previous_alarmed: List[str] = []
    for start in range(0, rows, args.request_size):
        block = slice(start, min(start + args.request_size, rows))
        service.predict(X[block], group[block], y_true=y_true[block])
        if events.enabled:
            # Flight-recorder edge detection: whenever the alarmed-channel
            # set changes, log the edge and the full channel attribution at
            # the monitor's latest sequence stamp.
            report = monitor.alarm_report()
            if report["alarmed"] != previous_alarmed:
                sequence = int(report["last_sequence"])
                events.emit(
                    "alarm_edge",
                    sequence=sequence,
                    raised=[c for c in report["alarmed"] if c not in previous_alarmed],
                    cleared=[c for c in previous_alarmed if c not in report["alarmed"]],
                    channels=list(report["alarmed"]),
                )
                events.emit(
                    "channel_snapshot",
                    sequence=sequence,
                    trigger="alarm_edge",
                    report=report,
                )
                previous_alarmed = list(report["alarmed"])

    summary = monitor.windowed_summary()
    payload: Dict[str, object] = {
        "artifact": args.artifact,
        "dataset": args.dataset,
        "n_records": service.stats.n_records,
        "n_requests": service.stats.n_requests,
        "records_per_second": round(service.stats.records_per_second, 1),
        "requires_group_at_predict": service.requires_group,
        "windowed": summary,
    }
    if summary.get("n_window"):
        try:
            payload["windowed_report"] = monitor.windowed_report().to_dict()
        except ReproError:
            pass
    if args.metrics_out:
        payload["metrics_out"] = write_metrics(args.metrics_out)
    if args.events_out:
        payload["events_out"] = write_events(args.events_out)
    emit_json(payload)
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Fit, persist, score, and serve fairness-intervention models.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_data_options(p) -> None:
        p.add_argument(
            "--dataset",
            default="meps",
            help=f"benchmark name (one of {', '.join(available_datasets())})",
        )
        p.add_argument("--seed", type=int, default=7, help="dataset/split/learner seed")
        p.add_argument(
            "--size-factor",
            type=float,
            default=0.05,
            help="fraction of the published dataset size to generate",
        )

    fit = sub.add_parser("fit", help="run a FairnessPipeline and save the result artifact")
    add_data_options(fit)
    fit.add_argument(
        "--intervention",
        default="confair",
        help=f"intervention name (one of {', '.join(available_interventions())})",
    )
    fit.add_argument("--learner", default="lr", help="final-model learner name")
    fit.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="extra intervention constructor parameter (repeatable; value parsed as JSON)",
    )
    fit.add_argument("--out", help="artifact directory to write")
    fit.add_argument(
        "--n-jobs",
        type=int,
        default=None,
        help="worker threads for profiling/tuning inside the fit "
        "(results are bit-identical to a serial fit; -1 = all cores)",
    )
    fit.set_defaults(func=cmd_fit)

    save = sub.add_parser(
        "save", help="extract the lean DeployedModel artifact from a fit artifact"
    )
    save.add_argument("--source", required=True, help="source artifact directory")
    save.add_argument("--out", required=True, help="target artifact directory")
    save.set_defaults(func=cmd_save)

    score = sub.add_parser("score", help="evaluate a saved artifact on a dataset's deploy split")
    add_data_options(score)
    score.add_argument("--artifact", required=True, help="artifact directory to load")
    score.add_argument(
        "--group-blind",
        action="store_true",
        help="do not hand the group column to the service (models that declared "
        "requires_group_at_predict will reject this)",
    )
    score.set_defaults(func=cmd_score)

    serve = sub.add_parser(
        "serve", help="push batched traffic through a PredictionService and report"
    )
    add_data_options(serve)
    serve.add_argument("--artifact", required=True, help="artifact directory to load")
    serve.add_argument("--rows", type=int, default=0, help="traffic volume (0 = deploy split size)")
    serve.add_argument("--request-size", type=int, default=1024, help="records per request")
    serve.add_argument("--batch-size", type=int, default=512, help="micro-batch size")
    serve.add_argument("--workers", type=int, default=None, help="thread-pool width")
    serve.add_argument("--window", type=int, default=5000, help="monitor window size")
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable telemetry and write its JSON dump (summary + mergeable "
        "state) to PATH after serving",
    )
    serve.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="enable the flight recorder and write its event-log dump "
        "(request events, alarm edges, channel attributions) to PATH",
    )
    serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro-serve`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
