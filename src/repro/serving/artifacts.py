"""Versioned save/load of fitted models, interventions, and pipelines.

An artifact is a directory with two files:

* ``manifest.json`` — schema version, library version, user metadata, and the
  *structure* of the saved object: a JSON tree in which every non-scalar
  value is a tagged node (``{"__kind__": "estimator", ...}``) and every
  numpy array is a reference into the payload;
* ``payload.npz`` — the numeric payload, one entry per referenced array,
  stored losslessly (float64 bits survive exactly, which is what makes the
  round-trip guarantee *bit-identical predictions*, not merely close ones).

What can be saved: anything reachable from the supported roots — fitted
learners and transformers (every :class:`~repro.learners.base.BaseEstimator`
that declares ``_state_attributes``), fitted interventions, whole
:class:`~repro.interventions.DeployedModel` artifacts (via their captured
``predictor``), :class:`~repro.interventions.PipelineResult` bundles, fitted
:class:`~repro.datasets.preprocessing.PreprocessingPipeline` transforms, and
:class:`~repro.datasets.Dataset` objects.

Failure modes are deliberate and typed: every problem — unreadable or
corrupted manifest, payload checksum mismatch, schema version from a newer
library, a manifest referencing an estimator class this build does not
provide — raises :class:`~repro.exceptions.ArtifactError` with a message
naming the offending part.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Type

import numpy as np

import repro
from repro.baselines.capuchin import CapuchinRepair
from repro.baselines.kamiran import KamiranReweighing
from repro.baselines.multimodel import MultiModel
from repro.baselines.no_intervention import NoIntervention
from repro.baselines.omnifair import OmniFairReweighing
from repro.core.confair import ConFair
from repro.core.diffair import DiffFair
from repro.core.partitions import PartitionProfile
from repro.datasets.preprocessing import PreprocessingPipeline
from repro.datasets.table import Dataset
from repro.density.kde import KernelDensity
from repro.exceptions import ArtifactError, ReproError
from repro.fairness.report import FairnessReport
from repro.interventions.base import DeployedModel
from repro.interventions.pipeline import PipelineResult
from repro.interventions.wrappers import (
    CapuchinIntervention,
    ConFairIntervention,
    DiffFairIntervention,
    IdentityIntervention,
    KamiranIntervention,
    MultiModelIntervention,
    OmniFairIntervention,
)
from repro.learners.base import BaseEstimator
from repro.learners.boosting import GradientBoostingClassifier
from repro.learners.encoder import OneHotEncoder
from repro.learners.logistic import LogisticRegressionClassifier
from repro.learners.scaler import MinMaxScaler, StandardScaler
from repro.learners.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.profiling.constraints import ConformanceConstraint, ConstraintSet
from repro.profiling.discovery import DiscoveryConfig
from repro.profiling.projections import Projection
from repro.serving.monitor import MonitorBaselines, MonitorThresholds
from repro.telemetry import get_registry as _get_telemetry_registry

ARTIFACT_SCHEMA_VERSION = 1
"""Bumped whenever the manifest/payload layout changes incompatibly."""

MANIFEST_NAME = "manifest.json"
PAYLOAD_NAME = "payload.npz"

_KIND = "__kind__"

# Estimator classes a manifest may reference.  An explicit allowlist (rather
# than importing whatever the manifest names) keeps loading predictable and
# turns "this build lacks that learner" into a clear ArtifactError.
_SERIALIZABLE_CLASSES: Dict[str, Type[BaseEstimator]] = {
    f"{cls.__module__}.{cls.__qualname__}": cls
    for cls in (
        LogisticRegressionClassifier,
        GradientBoostingClassifier,
        DecisionTreeClassifier,
        DecisionTreeRegressor,
        OneHotEncoder,
        StandardScaler,
        MinMaxScaler,
        PreprocessingPipeline,
        KernelDensity,
        ConFair,
        DiffFair,
        MultiModel,
        KamiranReweighing,
        OmniFairReweighing,
        CapuchinRepair,
        NoIntervention,
        IdentityIntervention,
        MultiModelIntervention,
        DiffFairIntervention,
        ConFairIntervention,
        KamiranIntervention,
        OmniFairIntervention,
        CapuchinIntervention,
    )
}


# Classes whose estimators mutate their state arrays in place (at predict or
# resume time).  Memory-mapped loading hands out read-only views shared
# across worker processes, so these classes refuse mmap_mode instead of
# failing later with a cryptic "array is read-only".
_MMAP_UNSAFE_CLASSES: set = set()


def register_serializable(cls: Optional[Type[BaseEstimator]] = None, *, mutates_arrays: bool = False):
    """Allowlist an estimator class for artifact (de)serialization.

    Usable as a decorator by downstream code that defines custom learners or
    interventions and wants them to round-trip through artifacts.  Pass
    ``mutates_arrays=True`` for estimators that write into their state
    arrays after loading; such classes are rejected by
    ``load_artifact(..., mmap_mode="r")``, whose arrays are read-only views
    shared across processes.
    """

    def apply(target: Type[BaseEstimator]) -> Type[BaseEstimator]:
        key = f"{target.__module__}.{target.__qualname__}"
        _SERIALIZABLE_CLASSES[key] = target
        if mutates_arrays:
            _MMAP_UNSAFE_CLASSES.add(key)
        else:
            _MMAP_UNSAFE_CLASSES.discard(key)
        return target

    if cls is None:
        return apply
    return apply(cls)


# --------------------------------------------------------------------------
# encoding
# --------------------------------------------------------------------------


class _Encoder:
    """Encode a Python object tree into (JSON tree, {ref: ndarray}).

    Composite objects (estimators, datasets, deployed models, profiles) are
    memoized by identity: the first encounter encodes the full node wrapped
    in ``shared``, later encounters emit a ``backref``.  That keeps shared
    structure shared — a ``PipelineResult`` whose ``model.predictor`` *is*
    its ``intervention.estimator_`` stores the estimator once, and the
    decoder restores the same object identity.
    """

    _MEMOIZED_TYPES: tuple = (
        DeployedModel,
        PipelineResult,
        Dataset,
        PartitionProfile,
        ConstraintSet,
        ConformanceConstraint,
        Projection,
        DiscoveryConfig,
        FairnessReport,
        BaseEstimator,
    )

    def __init__(self) -> None:
        self.arrays: Dict[str, np.ndarray] = {}
        self._memo: Dict[int, int] = {}
        self._next_shared = 0

    def _store(self, array: np.ndarray) -> Dict[str, Any]:
        if array.dtype == object:
            raise ArtifactError(
                "Object-dtype arrays cannot be stored in an artifact payload; "
                "give the owning estimator a state_dict() that unpacks them"
            )
        ref = f"a{len(self.arrays)}"
        self.arrays[ref] = array
        return {_KIND: "ndarray", "ref": ref}

    def encode(self, value: Any) -> Any:
        if value is None or isinstance(value, (bool, str)):
            return value
        if isinstance(value, (np.bool_,)):
            return bool(value)
        if isinstance(value, (int, np.integer)):
            return int(value)
        if isinstance(value, (float, np.floating)):
            return float(value)
        if isinstance(value, np.ndarray):
            return self._store(value)
        if isinstance(value, list):
            return [self.encode(item) for item in value]
        if isinstance(value, tuple):
            return {_KIND: "tuple", "items": [self.encode(item) for item in value]}
        if isinstance(value, dict):
            return {
                _KIND: "dict",
                "items": [[self.encode(k), self.encode(v)] for k, v in value.items()],
            }
        if isinstance(value, MonitorThresholds):
            return {_KIND: "monitor_thresholds", "fields": self.encode(value.to_dict())}
        if isinstance(value, MonitorBaselines):
            return {_KIND: "monitor_baselines", "fields": self.encode(value.to_dict())}
        if isinstance(value, self._MEMOIZED_TYPES):
            index = self._memo.get(id(value))
            if index is not None:
                return {_KIND: "backref", "index": index}
            index = self._next_shared
            self._next_shared += 1
            self._memo[id(value)] = index
            return {_KIND: "shared", "index": index, "value": self._encode_object(value)}
        raise ArtifactError(
            f"Cannot serialize value of type {type(value).__name__} into an artifact"
        )

    def _encode_object(self, value: Any) -> Dict[str, Any]:
        if isinstance(value, DeployedModel):
            return self._encode_deployed_model(value)
        if isinstance(value, PipelineResult):
            return self._encode_pipeline_result(value)
        if isinstance(value, Dataset):
            return self._encode_dataset(value)
        if isinstance(value, PartitionProfile):
            return {
                _KIND: "partition_profile",
                "constraint_sets": self.encode(value.constraint_sets),
                "partition_sizes": self.encode(value.partition_sizes),
                "profiled_sizes": self.encode(value.profiled_sizes),
            }
        if isinstance(value, ConstraintSet):
            return {
                _KIND: "constraint_set",
                "label": value.label,
                "constraints": [self.encode(c) for c in value.constraints],
            }
        if isinstance(value, ConformanceConstraint):
            return {
                _KIND: "constraint",
                "projection": self.encode(value.projection),
                "lower": value.lower,
                "upper": value.upper,
                "std": value.std,
            }
        if isinstance(value, Projection):
            return {
                _KIND: "projection",
                "coefficients": [float(c) for c in value.coefficients],
                "name": value.name,
                "projection_kind": value.kind,
            }
        if isinstance(value, DiscoveryConfig):
            return {
                _KIND: "discovery_config",
                "bound_factor": value.bound_factor,
                "include_simple": value.include_simple,
                "include_pca": value.include_pca,
                "max_pca_components": value.max_pca_components,
                "max_relative_std": value.max_relative_std,
                "min_constraints": value.min_constraints,
            }
        if isinstance(value, FairnessReport):
            return {_KIND: "fairness_report", "fields": self.encode(value.to_dict())}
        if isinstance(value, BaseEstimator):
            return self._encode_estimator(value)
        raise ArtifactError(
            f"Cannot serialize value of type {type(value).__name__} into an artifact"
        )

    def _encode_estimator(self, estimator: BaseEstimator) -> Dict[str, Any]:
        key = f"{type(estimator).__module__}.{type(estimator).__qualname__}"
        if key not in _SERIALIZABLE_CLASSES:
            raise ArtifactError(
                f"Estimator class {key} is not registered for serialization; "
                "add it with repro.serving.artifacts.register_serializable"
            )
        return {
            _KIND: "estimator",
            "class": key,
            "params": self.encode(estimator.get_params()),
            "state": self.encode(estimator.state_dict()),
        }

    def _encode_dataset(self, dataset: Dataset) -> Dict[str, Any]:
        return {
            _KIND: "dataset",
            "X": self._store(dataset.X),
            "y": self._store(dataset.y),
            "group": self._store(dataset.group),
            "feature_names": list(dataset.feature_names),
            "n_numeric_features": dataset.n_numeric_features,
            "name": dataset.name,
            "metadata": self.encode(dict(dataset.metadata)),
        }

    def _encode_deployed_model(self, model: DeployedModel) -> Dict[str, Any]:
        if model.predictor is None:
            raise ArtifactError(
                f"DeployedModel {model.name!r} was built from bare callables and "
                "carries no predictor; build it with DeployedModel.from_predictor "
                "to make it serializable"
            )
        return {
            _KIND: "deployed_model",
            "name": model.name,
            "requires_group": model.requires_group,
            "details": self.encode(model.details),
            "predictor": self.encode(model.predictor),
        }

    def _encode_pipeline_result(self, result: PipelineResult) -> Dict[str, Any]:
        return {
            _KIND: "pipeline_result",
            "dataset": result.dataset,
            "method": result.method,
            "learner": result.learner,
            "seed": result.seed,
            "report": self.encode(result.report),
            "runtime_seconds": result.runtime_seconds,
            "details": self.encode(result.details),
            "predictions": self._store(result.predictions),
            "intervention": self.encode(result.intervention),
            "model": self.encode(result.model),
        }


# --------------------------------------------------------------------------
# decoding
# --------------------------------------------------------------------------


class _Decoder:
    """Decode the JSON tree produced by :class:`_Encoder`.

    ``mmap`` marks the arrays as read-only memory maps; estimator classes
    registered with ``mutates_arrays=True`` are then refused up front.
    """

    def __init__(self, arrays, *, mmap: bool = False) -> None:
        self.arrays = arrays
        self.mmap = mmap
        self._shared: Dict[int, Any] = {}

    def _fetch(self, ref: str) -> np.ndarray:
        try:
            return self.arrays[ref]
        except KeyError:
            raise ArtifactError(
                f"Artifact payload is missing array {ref!r} referenced by the manifest"
            ) from None

    def decode(self, node: Any) -> Any:
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        if isinstance(node, list):
            return [self.decode(item) for item in node]
        if not isinstance(node, dict):
            raise ArtifactError(f"Malformed manifest node of type {type(node).__name__}")
        kind = node.get(_KIND)
        decoder = getattr(self, f"_decode_{kind}", None)
        if decoder is None:
            raise ArtifactError(f"Manifest contains unknown node kind {kind!r}")
        try:
            return decoder(node)
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError, ReproError) as error:
            # ReproError covers library validation (DatasetError, Constraint-
            # Error, ...) raised while rebuilding objects from manifest data;
            # the documented contract is that *every* load failure surfaces
            # as ArtifactError.
            raise ArtifactError(f"Malformed {kind!r} node in manifest: {error}") from error

    # ------------------------------------------------------------- kinds
    def _decode_shared(self, node) -> Any:
        value = self.decode(node["value"])
        self._shared[int(node["index"])] = value
        return value

    def _decode_backref(self, node) -> Any:
        index = int(node["index"])
        if index not in self._shared:
            raise ArtifactError(
                f"Manifest backref {index} appears before its shared definition"
            )
        return self._shared[index]

    def _decode_ndarray(self, node) -> np.ndarray:
        return self._fetch(node["ref"])

    def _decode_tuple(self, node) -> tuple:
        return tuple(self.decode(item) for item in node["items"])

    def _decode_dict(self, node) -> dict:
        return {self.decode(k): self.decode(v) for k, v in node["items"]}

    def _decode_estimator(self, node) -> BaseEstimator:
        key = node["class"]
        cls = _SERIALIZABLE_CLASSES.get(key)
        if cls is None:
            raise ArtifactError(
                f"Artifact references estimator class {key}, which this build does "
                "not provide (learner mismatch); register the class with "
                "repro.serving.artifacts.register_serializable before loading"
            )
        if self.mmap and key in _MMAP_UNSAFE_CLASSES:
            raise ArtifactError(
                f"Estimator class {key} is registered with mutates_arrays=True "
                "(it writes into its state arrays in place); memory-mapped "
                "loading hands out read-only shared views — load this artifact "
                "without mmap_mode"
            )
        estimator = cls(**self.decode(node["params"]))
        estimator.load_state_dict(self.decode(node["state"]))
        return estimator

    def _decode_dataset(self, node) -> Dataset:
        return Dataset(
            X=self._fetch(node["X"]["ref"]),
            y=self._fetch(node["y"]["ref"]),
            group=self._fetch(node["group"]["ref"]),
            feature_names=tuple(node["feature_names"]),
            n_numeric_features=node["n_numeric_features"],
            name=node["name"],
            metadata=self.decode(node["metadata"]),
        )

    def _decode_partition_profile(self, node) -> PartitionProfile:
        return PartitionProfile(
            constraint_sets=self.decode(node["constraint_sets"]),
            partition_sizes=self.decode(node["partition_sizes"]),
            profiled_sizes=self.decode(node["profiled_sizes"]),
        )

    def _decode_constraint_set(self, node) -> ConstraintSet:
        return ConstraintSet(
            constraints=[self.decode(c) for c in node["constraints"]],
            label=node["label"],
        )

    def _decode_constraint(self, node) -> ConformanceConstraint:
        return ConformanceConstraint(
            projection=self.decode(node["projection"]),
            lower=node["lower"],
            upper=node["upper"],
            std=node["std"],
        )

    def _decode_projection(self, node) -> Projection:
        return Projection(
            coefficients=tuple(node["coefficients"]),
            name=node["name"],
            kind=node["projection_kind"],
        )

    def _decode_discovery_config(self, node) -> DiscoveryConfig:
        return DiscoveryConfig(
            bound_factor=node["bound_factor"],
            include_simple=node["include_simple"],
            include_pca=node["include_pca"],
            max_pca_components=node["max_pca_components"],
            max_relative_std=node["max_relative_std"],
            min_constraints=node["min_constraints"],
        )

    def _decode_fairness_report(self, node) -> FairnessReport:
        return FairnessReport(**self.decode(node["fields"]))

    def _decode_monitor_thresholds(self, node) -> MonitorThresholds:
        return MonitorThresholds.from_dict(self.decode(node["fields"]))

    def _decode_monitor_baselines(self, node) -> MonitorBaselines:
        return MonitorBaselines.from_dict(self.decode(node["fields"]))

    def _decode_deployed_model(self, node) -> DeployedModel:
        return DeployedModel.from_predictor(
            self.decode(node["predictor"]),
            requires_group=node["requires_group"],
            details=self.decode(node["details"]),
            name=node["name"],
        )

    def _decode_pipeline_result(self, node) -> PipelineResult:
        return PipelineResult(
            dataset=node["dataset"],
            method=node["method"],
            learner=node["learner"],
            seed=node["seed"],
            report=self.decode(node["report"]),
            runtime_seconds=node["runtime_seconds"],
            details=self.decode(node["details"]),
            predictions=self._fetch(node["predictions"]["ref"]),
            intervention=self.decode(node["intervention"]),
            model=self.decode(node["model"]),
        )


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------


def find_profile(loaded) -> Optional[PartitionProfile]:
    """Best-effort partition profile for drift monitoring, wherever it lives.

    Accepts anything :func:`load_artifact` can return — a
    :class:`PipelineResult`, a :class:`DeployedModel`, or a bare fitted
    intervention — and walks ``profile_`` / ``estimator_`` attributes to
    locate the fit-time :class:`~repro.core.partitions.PartitionProfile`.
    Used by every CLI and by the mitigation controller to build monitors
    from saved or freshly refitted models.
    """
    candidates = [loaded]
    if isinstance(loaded, PipelineResult):
        candidates = [loaded.model.predictor, loaded.intervention, loaded.model]
    elif hasattr(loaded, "predictor"):
        candidates.insert(0, loaded.predictor)
    for candidate in candidates:
        for attribute in ("profile_", "estimator_"):
            inner = getattr(candidate, attribute, None)
            if attribute == "profile_" and inner is not None:
                return inner
            profile = getattr(inner, "profile_", None)
            if profile is not None:
                return profile
    return None


def _root_kind(node: Any) -> str:
    if isinstance(node, dict) and node.get(_KIND) == "shared":
        node = node["value"]
    return node.get(_KIND, "value") if isinstance(node, dict) else "value"


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def save_artifact(
    obj: Any,
    path,
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> Path:
    """Persist ``obj`` as a versioned artifact directory and return its path.

    Parameters
    ----------
    obj:
        A fitted estimator, intervention, :class:`DeployedModel`,
        :class:`PipelineResult`, :class:`PreprocessingPipeline`, or
        :class:`Dataset` (anything the artifact encoder supports).
    path:
        Target directory; created (parents included) if missing.  Existing
        manifest/payload files in it are overwritten.
    metadata:
        Optional free-form, JSON-serializable provenance attached to the
        manifest (e.g. the dataset and seed the model was fitted on).
    """
    target = Path(path)
    target.mkdir(parents=True, exist_ok=True)
    encoder = _Encoder()
    root = encoder.encode(obj)

    payload_path = target / PAYLOAD_NAME
    np.savez_compressed(payload_path, **encoder.arrays)

    manifest = {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "repro_version": repro.__version__,
        "kind": _root_kind(root),
        "payload": {
            "file": PAYLOAD_NAME,
            "sha256": _sha256(payload_path),
            "n_arrays": len(encoder.arrays),
        },
        "metadata": dict(metadata or {}),
        "root": root,
    }
    manifest_path = target / MANIFEST_NAME
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return target


def read_manifest(path) -> Dict[str, Any]:
    """Read and validate an artifact's manifest (no payload access).

    Raises :class:`ArtifactError` for a missing/corrupted manifest or a
    schema version newer than this library supports.
    """
    target = Path(path)
    manifest_path = target / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"No artifact manifest at {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactError(f"Corrupted artifact manifest at {manifest_path}: {error}") from error
    if not isinstance(manifest, dict) or "schema_version" not in manifest:
        raise ArtifactError(f"Artifact manifest at {manifest_path} has no schema_version")
    version = manifest["schema_version"]
    if not isinstance(version, int) or version < 1 or version > ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"Artifact at {target} has schema version {version!r}; this build "
            f"supports versions 1..{ARTIFACT_SCHEMA_VERSION} (version mismatch)"
        )
    return manifest


def describe_artifact(path) -> Dict[str, Any]:
    """Cheap artifact summary: kind, versions, metadata — payload untouched."""
    manifest = read_manifest(path)
    return {
        "kind": manifest.get("kind", "value"),
        "schema_version": manifest["schema_version"],
        "repro_version": manifest.get("repro_version"),
        "n_arrays": manifest.get("payload", {}).get("n_arrays"),
        "metadata": manifest.get("metadata", {}),
    }


MMAP_CACHE_DIR = "payload.mmap"
"""Sibling directory of extracted ``.npy`` members backing mmap loads."""

_MMAP_STATS = {"hits": 0, "extractions": 0}
_MMAP_STATS_LOCK = threading.Lock()


def mmap_cache_stats() -> Dict[str, int]:
    """Cumulative mmap-cache outcomes for this process.

    ``hits``
        Loads that found a fresh (checksum-tagged) extraction cache and
        memory-mapped it directly.
    ``extractions``
        Loads that had to extract ``payload.npz`` into ``payload.mmap/``
        first — the first load of an artifact, or any load after the
        payload changed or a crash left the cache untagged.
    """
    with _MMAP_STATS_LOCK:
        return dict(_MMAP_STATS)


def _telemetry_collector(registry) -> None:
    # Export-time fold of the mmap-cache outcomes into gauges, mirroring
    # the density backend-cache collector: nothing on the load path.
    for stat, value in mmap_cache_stats().items():
        registry.gauge(f"serving.mmap_cache.{stat}").set(float(value))


_get_telemetry_registry().add_collector(_telemetry_collector)


def _mmap_payload(target: Path, payload_path: Path, payload_sha: str) -> Dict[str, np.ndarray]:
    """Memory-map the payload arrays through an extracted ``.npy`` cache.

    ``payload.npz`` is deflate-compressed, which numpy cannot memory-map, so
    the members are extracted *once* into ``payload.mmap/`` next to it (keyed
    by the payload's sha256 — a stale cache from an overwritten artifact is
    re-extracted, never reused) and every subsequent load memory-maps the
    raw ``.npy`` files.  The OS page cache then shares one physical copy of
    the weights across all worker processes serving the artifact: per-worker
    cold start is O(manifest), not O(weights).
    """
    cache_dir = target / MMAP_CACHE_DIR
    tag_path = cache_dir / "payload.sha256"
    try:
        fresh = tag_path.is_file() and tag_path.read_text(encoding="utf-8").strip() == payload_sha
    except OSError:
        fresh = False
    with _MMAP_STATS_LOCK:
        _MMAP_STATS["hits" if fresh else "extractions"] += 1
    try:
        if not fresh:
            cache_dir.mkdir(parents=True, exist_ok=True)
            if tag_path.is_file():
                tag_path.unlink()
            with np.load(payload_path, allow_pickle=False) as payload:
                for name in payload.files:
                    np.save(cache_dir / f"{name}.npy", payload[name])
            # The tag is written last: a crash mid-extraction leaves an
            # untagged cache that the next load redoes from the payload.
            tag_path.write_text(payload_sha + "\n", encoding="utf-8")
        with np.load(payload_path, allow_pickle=False) as payload:
            names = list(payload.files)
        return {
            name: np.load(cache_dir / f"{name}.npy", mmap_mode="r", allow_pickle=False)
            for name in names
        }
    except (OSError, ValueError) as error:
        raise ArtifactError(
            f"Cannot memory-map artifact payload at {payload_path} "
            f"(extraction cache {cache_dir}): {error}"
        ) from error


def load_artifact(path, *, mmap_mode: Optional[str] = None):
    """Load an artifact saved by :func:`save_artifact` and rebuild the object.

    The payload checksum is verified before any array is consumed, so a
    truncated or tampered payload raises :class:`ArtifactError` instead of
    silently yielding a different model.

    ``mmap_mode="r"`` memory-maps the payload arrays instead of materializing
    them: members are extracted once into a checksum-tagged ``payload.mmap/``
    cache beside the payload, and every load after that maps the raw files —
    N worker processes serving one artifact share a single physical copy of
    the weights.  The checksum is verified on *every* load (mmap included)
    before the cache is trusted.  Artifacts containing estimator classes
    registered with ``mutates_arrays=True`` refuse mmap (the views are
    read-only); only ``"r"`` is supported — the cache is shared, so writable
    modes would let one worker corrupt every other worker's model.
    """
    if mmap_mode not in (None, "r"):
        raise ArtifactError(
            f"Unsupported mmap_mode {mmap_mode!r}: only 'r' (read-only shared "
            "mapping) is meaningful for a serving artifact"
        )
    target = Path(path)
    manifest = read_manifest(target)
    payload_info = manifest.get("payload") or {}
    payload_path = target / payload_info.get("file", PAYLOAD_NAME)
    if not payload_path.is_file():
        raise ArtifactError(f"Artifact payload missing at {payload_path}")
    expected = payload_info.get("sha256")
    actual = _sha256(payload_path)
    if expected is not None and actual != expected:
        raise ArtifactError(
            f"Artifact payload at {payload_path} does not match its manifest "
            "checksum (corrupted or tampered payload)"
        )
    if mmap_mode is not None:
        arrays = _mmap_payload(target, payload_path, actual)
        return _Decoder(arrays, mmap=True).decode(manifest.get("root"))
    try:
        with np.load(payload_path, allow_pickle=False) as payload:
            arrays = {name: payload[name] for name in payload.files}
    except (OSError, ValueError) as error:
        raise ArtifactError(f"Cannot read artifact payload at {payload_path}: {error}") from error
    return _Decoder(arrays).decode(manifest.get("root"))
