"""Every method of the paper, adapted to the :class:`Intervention` protocol.

The wrappers own the *experiment-facing* surface: they expose uniform
``fit``/``make_model``/``details`` regardless of family, declare their
capabilities, and register themselves under the method identifiers the
paper's figures use.  The underlying estimators in :mod:`repro.core` and
:mod:`repro.baselines` stay the implementation layer and remain directly
usable.

Registration order matters: it defines the canonical order of
``METHOD_NAMES`` (``none``, ``multimodel``, ``diffair``, ``diffair0``,
``confair``, ``confair0``, ``kam``, ``omn``, ``cap``), matching the paper's
figures.  The ``*0`` names are the Fig. 13 ablation variants that share their
class with the full method but preset ``use_density_filter=False``.

Defaults note: where a wrapper exposes a search grid (``tuning_grid``,
``lam_grid``) its default is the *experiment* grid the paper's evaluation
uses, which is coarser than the exhaustive defaults of the underlying
estimators.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines.capuchin import CapuchinRepair
from repro.baselines.kamiran import KamiranReweighing
from repro.baselines.multimodel import MultiModel
from repro.baselines.omnifair import OmniFairReweighing
from repro.core.confair import ConFair
from repro.core.diffair import DiffFair
from repro.datasets.splits import DatasetSplit
from repro.datasets.table import Dataset
from repro.interventions.base import DeployedModel, Intervention, InterventionCapabilities
from repro.interventions.registry import register_intervention
from repro.profiling.discovery import DiscoveryConfig

DEFAULT_TUNING_GRID: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 3.0)
"""Candidate ``alpha_u`` values for ConFair's automatic search (paper grid)."""

DEFAULT_LAM_GRID: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5)
"""Candidate λ values for OMN's automatic search (paper grid)."""


class _WeightedTrainingMixin:
    """Shared ``make_model`` for interventions that produce per-tuple weights."""

    def make_model(
        self,
        split: DatasetSplit,
        *,
        learner: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> DeployedModel:
        self._check_fitted("estimator_")
        model = self._final_learner(learner, seed)
        model.fit(split.train.X, split.train.y, sample_weight=self.weights_)
        return DeployedModel.from_predictor(model, name=type(self).__name__)

    @property
    def weights_(self) -> np.ndarray:
        """Per-tuple training weights resolved during :meth:`fit`."""
        self._check_fitted("estimator_")
        return self.estimator_.weights_


@register_intervention("none", summary="train the learner on the raw data (reference point)")
class IdentityIntervention(Intervention):
    """No intervention: the final learner is trained on the unweighted data."""

    capabilities = InterventionCapabilities()
    _state_attributes = ("fitted_",)

    def __init__(self, learner="lr", random_state: Optional[int] = 0) -> None:
        self.learner = learner
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "IdentityIntervention":
        # Nothing to learn before make_model; only mark the fitted state
        # (holding the dataset here would pin it for the artifact's lifetime).
        self.fitted_ = True
        return self

    def make_model(
        self,
        split: DatasetSplit,
        *,
        learner: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> DeployedModel:
        self._check_fitted("fitted_")
        model = self._final_learner(learner, seed)
        model.fit(split.train.X, split.train.y)
        return DeployedModel.from_predictor(model, name="IdentityIntervention")


@register_intervention(
    "multimodel", summary="one model per group, routed by the declared group attribute"
)
class MultiModelIntervention(Intervention):
    """Naive model splitting: serving requires (and trusts) group membership."""

    capabilities = InterventionCapabilities(routes=True, requires_group_at_predict=True)
    _state_attributes = ("estimator_",)

    def __init__(self, learner="lr", random_state: Optional[int] = 0) -> None:
        self.learner = learner
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "MultiModelIntervention":
        self.estimator_ = MultiModel(learner=self.learner, random_state=self.random_state).fit(
            train, validation
        )
        return self

    def make_model(
        self,
        split: DatasetSplit,
        *,
        learner: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> DeployedModel:
        self._check_fitted("estimator_")
        estimator = self.estimator_
        if not _same_final_model(self, learner, seed):
            estimator = MultiModel(
                learner=self.learner if learner is None else learner,
                random_state=self.random_state if seed is None else seed,
            ).fit(split.train)
        return DeployedModel.from_predictor(
            estimator, requires_group=True, name="MultiModelIntervention"
        )


@register_intervention(
    "diffair0",
    defaults={"use_density_filter": False},
    summary="DiffFair without the density-based CC optimization (Fig. 13 ablation)",
)
@register_intervention("diffair", summary="group-dependent models routed by conformance")
class DiffFairIntervention(Intervention):
    """DiffFair: model splitting with conformance-based, group-blind routing."""

    capabilities = InterventionCapabilities(routes=True)
    _state_attributes = ("estimator_",)

    def __init__(
        self,
        learner="lr",
        use_density_filter: bool = True,
        density_fraction: float = 0.2,
        discovery_config: Optional[DiscoveryConfig] = None,
        random_state: Optional[int] = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.learner = learner
        self.use_density_filter = use_density_filter
        self.density_fraction = density_fraction
        self.discovery_config = discovery_config
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "DiffFairIntervention":
        self.estimator_ = DiffFair(
            learner=self.learner,
            use_density_filter=self.use_density_filter,
            density_fraction=self.density_fraction,
            discovery_config=self.discovery_config,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        ).fit(train, validation=validation)
        return self

    def make_model(
        self,
        split: DatasetSplit,
        *,
        learner: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> DeployedModel:
        self._check_fitted("estimator_")
        estimator = self.estimator_
        if not _same_final_model(self, learner, seed):
            estimator = DiffFair(
                learner=self.learner if learner is None else learner,
                use_density_filter=self.use_density_filter,
                density_fraction=self.density_fraction,
                discovery_config=self.discovery_config,
                random_state=self.random_state if seed is None else seed,
            ).fit(split.train)
        routes = estimator.route(split.deploy.X)
        return DeployedModel.from_predictor(
            estimator,
            details={"minority_model_fraction": float(np.mean(routes == 1))},
            name="DiffFairIntervention",
        )

    # Routing inspection, delegated for serving diagnostics.
    @property
    def profile_(self):
        """The conformance-constraint profile learned per (group, label) partition."""
        self._check_fitted("estimator_")
        return self.estimator_.profile_

    def route(self, X) -> np.ndarray:
        """0/1 per row: which group's model serves the tuple."""
        self._check_fitted("estimator_")
        return self.estimator_.route(X)

    def routing_scores(self, X) -> np.ndarray:
        """(majority, minority) conformance-violation scores per row."""
        self._check_fitted("estimator_")
        return self.estimator_.routing_scores(X)


@register_intervention(
    "confair0",
    defaults={"use_density_filter": False},
    summary="ConFair without the density-based CC optimization (Fig. 13 ablation)",
)
@register_intervention("confair", summary="conformance-driven reweighing (the paper's headline)")
class ConFairIntervention(_WeightedTrainingMixin, Intervention):
    """ConFair: non-invasive reweighing of conforming tuples."""

    capabilities = InterventionCapabilities(
        produces_weights=True,
        supports_calibration_transfer=True,
        degree_param="alpha_u",
        requires_validation_for_tuning=True,
    )
    _state_attributes = ("estimator_",)

    def __init__(
        self,
        alpha_u: Optional[float] = None,
        alpha_w: Optional[float] = None,
        fairness_target: str = "di",
        use_density_filter: bool = True,
        density_fraction: float = 0.2,
        discovery_config: Optional[DiscoveryConfig] = None,
        conformance_tol: float = 1e-9,
        learner="lr",
        tuning_grid: Tuple[float, ...] = DEFAULT_TUNING_GRID,
        random_state: Optional[int] = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.alpha_u = alpha_u
        self.alpha_w = alpha_w
        self.fairness_target = fairness_target
        self.use_density_filter = use_density_filter
        self.density_fraction = density_fraction
        self.discovery_config = discovery_config
        self.conformance_tol = conformance_tol
        self.learner = learner
        self.tuning_grid = tuning_grid
        self.random_state = random_state
        self.n_jobs = n_jobs

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "ConFairIntervention":
        self.estimator_ = ConFair(
            alpha_u=self.alpha_u,
            alpha_w=self.alpha_w,
            fairness_target=self.fairness_target,
            use_density_filter=self.use_density_filter,
            density_fraction=self.density_fraction,
            discovery_config=self.discovery_config,
            conformance_tol=self.conformance_tol,
            learner=self.learner,
            tuning_grid=self.tuning_grid,
            random_state=self.random_state,
            n_jobs=self.n_jobs,
        ).fit(train, validation=validation)
        return self

    def details(self) -> Dict[str, object]:
        self._check_fitted("estimator_")
        return {"alpha_u": self.estimator_.alpha_u_, "alpha_w": self.estimator_.alpha_w_}

    def weights_for_degree(self, degree: float) -> np.ndarray:
        """Weights at ``alpha_u = degree`` without re-profiling (Figs. 8/9).

        ``alpha_w`` follows the constructor setting (``None`` keeps the
        paper's ``alpha_u / 2`` policy).
        """
        self._check_fitted("estimator_")
        return self.estimator_.compute_weights(alpha_u=float(degree), alpha_w=self.alpha_w).weights


@register_intervention("kam", summary="Kamiran & Calders frequency-based reweighing")
class KamiranIntervention(_WeightedTrainingMixin, Intervention):
    """KAM: uniform weights per (group, label) cell restoring independence."""

    capabilities = InterventionCapabilities(produces_weights=True)
    _state_attributes = ("estimator_",)

    def __init__(self, learner="lr", random_state: Optional[int] = 0) -> None:
        self.learner = learner
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "KamiranIntervention":
        self.estimator_ = KamiranReweighing(
            learner=self.learner, random_state=self.random_state
        ).fit(train, validation)
        return self


@register_intervention("omn", summary="OmniFair-style model-calibrated group reweighing")
class OmniFairIntervention(_WeightedTrainingMixin, Intervention):
    """OMN: per-cell weight deltas calibrated against the model in the loop."""

    capabilities = InterventionCapabilities(
        produces_weights=True,
        supports_calibration_transfer=True,
        degree_param="lam",
        requires_validation_for_tuning=True,
    )
    _state_attributes = ("estimator_",)

    def __init__(
        self,
        lam: Optional[float] = None,
        learner="lr",
        n_calibration_rounds: int = 3,
        lam_grid: Tuple[float, ...] = DEFAULT_LAM_GRID,
        fairness_target: str = "di",
        random_state: Optional[int] = 0,
    ) -> None:
        self.lam = lam
        self.learner = learner
        self.n_calibration_rounds = n_calibration_rounds
        self.lam_grid = lam_grid
        self.fairness_target = fairness_target
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "OmniFairIntervention":
        self.estimator_ = OmniFairReweighing(
            lam=self.lam,
            learner=self.learner,
            n_calibration_rounds=self.n_calibration_rounds,
            lam_grid=self.lam_grid,
            fairness_target=self.fairness_target,
            random_state=self.random_state,
        ).fit(train, validation)
        return self

    def details(self) -> Dict[str, object]:
        self._check_fitted("estimator_")
        return {"lambda": self.estimator_.lam_}

    def weights_for_degree(self, degree: float) -> np.ndarray:
        """Weights at ``λ = degree`` (re-runs the model-in-the-loop calibration)."""
        self._check_fitted("estimator_")
        return self.estimator_.compute_weights(None, float(degree))[0]


@register_intervention("cap", summary="Capuchin-style invasive data repair")
class CapuchinIntervention(Intervention):
    """CAP: resample the training data toward group/label independence."""

    capabilities = InterventionCapabilities(repairs_data=True)
    _state_attributes = ("estimator_",)

    def __init__(
        self,
        learner="xgb",
        repair_strength: float = 1.0,
        random_state: Optional[int] = 0,
    ) -> None:
        self.learner = learner
        self.repair_strength = repair_strength
        self.random_state = random_state

    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "CapuchinIntervention":
        self.estimator_ = CapuchinRepair(
            learner=self.learner,
            repair_strength=self.repair_strength,
            random_state=self.random_state,
        ).fit(train, validation)
        return self

    @property
    def repaired_(self) -> Dataset:
        """The repaired (resampled) training dataset."""
        self._check_fitted("estimator_")
        return self.estimator_.repaired_

    def make_model(
        self,
        split: DatasetSplit,
        *,
        learner: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> DeployedModel:
        self._check_fitted("estimator_")
        model = self.estimator_.fit_learner(self._final_learner(learner, seed))
        return DeployedModel.from_predictor(model, name="CapuchinIntervention")


def _same_final_model(intervention: Intervention, learner, seed) -> bool:
    """Whether ``make_model``'s requested (learner, seed) match the fit-time ones.

    Routing families train their serving models during :meth:`fit`; when the
    request matches the fit configuration the fitted models are reused,
    otherwise they are refitted with the requested final learner.
    """
    same_learner = learner is None or learner is intervention.learner or learner == intervention.learner
    same_seed = seed is None or seed == intervention.random_state
    return bool(same_learner and same_seed)
