"""Decorator-driven registry of fairness interventions.

Interventions register themselves by name::

    @register_intervention("confair", summary="conformance-driven reweighing")
    class ConFairIntervention(Intervention):
        ...

and callers resolve names through :func:`make_intervention`, which validates
keyword arguments against the intervention's constructor signature and raises
:class:`~repro.exceptions.ExperimentError` — naming the offending parameter
and listing the accepted ones — instead of silently dropping inapplicable
options (the failure mode of the old 9-branch runner dispatch).

One class may register under several names with different preset defaults;
that is how the Fig. 13 ablation variants (``confair0``/``diffair0``, which
skip the density-based CC optimization) share their implementation with the
full methods.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.exceptions import ExperimentError
from repro.interventions.base import Intervention, InterventionCapabilities

_REGISTRY: Dict[str, "InterventionSpec"] = {}


@dataclass(frozen=True)
class InterventionSpec:
    """One registry entry: the wrapper class plus name-specific presets."""

    name: str
    cls: Type[Intervention]
    defaults: Mapping[str, object] = field(default_factory=dict)
    summary: str = ""

    @property
    def capabilities(self) -> InterventionCapabilities:
        return self.cls.capabilities

    def accepted_params(self) -> Tuple[str, ...]:
        """Constructor parameter names the intervention accepts."""
        signature = inspect.signature(self.cls.__init__)
        return tuple(
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        )


def register_intervention(
    name: str,
    *,
    defaults: Optional[Mapping[str, object]] = None,
    summary: str = "",
) -> Callable[[Type[Intervention]], Type[Intervention]]:
    """Class decorator registering an :class:`Intervention` under ``name``.

    Parameters
    ----------
    name:
        Public method identifier (lower-case; what :func:`make_intervention`
        resolves).
    defaults:
        Constructor presets applied for this name (user kwargs override
        them); used to register ablation variants of a shared class.
    summary:
        One-line description shown by :func:`describe_interventions`.
    """

    def decorator(cls: Type[Intervention]) -> Type[Intervention]:
        key = name.strip().lower()
        if key in _REGISTRY:
            raise ExperimentError(f"Intervention {key!r} is already registered")
        if not issubclass(cls, Intervention):
            raise ExperimentError(
                f"@register_intervention target {cls.__name__} must subclass Intervention"
            )
        _REGISTRY[key] = InterventionSpec(
            name=key, cls=cls, defaults=dict(defaults or {}), summary=summary
        )
        return cls

    return decorator


def available_interventions() -> List[str]:
    """Registered intervention names, in registration (paper) order."""
    return list(_REGISTRY)


def describe_interventions() -> Dict[str, str]:
    """Mapping of registered name to its one-line summary."""
    return {name: spec.summary for name, spec in _REGISTRY.items()}


def get_intervention_spec(name: str) -> InterventionSpec:
    """Resolve ``name`` (case-insensitive) to its registry entry."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ExperimentError(
            f"Unknown intervention {name!r}; available interventions: "
            f"{tuple(available_interventions())}"
        ) from None


def intervention_accepts(name: str, param: str) -> bool:
    """Whether intervention ``name`` accepts constructor parameter ``param``."""
    return param in get_intervention_spec(name).accepted_params()


def make_intervention(name: str, **kwargs) -> Intervention:
    """Instantiate a registered intervention by name.

    Keyword arguments are validated against the intervention's constructor:
    unknown parameters raise :class:`~repro.exceptions.ExperimentError`
    naming the rejected option and the accepted ones, so experiment configs
    can no longer silently carry options the method never reads.
    """
    spec = get_intervention_spec(name)
    accepted = spec.accepted_params()
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise ExperimentError(
            f"Intervention {spec.name!r} does not accept parameter(s) "
            f"{', '.join(repr(p) for p in unknown)}; accepted parameters: {accepted}"
        )
    params = dict(spec.defaults)
    params.update(kwargs)
    return spec.cls(**params)
