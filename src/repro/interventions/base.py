"""The ``Intervention`` protocol: one estimator surface for every method family.

The paper's methods come in three families — reweighing (ConFair, KAM, OMN),
model splitting (DiffFair, MultiModel), and data repair (CAP) — and each has a
naturally different internal surface (``weights_`` vs. ``predict(X)`` vs.
``predict(X, group)`` vs. ``fit_learner()``).  This module defines the single
abstract protocol every intervention is adapted to:

* construction with keyword hyper-parameters only, stored verbatim on
  ``self`` (the scikit-learn convention), which makes ``get_params`` /
  ``set_params`` / ``clone`` / ``__repr__`` work without per-class code;
* a declared :class:`InterventionCapabilities` descriptor saying what the
  method *does* (produces weights, routes tuples, repairs data) and what the
  serving path therefore needs (the group attribute, a validation split);
* a uniform ``fit(train, validation=None)``;
* a uniform ``make_model(split, learner=..., seed=...)`` that returns a
  ready-to-predict :class:`DeployedModel` regardless of family.

Downstream code — the experiment runner, the :class:`FairnessPipeline`
facade, user serving code — only ever talks to this protocol, so new
interventions plug in by subclassing :class:`Intervention` and registering
themselves (see :mod:`repro.interventions.registry`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Optional

import numpy as np

from repro.datasets.splits import DatasetSplit
from repro.datasets.table import Dataset
from repro.exceptions import ExperimentError, ValidationError
from repro.learners.base import BaseClassifier, BaseEstimator, clone as clone_estimator
from repro.learners.registry import make_learner


@dataclass(frozen=True)
class InterventionCapabilities:
    """What an intervention produces and what its serving path requires.

    Attributes
    ----------
    produces_weights:
        The intervention emits per-tuple training weights (``weights_``) and
        the final model is any learner trained on the weighted data.
    routes:
        The intervention serves tuples with one of several internal models
        (model splitting).
    repairs_data:
        The intervention rewrites the training data (invasive repair) and the
        final model is trained on the repaired dataset.
    requires_group_at_predict:
        Serving needs the tuple's declared group membership (MultiModel);
        interventions without this flag never read the sensitive attribute at
        deployment time.
    supports_calibration_transfer:
        The intervention calibrates against a learner that may differ from
        the final model's learner (the Fig. 7 cross-model experiment).
    degree_param:
        Name of the constructor parameter holding the intervention degree
        (``"alpha_u"`` for ConFair, ``"lam"`` for OMN) when the method
        supports degree sweeps without refitting (Figs. 8/9); ``None``
        otherwise.
    requires_validation_for_tuning:
        ``fit`` needs a validation split when the intervention degree is left
        unspecified (automatic search).
    """

    produces_weights: bool = False
    routes: bool = False
    repairs_data: bool = False
    requires_group_at_predict: bool = False
    supports_calibration_transfer: bool = False
    degree_param: Optional[str] = None
    requires_validation_for_tuning: bool = False

    @property
    def supports_degree_sweep(self) -> bool:
        """Whether :meth:`Intervention.weights_for_degree` is available."""
        return self.degree_param is not None


class DeployedModel:
    """A ready-to-predict artifact produced by :meth:`Intervention.make_model`.

    The artifact normalizes the serving surface: ``predict(X, group=None)``
    works for every family.  ``group`` is only consulted when the producing
    intervention declared ``requires_group_at_predict`` (and is then
    mandatory); all other artifacts ignore it, so callers can always pass the
    group column when they have one.

    ``predictor`` is the underlying estimator whose ``predict`` /
    ``predict_proba`` the artifact wraps.  It is what
    :mod:`repro.serving.artifacts` persists: a model built through
    :meth:`from_predictor` (the path every registered intervention uses) can
    be saved and reloaded with bit-identical predictions, whereas a model
    built from bare callables cannot.
    """

    def __init__(
        self,
        predict_fn: Callable[..., np.ndarray],
        *,
        predict_proba_fn: Optional[Callable[..., np.ndarray]] = None,
        requires_group: bool = False,
        details: Optional[Dict[str, object]] = None,
        name: str = "model",
        predictor: Optional[object] = None,
    ) -> None:
        self._predict_fn = predict_fn
        self._predict_proba_fn = predict_proba_fn
        self.requires_group = bool(requires_group)
        self.details: Dict[str, object] = dict(details or {})
        self.name = name
        self.predictor = predictor

    @classmethod
    def from_predictor(
        cls,
        predictor: object,
        *,
        requires_group: bool = False,
        details: Optional[Dict[str, object]] = None,
        name: str = "model",
    ) -> "DeployedModel":
        """Wrap a fitted estimator exposing ``predict`` (and maybe ``predict_proba``)."""
        return cls(
            predictor.predict,
            predict_proba_fn=getattr(predictor, "predict_proba", None),
            requires_group=requires_group,
            details=details,
            name=name,
            predictor=predictor,
        )

    def _resolve_group(self, group) -> tuple:
        if self.requires_group:
            if group is None:
                raise ValidationError(
                    f"{self.name} routes by declared group membership; "
                    "predict() needs the group array"
                )
            return (group,)
        return ()

    def predict(self, X, group=None) -> np.ndarray:
        """Predict hard labels; ``group`` is used only by group-routed models."""
        return self._predict_fn(X, *self._resolve_group(group))

    def predict_proba(self, X, group=None) -> np.ndarray:
        """Class probabilities, when the underlying model exposes them."""
        if self._predict_proba_fn is None:
            raise ExperimentError(f"{self.name} does not expose predict_proba")
        return self._predict_proba_fn(X, *self._resolve_group(group))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeployedModel({self.name!r}, requires_group={self.requires_group})"


class Intervention(BaseEstimator):
    """Abstract base for every fairness intervention.

    Subclasses declare a class-level :class:`InterventionCapabilities` and
    implement :meth:`fit` and :meth:`make_model`.  Everything else —
    ``get_params``/``set_params``/``__repr__`` (inherited from
    :class:`~repro.learners.base.BaseEstimator`), :meth:`clone`,
    :meth:`details` — comes for free.

    Serialization is part of the protocol: every intervention declares its
    fitted state through ``_state_attributes`` and inherits the
    ``state_dict`` / ``load_state_dict`` pair from
    :class:`~repro.learners.base.BaseEstimator`, which is what lets
    :mod:`repro.serving.artifacts` persist a fitted intervention and restore
    it with bit-identical behaviour.
    """

    capabilities: ClassVar[InterventionCapabilities] = InterventionCapabilities()

    # ------------------------------------------------------------- protocol
    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "Intervention":
        """Fit the intervention on the training split.

        ``validation`` is consulted only when the capabilities declare
        ``requires_validation_for_tuning`` and the degree was left to the
        automatic search; it is always accepted for API symmetry.
        """
        raise NotImplementedError

    def make_model(
        self,
        split: DatasetSplit,
        *,
        learner: Optional[object] = None,
        seed: Optional[int] = None,
    ) -> DeployedModel:
        """Return a ready-to-predict artifact for the fitted intervention.

        Parameters
        ----------
        split:
            The train/validation/deploy split the intervention was fitted on;
            weight- and repair-based families train the final ``learner``
            here, routing families package their already-fitted group models.
        learner:
            Learner name or prototype for the *final* model; defaults to the
            intervention's own ``learner`` hyper-parameter.
        seed:
            Seed for the final model; defaults to the intervention's
            ``random_state``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------ optionals
    def details(self) -> Dict[str, object]:
        """Method-specific fit outcomes (chosen degrees, λ, ...)."""
        return {}

    def weights_for_degree(self, degree: float) -> np.ndarray:
        """Training weights at an explicit intervention degree (Figs. 8/9).

        Only available when ``capabilities.supports_degree_sweep``; the
        default implementation explains what is missing.
        """
        raise ExperimentError(
            f"{type(self).__name__} does not support degree sweeps "
            "(capabilities.degree_param is None)"
        )

    def clone(self) -> "Intervention":
        """Return an unfitted copy with identical hyper-parameters."""
        return clone_estimator(self)

    # ------------------------------------------------------------- helpers
    def _final_learner(self, learner, seed) -> BaseClassifier:
        """Build the final (deploy) model from a name, prototype, or default."""
        learner = self.get_params().get("learner", "lr") if learner is None else learner
        seed = self.get_params().get("random_state", 0) if seed is None else seed
        if isinstance(learner, str):
            return make_learner(learner, random_state=seed)
        return clone_estimator(learner)
