"""``FairnessPipeline``: dataset → intervention → learner → fairness report.

The facade composes the whole evaluation path behind one object::

    from repro import FairnessPipeline

    result = FairnessPipeline(intervention="confair", learner="lr", dataset="meps").run()
    print(result.report.di_star, result.details["alpha_u"])

It supports the three workflows the paper's evaluation is built on:

* **calibration-learner transfer** (Fig. 7): ``calibration_learner="xgb"``
  calibrates the intervention against one learner while the final model is
  trained with another — only allowed for interventions whose capabilities
  declare ``supports_calibration_transfer``;
* **degree sweeps without re-profiling** (Figs. 8/9): :meth:`sweep_degrees`
  fits the intervention once (profiling, constraint discovery) and then
  re-derives weights per intervention degree;
* **repeated random splits** (every aggregated figure):
  :meth:`run_repeated` re-splits and re-fits per derived seed, optionally in
  parallel (``n_jobs``), and stays deterministic either way.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets import load_dataset, split_dataset
from repro.datasets.splits import DatasetSplit
from repro.datasets.table import Dataset
from repro.exceptions import ExperimentError
from repro.fairness import FairnessReport, evaluate_predictions
from repro.interventions.base import DeployedModel, Intervention, InterventionCapabilities
from repro.interventions.registry import (
    get_intervention_spec,
    intervention_accepts,
    make_intervention,
)
from repro.learners.base import BaseEstimator, clone as clone_estimator
from repro.learners.registry import make_learner
from repro.telemetry import span
from repro.utils.parallel import thread_map
from repro.utils.random import spawn_seeds

DatasetSource = Union[str, Dataset, DatasetSplit]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one end-to-end pipeline run.

    Besides the metrics the experiment harness aggregates (``report``,
    ``runtime_seconds``, ``details``) the result keeps the deploy-set
    ``predictions``, the fitted ``intervention``, and the serving ``model``
    so callers can inspect routing, weights, or chosen degrees after the
    fact.
    """

    dataset: str
    method: str
    learner: str
    seed: int
    report: FairnessReport
    runtime_seconds: float
    details: Dict[str, object]
    predictions: np.ndarray
    intervention: Intervention
    model: DeployedModel


@dataclass(frozen=True)
class DegreeSweepPoint:
    """One point of an intervention-degree sweep (Figs. 8/9)."""

    degree: float
    report: FairnessReport
    predictions: np.ndarray


class FairnessPipeline(BaseEstimator):
    """High-level facade running one intervention end to end.

    Parameters
    ----------
    intervention:
        Registered intervention name (see
        :func:`~repro.interventions.available_interventions`) or an
        :class:`~repro.interventions.Intervention` prototype instance
        (cloned per run).
    learner:
        Learner name or prototype for the *final* model.
    dataset:
        Dataset name (loaded and split per seed), a :class:`Dataset`
        (split per seed), or a ready :class:`DatasetSplit` (used as-is, so
        repeated runs vary only the learner seed).
    calibration_learner:
        Learner the intervention calibrates against when it differs from the
        final ``learner`` (the Fig. 7 transfer experiment); rejected for
        interventions that do not declare ``supports_calibration_transfer``.
    size_factor:
        Scale of the generated benchmark surrogate when ``dataset`` is a
        name.
    seed:
        Default seed for :meth:`run` (dataset generation, splitting, and all
        learners).
    intervention_params:
        Extra constructor parameters for the intervention; unknown ones
        raise :class:`~repro.exceptions.ExperimentError`.
    train_size, validation_size:
        Split fractions (paper: 70% / 15% / 15%).
    fit_n_jobs:
        Worker threads for the intervention's *fit-side* hot path — parallel
        partition profiling in ConFair/DiffFair (``None``/``1`` serial,
        ``-1`` one per CPU).  Forwarded as ``n_jobs`` to interventions whose
        constructor accepts it and silently ignored for the rest; results
        are bit-identical to serial fits either way.  Orthogonal to the
        ``n_jobs`` of :meth:`run_repeated`, which parallelizes across whole
        repeats.
    """

    def __init__(
        self,
        intervention: Union[str, Intervention] = "confair",
        learner="lr",
        *,
        dataset: DatasetSource = "lsac",
        calibration_learner=None,
        size_factor: Optional[float] = 0.05,
        seed: int = 0,
        intervention_params: Optional[Dict[str, object]] = None,
        train_size: float = 0.70,
        validation_size: float = 0.15,
        fit_n_jobs: Optional[int] = None,
    ) -> None:
        self.intervention = intervention
        self.learner = learner
        self.dataset = dataset
        self.calibration_learner = calibration_learner
        self.size_factor = size_factor
        self.seed = seed
        self.intervention_params = intervention_params
        self.train_size = train_size
        self.validation_size = validation_size
        self.fit_n_jobs = fit_n_jobs

    # ------------------------------------------------------------- running
    def run(self, seed: Optional[int] = None) -> PipelineResult:
        """Fit the intervention, build the final model, evaluate the deploy set."""
        seed = self.seed if seed is None else int(seed)
        with span(
            "pipeline.run",
            method=self._method_name(),
            learner=self._learner_name(),
            seed=seed,
        ):
            dataset_name, split = self._resolve_split(seed)
            intervention = self._build_intervention(seed)
            start = time.perf_counter()
            with span("pipeline.fit_intervention"):
                intervention.fit(split.train, validation=split.validation)
            with span("pipeline.make_model"):
                model = intervention.make_model(split, learner=self.learner, seed=seed)
            predictions = model.predict(split.deploy.X, group=split.deploy.group)
            elapsed = time.perf_counter() - start
            with span("pipeline.evaluate"):
                report = evaluate_predictions(split.deploy.y, predictions, split.deploy.group)
        details = {**intervention.details(), **model.details}
        return PipelineResult(
            dataset=dataset_name,
            method=self._method_name(),
            learner=self._learner_name(),
            seed=seed,
            report=report,
            runtime_seconds=elapsed,
            details=details,
            predictions=predictions,
            intervention=intervention,
            model=model,
        )

    def run_repeated(
        self,
        n_repeats: int = 3,
        *,
        base_seed: int = 7,
        n_jobs: Optional[int] = None,
    ) -> List[PipelineResult]:
        """Run over ``n_repeats`` derived seeds, optionally in parallel.

        Per-repeat seeds are derived deterministically from ``base_seed``
        (matching the serial experiment harness), and each repeat builds its
        own split and intervention, so results are identical whether they are
        computed serially or with ``n_jobs`` worker threads.
        """
        if n_repeats < 1:
            raise ExperimentError("n_repeats must be at least 1")
        seeds = spawn_seeds(base_seed, n_repeats)
        if n_jobs is not None and n_jobs > 1:
            with ThreadPoolExecutor(max_workers=n_jobs) as pool:
                return list(pool.map(self.run, seeds))
        return [self.run(seed) for seed in seeds]

    def sweep_degrees(
        self,
        degrees: Sequence[float],
        *,
        seed: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> List[DegreeSweepPoint]:
        """Evaluate a grid of intervention degrees without re-profiling.

        The intervention is fitted once (with its degree pinned, so no
        automatic search runs) and its ``weights_for_degree`` re-derives the
        training weights per degree; only the final model is retrained for
        each point.  Requires ``capabilities.supports_degree_sweep``.

        ``n_jobs`` retrains the per-degree final models in worker threads
        (falling back to the pipeline's ``fit_n_jobs`` when ``None``).  Each
        point builds its own seeded learner on private weights, so the sweep
        is bit-identical to the serial loop, in degree order.
        """
        capabilities = self._capabilities()
        if not capabilities.supports_degree_sweep:
            raise ExperimentError(
                f"Intervention {self._method_name()!r} does not support degree sweeps; "
                "only interventions with a declared degree_param do"
            )
        seed = self.seed if seed is None else int(seed)
        degrees = list(degrees)
        n_jobs = self.fit_n_jobs if n_jobs is None else n_jobs
        with span(
            "pipeline.sweep_degrees",
            method=self._method_name(),
            n_degrees=len(degrees),
            n_jobs=n_jobs,
        ):
            _, split = self._resolve_split(seed)
            intervention = self._build_intervention(
                seed, extra_params={capabilities.degree_param: 0.0}
            )
            with span("pipeline.fit_intervention"):
                intervention.fit(split.train, validation=split.validation)

            def evaluate(degree) -> DegreeSweepPoint:
                with span("pipeline.sweep_point", degree=float(degree)):
                    weights = intervention.weights_for_degree(float(degree))
                    model = self._final_learner(seed)
                    model.fit(split.train.X, split.train.y, sample_weight=weights)
                    predictions = model.predict(split.deploy.X)
                    report = evaluate_predictions(
                        split.deploy.y, predictions, split.deploy.group
                    )
                return DegreeSweepPoint(
                    degree=float(degree), report=report, predictions=predictions
                )

            return thread_map(evaluate, degrees, n_jobs=n_jobs)

    # ------------------------------------------------------------ plumbing
    def _capabilities(self) -> InterventionCapabilities:
        if isinstance(self.intervention, str):
            return get_intervention_spec(self.intervention).capabilities
        return type(self.intervention).capabilities

    def _method_name(self) -> str:
        if isinstance(self.intervention, str):
            return self.intervention.strip().lower()
        return type(self.intervention).__name__

    def _learner_name(self) -> str:
        return self.learner if isinstance(self.learner, str) else type(self.learner).__name__

    def _resolve_split(self, seed: int) -> Tuple[str, DatasetSplit]:
        source = self.dataset
        if isinstance(source, DatasetSplit):
            return source.train.name, source
        if isinstance(source, Dataset):
            data = source
            name = source.name
        else:
            name = str(source)
            data = load_dataset(name, size_factor=self.size_factor, random_state=seed)
        split = split_dataset(
            data,
            train_size=self.train_size,
            validation_size=self.validation_size,
            random_state=seed,
        )
        return name, split

    def _constructor_learner(self):
        """The learner the intervention itself calibrates against."""
        if self.calibration_learner is None:
            return self.learner
        if not self._capabilities().supports_calibration_transfer:
            raise ExperimentError(
                f"Intervention {self._method_name()!r} does not support a separate "
                "calibration learner (capabilities.supports_calibration_transfer is False)"
            )
        return self.calibration_learner

    def _build_intervention(
        self, seed: int, extra_params: Optional[Dict[str, object]] = None
    ) -> Intervention:
        params = dict(self.intervention_params or {})
        for name, value in (extra_params or {}).items():
            params.setdefault(name, value)
        constructor_learner = self._constructor_learner()
        if isinstance(self.intervention, str):
            params.setdefault("learner", constructor_learner)
            params.setdefault("random_state", seed)
            if self.fit_n_jobs is not None and intervention_accepts(self.intervention, "n_jobs"):
                params.setdefault("n_jobs", self.fit_n_jobs)
            return make_intervention(self.intervention, **params)
        intervention = self.intervention.clone()
        if self.calibration_learner is not None:
            params.setdefault("learner", constructor_learner)
        accepted = intervention.get_params()
        if "random_state" in accepted:
            params.setdefault("random_state", seed)
        if self.fit_n_jobs is not None and "n_jobs" in accepted:
            params.setdefault("n_jobs", self.fit_n_jobs)
        unknown = sorted(set(params) - set(accepted))
        if unknown:
            raise ExperimentError(
                f"Intervention {self._method_name()!r} does not accept parameter(s) "
                f"{', '.join(repr(p) for p in unknown)}; accepted parameters: "
                f"{tuple(sorted(accepted))}"
            )
        if params:
            intervention.set_params(**params)
        return intervention

    def _final_learner(self, seed: int):
        if isinstance(self.learner, str):
            return make_learner(self.learner, random_state=seed)
        return clone_estimator(self.learner)
