"""Unified intervention protocol, registry, and the ``FairnessPipeline`` facade.

This package defines the public estimator surface for every fairness
intervention in the library:

* :class:`Intervention` — the abstract protocol (``fit`` /
  ``make_model`` / ``details`` / ``get_params`` / ``set_params`` /
  ``clone``) with a declared :class:`InterventionCapabilities` descriptor;
* the registry — :func:`register_intervention`, :func:`make_intervention`,
  :func:`available_interventions` — through which methods are resolved by
  the names the paper's figures use (``confair``, ``diffair``, ``kam``, …);
* :class:`FairnessPipeline` — the dataset → intervention → learner →
  :class:`~repro.fairness.FairnessReport` facade used by the experiment
  harness and the examples.

New interventions plug in without touching the experiment runner::

    from repro.interventions import Intervention, register_intervention

    @register_intervention("my-method", summary="...")
    class MyIntervention(Intervention):
        ...
"""

from repro.interventions.base import (
    DeployedModel,
    Intervention,
    InterventionCapabilities,
)
from repro.interventions.registry import (
    InterventionSpec,
    available_interventions,
    describe_interventions,
    get_intervention_spec,
    intervention_accepts,
    make_intervention,
    register_intervention,
)

# Importing the wrappers registers every built-in method; the import must
# come after the registry so the decorators can run.
from repro.interventions.wrappers import (
    CapuchinIntervention,
    ConFairIntervention,
    DiffFairIntervention,
    IdentityIntervention,
    KamiranIntervention,
    MultiModelIntervention,
    OmniFairIntervention,
)
from repro.interventions.pipeline import (
    DegreeSweepPoint,
    FairnessPipeline,
    PipelineResult,
)

__all__ = [
    "CapuchinIntervention",
    "ConFairIntervention",
    "DegreeSweepPoint",
    "DeployedModel",
    "DiffFairIntervention",
    "FairnessPipeline",
    "IdentityIntervention",
    "Intervention",
    "InterventionCapabilities",
    "InterventionSpec",
    "KamiranIntervention",
    "MultiModelIntervention",
    "OmniFairIntervention",
    "PipelineResult",
    "available_interventions",
    "describe_interventions",
    "get_intervention_spec",
    "intervention_accepts",
    "make_intervention",
    "register_intervention",
]
