"""DiffFair (Algorithm 1): group-dependent models routed by conformance.

DiffFair trains one model per group on that group's training data, derives
conformance constraints per (group, label) partition, and — crucially —
serves each deployment tuple with the model whose constraints it violates the
least, *without consulting group membership at serving time*.  This makes the
deployment robust to missing or wrong demographic attributes and lets
individuals who conform better to the other group's pattern be served by that
group's (better-fitting) model.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.partitions import profile_partitions
from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier, BaseEstimator, clone
from repro.learners.registry import make_learner
from repro.profiling.discovery import DiscoveryConfig
from repro.utils.parallel import thread_map
from repro.utils.validation import check_array


class DiffFair(BaseEstimator):
    """The DiffFair model-splitting intervention.

    Parameters
    ----------
    learner:
        Learner name (``"lr"``, ``"xgb"``) or prototype instance; cloned for
        each group-dependent model.
    use_density_filter:
        Apply Algorithm 3 before constraint derivation.
    density_fraction:
        Fraction of densest tuples kept by the filter (paper: 0.2).
    discovery_config:
        Conformance-constraint discovery hyper-parameters.
    random_state:
        Seed passed to learners created from a registry name.
    n_jobs:
        Worker threads for partition profiling and the two group-model fits
        during :meth:`fit` (``None``/``1`` serial, ``-1`` one per CPU).  The
        parallel profile is assembled in deterministic partition order and
        each group model trains on its own data with its own seed, so the
        fitted state is bit-identical to a serial fit.

    Attributes (after :meth:`fit`)
    ------------------------------
    model_majority_, model_minority_ :
        The two fitted group-dependent models (``f_w`` and ``f_u``).
    profile_ : PartitionProfile
        Constraint sets per (group, label) partition of the training data.
    """

    _state_attributes = (
        "model_majority_",
        "model_minority_",
        "profile_",
        "n_features_",
        "n_numeric_features_",
        "_validation_scores",
    )

    def __init__(
        self,
        learner="lr",
        use_density_filter: bool = True,
        density_fraction: float = 0.2,
        discovery_config: Optional[DiscoveryConfig] = None,
        random_state: Optional[int] = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        self.learner = learner
        self.use_density_filter = use_density_filter
        self.density_fraction = density_fraction
        self.discovery_config = discovery_config
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "DiffFair":
        """Train the group-dependent models and derive routing constraints.

        ``validation`` is accepted for API symmetry with the other
        interventions (the paper validates each group model on its group's
        validation partition); it is not required for routing.
        """
        if not np.any(train.group == 0) or not np.any(train.group == 1):
            raise ValidationError("DiffFair needs training tuples from both groups")

        self.profile_ = profile_partitions(
            train,
            discovery_config=self.discovery_config,
            use_density_filter=self.use_density_filter,
            density_fraction=self.density_fraction,
            n_jobs=self.n_jobs,
        )

        majority = train.partition(group_value=0)
        minority = train.partition(group_value=1)
        self.model_majority_, self.model_minority_ = thread_map(
            self._fit_group_model, [majority, minority], n_jobs=self.n_jobs
        )
        self.n_features_ = train.n_features
        self.n_numeric_features_ = train.n_numeric_features
        self._validation_scores: Dict[str, float] = {}
        if validation is not None:
            self._validation_scores = self._validate(validation)
        return self

    def _fit_group_model(self, group_data: Dataset) -> BaseClassifier:
        model = self._make_learner()
        if np.unique(group_data.y).size < 2:
            # Degenerate group (single label): the model will predict that
            # label everywhere; logistic/boosting handle this but guard for
            # clarity of failure mode described in the paper (Section I).
            pass
        model.fit(group_data.X, group_data.y)
        return model

    def _make_learner(self) -> BaseClassifier:
        if isinstance(self.learner, str):
            return make_learner(self.learner, random_state=self.random_state)
        return clone(self.learner)

    def _validate(self, validation: Dataset) -> Dict[str, float]:
        """Per-group validation accuracy of the two models (diagnostics only)."""
        scores: Dict[str, float] = {}
        for name, model, group_value in (
            ("majority", self.model_majority_, 0),
            ("minority", self.model_minority_, 1),
        ):
            mask = validation.group == group_value
            if mask.any():
                scores[name] = float(model.score(validation.X[mask], validation.y[mask]))
        return scores

    # -------------------------------------------------------------- routing
    def routing_scores(self, X) -> np.ndarray:
        """Return the (majority, minority) violation scores per row.

        ``scores[i, 0]`` is the row's minimum violation against the majority
        partitions, ``scores[i, 1]`` against the minority partitions.
        """
        self._check_fitted("model_majority_")
        X = check_array(X, name="X")
        if X.shape[1] != self.n_features_:
            raise ValidationError(
                f"X has {X.shape[1]} features, DiffFair was fitted with {self.n_features_}"
            )
        numeric = X[:, : self.n_numeric_features_]
        majority_violation = self.profile_.min_violation_for_group(0, numeric)
        minority_violation = self.profile_.min_violation_for_group(1, numeric)
        return np.column_stack([majority_violation, minority_violation])

    def route(self, X) -> np.ndarray:
        """Return 0/1 per row: which group's model serves the tuple.

        Ties (equal violation) go to the majority model, matching the strict
        ``<`` comparison in Algorithm 1's PREDICT procedure.
        """
        scores = self.routing_scores(X)
        return (scores[:, 1] < scores[:, 0]).astype(np.int64)

    # ------------------------------------------------------------- predict
    def predict(self, X) -> np.ndarray:
        """Predict labels, serving each tuple with its best-conforming model."""
        routes = self.route(X)
        X = check_array(X, name="X")
        predictions = np.empty(X.shape[0], dtype=np.int64)
        majority_rows = routes == 0
        if majority_rows.any():
            predictions[majority_rows] = self.model_majority_.predict(X[majority_rows])
        if (~majority_rows).any():
            predictions[~majority_rows] = self.model_minority_.predict(X[~majority_rows])
        return predictions

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities from the routed models, shape ``(n_samples, 2)``."""
        routes = self.route(X)
        X = check_array(X, name="X")
        probabilities = np.empty((X.shape[0], 2), dtype=np.float64)
        majority_rows = routes == 0
        if majority_rows.any():
            probabilities[majority_rows] = self.model_majority_.predict_proba(X[majority_rows])
        if (~majority_rows).any():
            probabilities[~majority_rows] = self.model_minority_.predict_proba(X[~majority_rows])
        return probabilities

    @property
    def validation_scores_(self) -> Dict[str, float]:
        """Per-group validation accuracy recorded during :meth:`fit` (may be empty)."""
        self._check_fitted("model_majority_")
        return dict(self._validation_scores)
