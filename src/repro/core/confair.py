"""ConFair (Algorithm 2): conformance-driven reweighing of training data.

ConFair is the paper's single-model, non-invasive intervention.  It

1. partitions the training data by (group, label),
2. derives conformance constraints per partition (optionally over the densest
   tuples only — Algorithm 3),
3. assigns every tuple a base weight that balances group/label skew
   (line 5 of Algorithm 2), and
4. adds the intervention degree ``alpha_u`` to minority tuples that *conform*
   to their partition's constraints on the label the minority is skewed away
   from, and ``alpha_w`` to the corresponding majority-conforming tuples.

The resulting per-tuple weights are consumed by any learner that accepts
``sample_weight`` — the intervention never alters the data or the learner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.partitions import profile_partitions
from repro.core.tuning import tune_intervention_degree
from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.learners.base import BaseClassifier, BaseEstimator
from repro.learners.registry import make_learner
from repro.profiling.discovery import DiscoveryConfig


@dataclass(frozen=True)
class ConFairWeights:
    """The outcome of a ConFair weight computation.

    Attributes
    ----------
    weights:
        Per-tuple training weights (aligned with the training dataset rows).
    alpha_u, alpha_w:
        The intervention degrees that produced the weights.
    conforming_minority, conforming_majority:
        Row indices (into the training dataset) whose weights were increased
        by ``alpha_u`` / ``alpha_w`` respectively.
    """

    weights: np.ndarray
    alpha_u: float
    alpha_w: float
    conforming_minority: np.ndarray
    conforming_majority: np.ndarray


class ConFair(BaseEstimator):
    """The ConFair reweighing intervention.

    Parameters
    ----------
    alpha_u:
        Intervention degree for the minority group.  ``None`` (default)
        triggers an automatic search on the validation split during
        :meth:`fit`, as in the paper.
    alpha_w:
        Intervention degree for the majority group.  ``None`` defaults to
        ``alpha_u / 2`` (the paper's policy).
    fairness_target:
        ``"di"`` (default) boosts minority-positive and majority-negative
        conforming tuples, optimizing Disparate Impact.  ``"fnr"`` boosts only
        minority-positive tuples (Equalized Odds by FNR); ``"fpr"`` boosts
        only minority-negative tuples (Equalized Odds by FPR).
    use_density_filter:
        Apply Algorithm 3 before constraint derivation (strongly recommended;
        Section IV-C shows it is essential).
    density_fraction:
        Fraction of densest tuples kept by the filter (paper: 0.2).
    discovery_config:
        Conformance-constraint discovery hyper-parameters.
    conformance_tol:
        Violation threshold below which a tuple counts as "conforming"
        (0.0 reproduces the paper's ``violation == 0`` test; small positive
        values make conformance slightly more permissive).
    learner:
        Learner name or prototype used when auto-tuning ``alpha_u``.
    tuning_grid:
        Candidate ``alpha_u`` values for the automatic search.
    random_state:
        Seed for the learners trained during tuning.
    n_jobs:
        Worker threads for partition profiling *and* for the per-degree
        learner retrains of the ``alpha_u`` auto-tune during :meth:`fit`
        (``None``/``1`` serial, ``-1`` one per CPU).  Profiling dominates
        fit time and its per-partition work releases the GIL; the parallel
        profile is assembled in deterministic partition order and every
        tuning trial works on cloned learners and private weight arrays, so
        the fitted state is bit-identical to a serial fit.

    Attributes (after :meth:`fit`)
    ------------------------------
    profile_ : PartitionProfile
        The constraint sets learned per (group, label) partition.
    weights_ : numpy.ndarray
        Weights for the training dataset under the chosen intervention.
    alpha_u_, alpha_w_ : float
        The resolved intervention degrees.
    tuning_result_ : InterventionTuningResult or None
        Details of the automatic search (``None`` when alphas were supplied).
    """

    # Everything predictions and degree sweeps depend on; the tuning search
    # trace (``tuning_result_``) is diagnostics-only and is not persisted.
    _state_attributes = (
        "profile_",
        "_base_weights",
        "_conforming",
        "_train",
        "alpha_u_",
        "alpha_w_",
        "weights_",
        "conforming_minority_",
        "conforming_majority_",
    )

    def __init__(
        self,
        alpha_u: Optional[float] = None,
        alpha_w: Optional[float] = None,
        fairness_target: str = "di",
        use_density_filter: bool = True,
        density_fraction: float = 0.2,
        discovery_config: Optional[DiscoveryConfig] = None,
        conformance_tol: float = 1e-9,
        learner="lr",
        tuning_grid: Optional[Tuple[float, ...]] = None,
        random_state: Optional[int] = 0,
        n_jobs: Optional[int] = None,
    ) -> None:
        if fairness_target not in ("di", "fnr", "fpr"):
            raise ValidationError("fairness_target must be 'di', 'fnr', or 'fpr'")
        if alpha_u is not None and alpha_u < 0:
            raise ValidationError("alpha_u must be non-negative")
        if alpha_w is not None and alpha_w < 0:
            raise ValidationError("alpha_w must be non-negative")
        if conformance_tol < 0:
            raise ValidationError("conformance_tol must be non-negative")
        self.alpha_u = alpha_u
        self.alpha_w = alpha_w
        self.fairness_target = fairness_target
        self.use_density_filter = use_density_filter
        self.density_fraction = density_fraction
        self.discovery_config = discovery_config
        self.conformance_tol = conformance_tol
        self.learner = learner
        self.tuning_grid = tuple(tuning_grid) if tuning_grid is not None else tuple(
            np.linspace(0.0, 3.0, 13)
        )
        self.random_state = random_state
        self.n_jobs = n_jobs

    # ------------------------------------------------------------------ fit
    def fit(self, train: Dataset, validation: Optional[Dataset] = None) -> "ConFair":
        """Profile the training data and resolve the intervention degrees.

        ``validation`` is required when ``alpha_u`` was not supplied (the
        automatic search evaluates candidate degrees on it).
        """
        self.profile_ = profile_partitions(
            train,
            discovery_config=self.discovery_config,
            use_density_filter=self.use_density_filter,
            density_fraction=self.density_fraction,
            n_jobs=self.n_jobs,
        )
        self._train = train
        self._base_weights = self._compute_base_weights(train)
        self._conforming = self._find_conforming(train)

        if self.alpha_u is not None:
            self.alpha_u_ = float(self.alpha_u)
            self.alpha_w_ = float(self.alpha_w) if self.alpha_w is not None else self.alpha_u_ / 2.0
            self.tuning_result_ = None
        else:
            if validation is None:
                raise ValidationError(
                    "ConFair needs a validation dataset to auto-tune alpha_u; "
                    "either pass validation= to fit() or supply alpha_u explicitly"
                )
            self.tuning_result_ = tune_intervention_degree(
                weight_fn=lambda alpha_u: self.compute_weights(alpha_u=alpha_u).weights,
                train=train,
                validation=validation,
                learner=self._make_learner(),
                candidate_degrees=self.tuning_grid,
                fairness_target=self.fairness_target,
                n_jobs=self.n_jobs,
            )
            self.alpha_u_ = self.tuning_result_.best_degree
            self.alpha_w_ = self.alpha_u_ / 2.0 if self.alpha_w is None else float(self.alpha_w)

        result = self.compute_weights(alpha_u=self.alpha_u_, alpha_w=self.alpha_w_)
        self.weights_ = result.weights
        self.conforming_minority_ = result.conforming_minority
        self.conforming_majority_ = result.conforming_majority
        return self

    # ------------------------------------------------------------ weighting
    def compute_weights(
        self,
        alpha_u: float,
        alpha_w: Optional[float] = None,
    ) -> ConFairWeights:
        """Compute per-tuple weights for the fitted training data.

        Exposes the weight computation separately from :meth:`fit` so users
        can sweep the intervention degree (Fig. 8/9) without re-profiling.
        """
        self._check_fitted("profile_")
        if alpha_u < 0:
            raise ValidationError("alpha_u must be non-negative")
        alpha_w = alpha_u / 2.0 if alpha_w is None else float(alpha_w)
        if alpha_w < 0:
            raise ValidationError("alpha_w must be non-negative")

        weights = self._base_weights.copy()
        minority_rows, majority_rows = self._target_rows()
        weights[minority_rows] += alpha_u
        weights[majority_rows] += alpha_w
        return ConFairWeights(
            weights=weights,
            alpha_u=float(alpha_u),
            alpha_w=float(alpha_w),
            conforming_minority=minority_rows,
            conforming_majority=majority_rows,
        )

    def fit_learner(self, learner: Optional[BaseClassifier] = None) -> BaseClassifier:
        """Train a learner on the fitted training data using the ConFair weights."""
        self._check_fitted("weights_")
        model = learner if learner is not None else self._make_learner()
        model.fit(self._train.X, self._train.y, sample_weight=self.weights_)
        return model

    # ------------------------------------------------------------ internals
    def _make_learner(self) -> BaseClassifier:
        if isinstance(self.learner, str):
            return make_learner(self.learner, random_state=self.random_state)
        # A prototype instance: clone it so repeated fits stay independent.
        from repro.learners.base import clone

        return clone(self.learner)

    def _compute_base_weights(self, train: Dataset) -> np.ndarray:
        """Line 5 of Algorithm 2: balance weights for population and label skew.

        Each tuple's base weight is ``P(Y = y) * |G| / |G_y|`` — i.e.
        ``P(Y = y) / P(Y = y | G)``, the Kamiran-style balancing ratio — so
        under-represented (group, label) partitions receive proportionally
        higher weight.  Tuples in a partition absent from the training data
        keep a unit weight.
        """
        n_total = train.n_samples
        weights = np.ones(n_total, dtype=np.float64)
        group_sizes = {g: int(np.sum(train.group == g)) for g in (0, 1)}
        for label in (0, 1):
            label_mask = train.y == label
            label_fraction = float(label_mask.sum()) / n_total
            for group_value in (0, 1):
                mask = label_mask & (train.group == group_value)
                count = int(mask.sum())
                if count == 0:
                    continue
                weights[mask] = label_fraction * group_sizes[group_value] / count
        return weights

    def _find_conforming(self, train: Dataset) -> Dict[Tuple[int, int], np.ndarray]:
        """Rows (per partition) whose constraint violation is ~zero (lines 6-7)."""
        conforming: Dict[Tuple[int, int], np.ndarray] = {}
        for key in self.profile_.keys():
            group_value, label = key
            mask = (train.group == group_value) & (train.y == label)
            rows = np.flatnonzero(mask)
            if rows.size == 0:
                conforming[key] = rows
                continue
            violations = self.profile_.violation(key, train.numeric_X[rows])
            conforming[key] = rows[violations <= self.conformance_tol]
        return conforming

    def _skewed_labels(self) -> Tuple[int, int]:
        """Return (minority_boost_label, majority_boost_label).

        The paper's exposition assumes the minority is skewed toward negative
        labels and the majority toward positive ones; here the skew is
        estimated from the data so the intervention generalizes: the minority
        gets boosted on its *under-represented* label and the majority on the
        opposite one.
        """
        minority_positive = self._train.group_positive_rate(1)
        majority_positive = self._train.group_positive_rate(0)
        if minority_positive <= majority_positive:
            return 1, 0  # boost minority positives, majority negatives
        return 0, 1

    def _target_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """Conforming rows receiving the alpha_u / alpha_w boosts for the target metric."""
        minority_label, majority_label = self._skewed_labels()
        if self.fairness_target == "fnr":
            minority_key, majority_key = (1, 1), None
        elif self.fairness_target == "fpr":
            minority_key, majority_key = (1, 0), None
        else:  # "di"
            minority_key = (1, minority_label)
            majority_key = (0, majority_label)
        minority_rows = self._conforming.get(minority_key, np.array([], dtype=np.int64))
        if majority_key is None:
            majority_rows = np.array([], dtype=np.int64)
        else:
            majority_rows = self._conforming.get(majority_key, np.array([], dtype=np.int64))
        return minority_rows, majority_rows
