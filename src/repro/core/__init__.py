"""The paper's primary contribution: ConFair, DiffFair, and the CC optimization.

* :class:`ConFair` — Algorithm 2: CC-driven reweighing of the training data
  with intervention degrees ``alpha_u`` / ``alpha_w`` (auto-tuned on the
  validation split when not supplied).
* :class:`DiffFair` — Algorithm 1: group-dependent models deployed by
  minimum conformance-constraint violation.
* :func:`density_filter` — Algorithm 3: keep only the densest tuples of each
  (group, label) partition before deriving constraints.
* :func:`profile_partitions` — shared profiling step: one
  :class:`~repro.profiling.ConstraintSet` per (group, label) partition.
"""

from repro.core.confair import ConFair, ConFairWeights
from repro.core.density_filter import density_filter, density_filter_indices
from repro.core.diffair import DiffFair
from repro.core.partitions import PartitionProfile, profile_partitions
from repro.core.tuning import InterventionTuningResult, tune_intervention_degree

__all__ = [
    "ConFair",
    "ConFairWeights",
    "DiffFair",
    "InterventionTuningResult",
    "PartitionProfile",
    "density_filter",
    "density_filter_indices",
    "profile_partitions",
    "tune_intervention_degree",
]
