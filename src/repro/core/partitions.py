"""Shared profiling step: constraint sets per (group, label) partition.

Both ConFair (Algorithm 2) and DiffFair (Algorithm 1) begin by partitioning
the training data by group membership and target label, and deriving one
conformance-constraint set per partition.  When the density optimization
(Algorithm 3) is enabled, each partition is first filtered down to its
densest tuples so the derived constraints are tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.density_filter import (
    PartitionKey,
    density_filter_indices,
    iter_group_label_partitions,
)
from repro.datasets.table import Dataset
from repro.exceptions import ConstraintError
from repro.profiling.constraints import ConstraintSet
from repro.profiling.discovery import DiscoveryConfig, discover_constraints
from repro.telemetry import span
from repro.utils.parallel import thread_map

__all__ = ["PartitionKey", "PartitionProfile", "profile_partitions"]


@dataclass
class PartitionProfile:
    """Constraint sets learned per (group, label) partition of a training set.

    Attributes
    ----------
    constraint_sets:
        Mapping from ``(group, label)`` to the :class:`ConstraintSet` learned
        on that partition (on its densest tuples when filtering is enabled).
    partition_sizes:
        Number of training tuples per partition (before filtering).
    profiled_sizes:
        Number of tuples actually profiled per partition (after filtering).
    """

    constraint_sets: Dict[PartitionKey, ConstraintSet] = field(default_factory=dict)
    partition_sizes: Dict[PartitionKey, int] = field(default_factory=dict)
    profiled_sizes: Dict[PartitionKey, int] = field(default_factory=dict)

    def violation(self, key: PartitionKey, X_numeric: np.ndarray) -> np.ndarray:
        """Quantitative violation of the partition's constraints for each row."""
        if key not in self.constraint_sets:
            raise ConstraintError(f"No constraint set for partition {key!r}")
        return self.constraint_sets[key].violation(X_numeric)

    def min_violation_for_group(self, group_value: int, X_numeric: np.ndarray) -> np.ndarray:
        """Per-row minimum violation across the label partitions of one group.

        This is the ``min_{Phi in C}`` step of Algorithm 1's PREDICT
        procedure: a tuple's affinity to a group is its violation against the
        *closest* label partition of that group.
        """
        violations = [
            self.violation((group_value, label), X_numeric)
            for label in (0, 1)
            if (group_value, label) in self.constraint_sets
        ]
        if not violations:
            raise ConstraintError(f"No constraint sets for group {group_value}")
        return np.minimum.reduce(violations)

    def keys(self):
        return self.constraint_sets.keys()


def profile_partitions(
    dataset: Dataset,
    *,
    discovery_config: Optional[DiscoveryConfig] = None,
    use_density_filter: bool = True,
    density_fraction: float = 0.2,
    min_partition_size: int = 2,
    n_jobs: Optional[int] = None,
) -> PartitionProfile:
    """Derive conformance constraints for every (group, label) partition.

    Parameters
    ----------
    dataset:
        The training dataset (constraints are always learned on training
        data only).
    discovery_config:
        Hyper-parameters of constraint discovery.
    use_density_filter:
        Apply Algorithm 3 within each partition before deriving constraints.
    density_fraction:
        Fraction of densest tuples kept by the filter (paper: 0.2).
    min_partition_size:
        Partitions smaller than this are skipped (no constraints derived);
        callers treat missing partitions as "no information".
    n_jobs:
        Profile the partitions on that many worker threads (``None``/``1``
        serial, ``-1`` one per CPU).  The per-partition work — Algorithm 3's
        KDE and constraint discovery — is numpy-bound and releases the GIL,
        so a thread pool scales it without pickling.  Partitions are
        independent and the profile is assembled in deterministic partition
        order (never completion order), so the parallel result is
        bit-identical to the serial one.
    """
    profile = PartitionProfile()
    partitions = list(
        iter_group_label_partitions(dataset.group, dataset.y, include_empty=True)
    )
    for key, rows in partitions:
        profile.partition_sizes[key] = int(rows.size)
    eligible = [(key, rows) for key, rows in partitions if rows.size >= min_partition_size]

    def _profile_one(item: Tuple[PartitionKey, np.ndarray]) -> Tuple[int, ConstraintSet]:
        key, rows = item
        group_value, label = key
        X_partition = dataset.numeric_X[rows]
        if use_density_filter and rows.size > 4:
            kept = density_filter_indices(
                X_partition, density_fraction=density_fraction
            )
            X_profiled = X_partition[kept]
        else:
            X_profiled = X_partition
        group_name = "U" if group_value == 1 else "W"
        constraints = discover_constraints(
            X_profiled,
            config=discovery_config,
            label=f"{dataset.name}:{group_name}:y={label}",
        )
        return int(X_profiled.shape[0]), constraints

    with span(
        "fit.profile_partitions",
        dataset=dataset.name,
        n_partitions=len(eligible),
        n_jobs=n_jobs,
    ):
        profiled = thread_map(_profile_one, eligible, n_jobs=n_jobs)
    for (key, _), (profiled_size, constraints) in zip(eligible, profiled):
        profile.profiled_sizes[key] = profiled_size
        profile.constraint_sets[key] = constraints
    if not profile.constraint_sets:
        raise ConstraintError(
            "No (group, label) partition was large enough to derive constraints"
        )
    return profile
