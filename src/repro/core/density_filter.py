"""Algorithm 3: density-based filtering for stronger conformance constraints.

Constraints learned from high-variance data are permissive and have little
discriminative power.  The optimization estimates the density of every tuple
within its (group, label) partition and keeps only the densest ``k`` tuples
per partition; constraints derived from the filtered partitions are much
tighter, which Section IV-C of the paper shows is essential for both
DiffFair and ConFair.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.density.kde import KernelDensity
from repro.exceptions import ValidationError


def _resolve_keep_count(partition_size: int, density_fraction: float, min_keep: int) -> int:
    """Number of tuples to keep for a partition of ``partition_size`` rows."""
    keep = int(round(density_fraction * partition_size))
    keep = max(keep, min(min_keep, partition_size))
    return min(keep, partition_size)


def density_filter_indices(
    X: np.ndarray,
    *,
    density_fraction: float = 0.2,
    min_keep: int = 10,
    kernel: str = "gaussian",
    bandwidth="scott",
) -> np.ndarray:
    """Return the indices of the densest rows of ``X`` (Algorithm 3, one partition).

    Parameters
    ----------
    X:
        Numeric attribute matrix of one (group, label) partition.
    density_fraction:
        Fraction of rows to keep (the paper uses ``k = 0.2 * n``).
    min_keep:
        Keep at least this many rows (bounded by the partition size), so tiny
        partitions still yield enough tuples to derive constraints from.
    kernel, bandwidth:
        Passed to :class:`repro.density.KernelDensity`.
    """
    if not 0.0 < density_fraction <= 1.0:
        raise ValidationError("density_fraction must be in (0, 1]")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValidationError("X must be a non-empty 2-D matrix")
    n_rows = X.shape[0]
    keep = _resolve_keep_count(n_rows, density_fraction, min_keep)
    if keep >= n_rows:
        return np.arange(n_rows)

    estimator = KernelDensity(bandwidth=bandwidth, kernel=kernel).fit(X)
    log_density = estimator.score_samples(X)
    order = np.argsort(-log_density, kind="mergesort")
    return np.sort(order[:keep])


def density_filter(
    dataset: Dataset,
    *,
    density_fraction: float = 0.2,
    min_keep: int = 10,
    kernel: str = "gaussian",
    bandwidth="scott",
) -> Dataset:
    """Apply Algorithm 3 to a dataset: keep the densest tuples of each partition.

    Each of the four (group, label) partitions is filtered independently and
    the kept rows are concatenated into a new :class:`Dataset` (the input is
    never modified).
    """
    keep_indices = []
    for group_value in (0, 1):
        for label in (0, 1):
            mask = (dataset.group == group_value) & (dataset.y == label)
            partition_rows = np.flatnonzero(mask)
            if partition_rows.size == 0:
                continue
            local = density_filter_indices(
                dataset.numeric_X[partition_rows],
                density_fraction=density_fraction,
                min_keep=min_keep,
                kernel=kernel,
                bandwidth=bandwidth,
            )
            keep_indices.append(partition_rows[local])
    if not keep_indices:
        raise ValidationError("Dataset has no non-empty (group, label) partitions")
    all_indices = np.sort(np.concatenate(keep_indices))
    return dataset.subset(all_indices)


def partition_density_ranks(
    dataset: Dataset,
    *,
    kernel: str = "gaussian",
    bandwidth="scott",
) -> Dict[Tuple[int, int], np.ndarray]:
    """Per-partition density ranks (0 = densest) keyed by ``(group, label)``.

    Exposed for diagnostics and the ablation benchmarks; not needed by the
    main algorithms.
    """
    ranks: Dict[Tuple[int, int], np.ndarray] = {}
    for group_value in (0, 1):
        for label in (0, 1):
            mask = (dataset.group == group_value) & (dataset.y == label)
            rows = np.flatnonzero(mask)
            if rows.size == 0:
                continue
            if rows.size == 1:
                ranks[(group_value, label)] = np.array([0])
                continue
            estimator = KernelDensity(bandwidth=bandwidth, kernel=kernel).fit(
                dataset.numeric_X[rows]
            )
            ranks[(group_value, label)] = estimator.density_rank(dataset.numeric_X[rows])
    return ranks
