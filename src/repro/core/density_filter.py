"""Algorithm 3: density-based filtering for stronger conformance constraints.

Constraints learned from high-variance data are permissive and have little
discriminative power.  The optimization estimates the density of every tuple
within its (group, label) partition and keeps only the densest ``k`` tuples
per partition; constraints derived from the filtered partitions are much
tighter, which Section IV-C of the paper shows is essential for both
DiffFair and ConFair.

Density estimation runs through the batch engine in :mod:`repro.density`:
``score_samples`` evaluates each partition in one vectorized pass and the
backend cache means repeated fits over the same partition (degree sweeps,
profile rebuilds) reuse the already-built spatial index.

This module also owns the canonical **partition iterators**
(:func:`iter_group_label_partitions`, :func:`iter_group_partitions`): every
place that walks the four (group, label) partitions — this module,
:func:`repro.core.profile_partitions`, the streaming fairness counters —
shares one implementation instead of re-rolling the double loop.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.density.kde import KernelDensity
from repro.exceptions import ValidationError
from repro.utils.parallel import thread_map

PartitionKey = Tuple[int, int]
"""(group, label) pair: group 0 = majority W, 1 = minority U."""


def iter_group_partitions(group) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(group_value, row_indices)`` for each non-empty binary group."""
    group = np.asarray(group).ravel()
    for group_value in (0, 1):
        rows = np.flatnonzero(group == group_value)
        if rows.size:
            yield group_value, rows


def iter_group_label_partitions(
    group,
    y,
    *,
    include_empty: bool = False,
) -> Iterator[Tuple[PartitionKey, np.ndarray]]:
    """Yield ``((group, label), row_indices)`` over the four partitions.

    Empty partitions are skipped unless ``include_empty`` is set (callers
    that record per-partition sizes want the empty keys too).
    """
    group = np.asarray(group).ravel()
    y = np.asarray(y).ravel()
    for group_value in (0, 1):
        group_mask = group == group_value
        for label in (0, 1):
            rows = np.flatnonzero(group_mask & (y == label))
            if include_empty or rows.size:
                yield (group_value, label), rows


def _resolve_keep_count(partition_size: int, density_fraction: float, min_keep: int) -> int:
    """Number of tuples to keep for a partition of ``partition_size`` rows."""
    keep = int(round(density_fraction * partition_size))
    keep = max(keep, min(min_keep, partition_size))
    return min(keep, partition_size)


def density_filter_indices(
    X: np.ndarray,
    *,
    density_fraction: float = 0.2,
    min_keep: int = 10,
    kernel: str = "gaussian",
    bandwidth="scott",
    algorithm: str = "auto",
    dtype: str = "float64",
) -> np.ndarray:
    """Return the indices of the densest rows of ``X`` (Algorithm 3, one partition).

    Parameters
    ----------
    X:
        Numeric attribute matrix of one (group, label) partition.
    density_fraction:
        Fraction of rows to keep (the paper uses ``k = 0.2 * n``).
    min_keep:
        Keep at least this many rows (bounded by the partition size), so tiny
        partitions still yield enough tuples to derive constraints from.
    kernel, bandwidth, algorithm:
        Passed to :class:`repro.density.KernelDensity`; ``algorithm``
        selects the density backend.  ``kd_tree`` and ``grid`` rank
        bit-identically; ``brute`` computes distances through a different
        (equally exact) expansion, so its ranks can differ only between
        rows whose densities are tied to within an ulp.
    dtype:
        ``"float64"`` (default) or ``"float32"``: the opt-in single-precision
        distance-kernel path of :class:`repro.density.KernelDensity`.  The
        filter consumes density *ranks*, whose float32-vs-float64
        equivalence is gated by the test suite; the default keeps the frozen
        float64 reference path.
    """
    if not 0.0 < density_fraction <= 1.0:
        raise ValidationError("density_fraction must be in (0, 1]")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2 or X.shape[0] == 0:
        raise ValidationError("X must be a non-empty 2-D matrix")
    n_rows = X.shape[0]
    keep = _resolve_keep_count(n_rows, density_fraction, min_keep)
    if keep >= n_rows:
        return np.arange(n_rows)

    estimator = KernelDensity(
        bandwidth=bandwidth, kernel=kernel, algorithm=algorithm, dtype=dtype
    ).fit(X)
    log_density = estimator.score_samples(X)
    order = np.argsort(-log_density, kind="mergesort")
    return np.sort(order[:keep])


def density_filter(
    dataset: Dataset,
    *,
    density_fraction: float = 0.2,
    min_keep: int = 10,
    kernel: str = "gaussian",
    bandwidth="scott",
    algorithm: str = "auto",
    dtype: str = "float64",
    n_jobs: Optional[int] = None,
) -> Dataset:
    """Apply Algorithm 3 to a dataset: keep the densest tuples of each partition.

    Each of the four (group, label) partitions is filtered independently and
    the kept rows are concatenated into a new :class:`Dataset` (the input is
    never modified).  ``n_jobs`` filters the partitions on that many worker
    threads (``None``/``1`` serial, ``-1`` one per CPU); the kept rows are
    assembled in deterministic partition order either way, so the result is
    bit-identical to the serial run.
    """
    partitions = list(iter_group_label_partitions(dataset.group, dataset.y))
    if not partitions:
        raise ValidationError("Dataset has no non-empty (group, label) partitions")

    def _filter_one(partition_rows: np.ndarray) -> np.ndarray:
        local = density_filter_indices(
            dataset.numeric_X[partition_rows],
            density_fraction=density_fraction,
            min_keep=min_keep,
            kernel=kernel,
            bandwidth=bandwidth,
            algorithm=algorithm,
            dtype=dtype,
        )
        return partition_rows[local]

    keep_indices = thread_map(_filter_one, [rows for _, rows in partitions], n_jobs=n_jobs)
    all_indices = np.sort(np.concatenate(keep_indices))
    return dataset.subset(all_indices)


def partition_density_ranks(
    dataset: Dataset,
    *,
    kernel: str = "gaussian",
    bandwidth="scott",
    algorithm: str = "auto",
    dtype: str = "float64",
    n_jobs: Optional[int] = None,
) -> Dict[PartitionKey, np.ndarray]:
    """Per-partition density ranks (0 = densest) keyed by ``(group, label)``.

    Exposed for diagnostics and the ablation benchmarks; not needed by the
    main algorithms.  ``n_jobs`` ranks the partitions on that many worker
    threads (``None``/``1`` serial, ``-1`` one per CPU) with results keyed
    in deterministic partition order — bit-identical to the serial run.
    """
    partitions = list(iter_group_label_partitions(dataset.group, dataset.y))

    def _rank_one(rows: np.ndarray) -> np.ndarray:
        if rows.size == 1:
            return np.array([0])
        estimator = KernelDensity(
            bandwidth=bandwidth, kernel=kernel, algorithm=algorithm, dtype=dtype
        ).fit(dataset.numeric_X[rows])
        return estimator.density_rank(dataset.numeric_X[rows])

    all_ranks = thread_map(_rank_one, [rows for _, rows in partitions], n_jobs=n_jobs)
    return {key: ranks for (key, _), ranks in zip(partitions, all_ranks)}
