"""Automatic tuning of the ConFair intervention degree.

The paper searches for the optimal ``alpha_u`` on the validation partition
(with ``alpha_w = alpha_u / 2``), implicitly optimizing Disparate Impact.
:func:`tune_intervention_degree` reproduces that search for any weight-
producing intervention: it trains the learner under each candidate degree's
weights and picks the degree whose validation fairness is best, breaking ties
toward higher balanced accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import ValidationError
from repro.fairness.metrics import disparate_impact_star, equalized_odds_difference
from repro.learners.base import BaseClassifier, clone
from repro.learners.metrics import balanced_accuracy_score
from repro.utils.parallel import thread_map


@dataclass(frozen=True)
class TuningTrial:
    """One candidate intervention degree and its validation outcome."""

    degree: float
    fairness: float
    balanced_accuracy: float


@dataclass(frozen=True)
class InterventionTuningResult:
    """Outcome of the intervention-degree search."""

    best_degree: float
    best_fairness: float
    best_balanced_accuracy: float
    trials: Tuple[TuningTrial, ...] = field(default_factory=tuple)


def _fairness_score(y_true, y_pred, group, fairness_target: str) -> float:
    """Higher-is-better fairness score for the requested target metric."""
    if fairness_target == "di":
        return disparate_impact_star(y_true, y_pred, group)
    if fairness_target in ("fnr", "fpr"):
        return 1.0 - equalized_odds_difference(y_true, y_pred, group, rate=fairness_target)
    raise ValidationError("fairness_target must be 'di', 'fnr', or 'fpr'")


def tune_intervention_degree(
    *,
    weight_fn: Callable[[float], np.ndarray],
    train: Dataset,
    validation: Dataset,
    learner: BaseClassifier,
    candidate_degrees: Sequence[float],
    fairness_target: str = "di",
    utility_floor: float = 0.5,
    n_jobs: Optional[int] = None,
) -> InterventionTuningResult:
    """Search the intervention degree maximizing validation fairness.

    Parameters
    ----------
    weight_fn:
        Maps a candidate degree to per-tuple training weights.
    train, validation:
        The training and validation partitions.
    learner:
        Prototype classifier; cloned and refit for every candidate.
    candidate_degrees:
        The degrees to evaluate (must be non-empty).
    fairness_target:
        ``"di"``, ``"fnr"``, or ``"fpr"`` — which metric the search optimizes.
    utility_floor:
        Candidates whose validation balanced accuracy falls below this floor
        (degenerate, single-class models) are only chosen if *every*
        candidate is degenerate.
    n_jobs:
        Candidate retrains to run concurrently (``None``/1 = serial,
        ``-1`` = all cores).  Each trial clones the prototype learner and
        works on its own copies, so the parallel search returns trials — and
        a winner — bit-identical to the serial loop.

    Returns
    -------
    InterventionTuningResult
        The winning degree plus the full trial history.
    """
    degrees = [float(d) for d in candidate_degrees]
    if not degrees:
        raise ValidationError("candidate_degrees must not be empty")
    if any(d < 0 for d in degrees):
        raise ValidationError("candidate intervention degrees must be non-negative")

    def evaluate(degree: float) -> TuningTrial:
        weights = np.asarray(weight_fn(degree), dtype=np.float64)
        if weights.shape[0] != train.n_samples:
            raise ValidationError(
                "weight_fn returned weights of length "
                f"{weights.shape[0]}, expected {train.n_samples}"
            )
        model = clone(learner)
        model.fit(train.X, train.y, sample_weight=weights)
        predictions = model.predict(validation.X)
        fairness = _fairness_score(validation.y, predictions, validation.group, fairness_target)
        utility = balanced_accuracy_score(validation.y, predictions)
        return TuningTrial(degree=degree, fairness=fairness, balanced_accuracy=utility)

    trials: List[TuningTrial] = thread_map(evaluate, degrees, n_jobs=n_jobs)

    usable = [t for t in trials if t.balanced_accuracy > utility_floor]
    pool = usable if usable else trials
    best = max(pool, key=lambda t: (t.fairness, t.balanced_accuracy))
    return InterventionTuningResult(
        best_degree=best.degree,
        best_fairness=best.fairness,
        best_balanced_accuracy=best.balanced_accuracy,
        trials=tuple(trials),
    )
