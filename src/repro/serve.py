"""``python -m repro.serve`` — command-line entry to the serving subsystem.

Thin re-export of :mod:`repro.serving.cli` (the ``repro-serve`` console
script): both entry points share one ``main`` and one ``build_parser``, so
there is a single argument-parser source of truth and the module stays
importable without installing the package.
"""

from repro.serving.cli import build_parser, main

__all__ = ["build_parser", "main"]

if __name__ == "__main__":
    raise SystemExit(main())
