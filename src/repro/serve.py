"""``python -m repro.serve`` — command-line entry to the serving subsystem.

Thin alias for :mod:`repro.serving.cli` (the ``repro-serve`` console script),
kept importable as a plain module so the ``-m`` form works without installing
the package.
"""

from repro.serving.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
