"""Fig. 7: model-agnosticism — weights calibrated on one learner, used by another.

ConFair and OMN both calibrate their weights against a particular learner.
This experiment crosses the calibration learner with the final learner
(XGB-calibrated weights training an LR model, and vice versa) and shows that
ConFair's fairness gains survive the transfer while OMN's do not.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.aggregate import aggregate_cells
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult
from repro.interventions import intervention_accepts


def run_figure07(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 7 (cross-model weight transfer for ConFair and OMN)."""
    config = config or ExperimentConfig()
    result = FigureResult(
        figure_id="figure07",
        title="Cross-model transfer: weights calibrated on one learner, trained with the other",
    )
    pairings = [
        # (final learner, calibration learner)
        ("lr", "xgb"),
        ("xgb", "lr"),
    ]
    for final_learner, calibration_learner in pairings:
        if final_learner not in config.learners:
            continue
        for dataset in config.datasets:
            baseline = aggregate_cells(
                dataset,
                "none",
                learner=final_learner,
                n_repeats=config.n_repeats,
                base_seed=config.base_seed,
                size_factor=config.size_factor,
            )
            row = baseline.to_row()
            row["calibration"] = final_learner
            result.rows.append(row)
            for method in ("confair", "omn"):
                grids = {
                    grid_param: grid
                    for grid_param, grid in (
                        ("tuning_grid", config.tuning_grid),
                        ("lam_grid", config.lam_grid),
                    )
                    if intervention_accepts(method, grid_param)
                }
                cell = aggregate_cells(
                    dataset,
                    method,
                    learner=final_learner,
                    n_repeats=config.n_repeats,
                    base_seed=config.base_seed,
                    size_factor=config.size_factor,
                    calibration_learner=calibration_learner,
                    **grids,
                )
                row = cell.to_row()
                row["calibration"] = calibration_learner
                result.rows.append(row)
    result.notes.append(
        "Paper shape: ConFair keeps most of its fairness improvement when its weights are "
        "reused by a different learner; OMN becomes unreliable and loses accuracy."
    )
    return result
