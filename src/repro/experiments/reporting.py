"""Text rendering of experiment results (the library's "figures")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def render_table(rows: Sequence[Dict[str, object]], columns: Sequence[str] = ()) -> str:
    """Render a list of dict rows as an aligned, pipe-separated text table."""
    if not rows:
        return "(no rows)"
    headers = list(columns) if columns else list(rows[0].keys())
    table = [[str(row.get(column, "")) for column in headers] for row in rows]
    widths = [
        max(len(header), *(len(line[i]) for line in table)) for i, header in enumerate(headers)
    ]
    lines = [
        " | ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "-+-".join("-" * width for width in widths),
    ]
    for line in table:
        lines.append(" | ".join(value.ljust(width) for value, width in zip(line, widths)))
    return "\n".join(lines)


@dataclass
class FigureResult:
    """The regenerated content of one paper figure or table.

    Attributes
    ----------
    figure_id:
        Paper artifact identifier, e.g. ``"figure05"``.
    title:
        What the artifact shows.
    rows:
        Plain-dict rows (one per bar/point/line of the original figure).
    notes:
        Free-form commentary (e.g. which comparisons the paper highlights).
    """

    figure_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def render(self, columns: Sequence[str] = ()) -> str:
        """Render the figure as a text table preceded by its title."""
        header = f"== {self.figure_id}: {self.title} =="
        body = render_table(self.rows, columns)
        parts = [header, body]
        if self.notes:
            parts.append("notes: " + "; ".join(self.notes))
        return "\n".join(parts)

    def filter_rows(self, **criteria) -> List[Dict[str, object]]:
        """Return the rows matching all ``column=value`` criteria."""
        selected = []
        for row in self.rows:
            if all(row.get(column) == value for column, value in criteria.items()):
                selected.append(row)
        return selected
