"""Scenario-suite report: how fast do the monitors catch simulated drift?

This experiment goes beyond the paper's static evaluation: it fits one
intervention, deploys it behind a monitored
:class:`~repro.serving.PredictionService`, and replays a named
:mod:`repro.simulate` scenario suite against it — one row per scenario with
detection latency, false-alarm rate, windowed fairness degradation, and
throughput.  The stationary control row is the specificity check (a healthy
stack shows ``detected = False`` and zero false alarms there), the drift rows
are the sensitivity check.
"""

from __future__ import annotations

from repro.datasets import load_dataset, split_dataset
from repro.density.kde import KernelDensity
from repro.experiments.reporting import FigureResult
from repro.interventions import FairnessPipeline
from repro.serving.cli import find_profile
from repro.simulate.suites import SuiteRunner


def run_scenario_suite(
    *,
    suite: str = "default",
    dataset: str = "meps",
    intervention: str = "confair",
    learner: str = "lr",
    seed: int = 7,
    size_factor: float = 0.05,
    n_steps: int = 40,
    batch_size: int = 128,
    window_size: int = 2000,
    use_density: bool = True,
) -> FigureResult:
    """Fit, deploy, and replay a scenario suite; one row per scenario."""
    result = FairnessPipeline(
        intervention=intervention,
        learner=learner,
        dataset=dataset,
        size_factor=size_factor,
        seed=seed,
    ).run()
    data = load_dataset(dataset, size_factor=size_factor, random_state=seed)
    split = split_dataset(data, random_state=seed)
    density_estimator = (
        KernelDensity(bandwidth="scott", kernel="gaussian").fit(split.train.numeric_X)
        if use_density
        else None
    )
    runner = SuiteRunner(
        result.model,
        split.train,
        profile=find_profile(result),
        density_estimator=density_estimator,
        calibration=split.validation,
        window_size=window_size,
    )
    rows = []
    for label, outcome in runner.run(
        suite, split.deploy, n_steps=n_steps, batch_size=batch_size, seed=seed
    ):
        rows.append(
            {
                "scenario": label,
                "detected": outcome.detected,
                "detection_latency_steps": outcome.detection_latency_steps,
                "detection_latency_records": outcome.detection_latency_records,
                "false_alarm_rate": round(outcome.false_alarm_rate, 4),
                "di_star_degradation": (
                    round(outcome.di_star_degradation, 4)
                    if outcome.di_star_degradation is not None
                    else None
                ),
                "records_per_second": round(outcome.records_per_second, 1),
                "channels": ",".join(sorted(outcome.channel_first_alarm)) or "-",
            }
        )
    return FigureResult(
        figure_id="scenario_suite",
        title=(
            f"Scenario suite {suite!r}: {intervention} on {dataset} — "
            "monitor detection latency and false alarms under simulated drift"
        ),
        rows=rows,
        notes=[
            "Rows replay seed-deterministic TrafficStream scenarios through a "
            "monitored PredictionService (repro.simulate).",
            "The 'control' row is the specificity check: no detection, no "
            "false alarms on stationary traffic.",
        ],
    )
