"""Fig. 14: run-time comparison of the interventions.

The regenerated table reports, per (dataset, learner, method), the mean
wall-clock seconds of fitting the intervention and training the final model.
Absolute numbers depend on the host and on the surrogate sizes; the paper's
comparative shape is what the benchmark asserts: KAM is the cheapest
intervention, ConFair and OMN pay for model-in-the-loop calibration, and a
user-supplied intervention degree removes most of ConFair's overhead.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.aggregate import aggregate_cells
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult


def run_figure14(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 14 (runtime of every method per dataset and learner)."""
    config = config or ExperimentConfig()
    result = FigureResult(
        figure_id="figure14",
        title="Run-time comparison (seconds, mean over repeats)",
    )
    methods = ("none", "kam", "cap", "diffair", "omn", "confair", "confair_fixed_alpha")
    for learner in config.learners:
        for dataset in config.datasets:
            for method in methods:
                method_name = method
                extra = {}
                if method == "confair_fixed_alpha":
                    # The paper notes ConFair's runtime drops sharply when the
                    # user supplies the intervention degree instead of tuning it.
                    method_name = "confair"
                    extra["alpha_u"] = 1.0
                elif method == "confair":
                    extra["tuning_grid"] = config.tuning_grid
                elif method == "omn":
                    extra["lam_grid"] = config.lam_grid
                cell = aggregate_cells(
                    dataset,
                    method_name,
                    learner=learner,
                    n_repeats=config.n_repeats,
                    base_seed=config.base_seed,
                    size_factor=config.size_factor,
                    **extra,
                )
                row = cell.to_row()
                row["method"] = method
                result.rows.append(row)
    result.notes.append(
        "Paper shape: KAM is fastest; ConFair and OMN pay for weight calibration (several "
        "model retrainings); supplying alpha_u removes most of ConFair's overhead."
    )
    return result
