"""Fig. 9: the intervention-degree sweep of Fig. 8 repeated on LSAC."""

from __future__ import annotations

from repro.experiments.figure08 import run_intervention_sweep
from repro.experiments.reporting import FigureResult


def run_figure09(**kwargs) -> FigureResult:
    """Regenerate Fig. 9 (LSAC intervention sweep)."""
    kwargs.setdefault("dataset", "lsac")
    kwargs.setdefault("figure_id", "figure09")
    return run_intervention_sweep(**kwargs)
