"""Fig. 4: summary statistics of the 7 benchmark datasets.

Two views are produced: the *published* statistics (straight from the
dataset specs, which reproduce the paper's table) and the *measured*
statistics of the generated surrogates, so the calibration of the surrogate
generators can be checked quantitatively.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets import load_dataset
from repro.datasets.registry import REAL_WORLD_NAMES, dataset_summary
from repro.datasets.schema import PAPER_DATASET_SPECS
from repro.experiments.reporting import FigureResult


def run_figure04(
    *,
    measure_surrogates: bool = True,
    size_factor: Optional[float] = 0.05,
    random_state: int = 7,
) -> FigureResult:
    """Return the Fig. 4 dataset-summary table.

    Parameters
    ----------
    measure_surrogates:
        Also generate each surrogate and record its measured minority fraction
        and minority positive-label rate next to the published values.
    size_factor, random_state:
        Surrogate generation parameters (only used when measuring).
    """
    result = FigureResult(
        figure_id="figure04",
        title="Summary statistics of the 7 real-world benchmark datasets",
    )
    published = {row["dataset"]: row for row in dataset_summary()}
    for name in REAL_WORLD_NAMES:
        row = dict(published[name])
        if measure_surrogates:
            data = load_dataset(name, size_factor=size_factor, random_state=random_state)
            spec = PAPER_DATASET_SPECS[name]
            row["surrogate_rows"] = data.n_samples
            row["measured_minority_population"] = f"{data.minority_fraction * 100:.1f}%"
            row["measured_minority_positive_labels"] = (
                f"{data.group_positive_rate(1) * 100:.1f}%"
            )
            row["published_minority_population"] = f"{spec.minority_fraction * 100:.1f}%"
        result.rows.append(row)
    return result
