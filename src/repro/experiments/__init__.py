"""Experiment harness regenerating every table and figure of the paper.

The harness has three layers:

* :mod:`repro.experiments.runner` — fit-and-evaluate one (dataset, method,
  learner, seed) cell and return a :class:`~repro.fairness.FairnessReport`
  plus the wall-clock cost.
* :mod:`repro.experiments.aggregate` — repeat cells over seeds and average.
* one module per paper artifact (``figure02`` … ``figure14``) — compose the
  cells each figure needs and render the same rows/series the paper reports.

Beyond the paper, :mod:`repro.experiments.scenario_suite` replays a
:mod:`repro.simulate` scenario suite against a deployed intervention and
reports per-scenario drift-detection latency, false-alarm rate, fairness
degradation, and serving throughput.

Every figure function returns a :class:`~repro.experiments.reporting.FigureResult`
whose ``rows`` are plain dictionaries (easy to assert on in benchmarks) and
whose ``render()`` produces an aligned text table.
"""

from repro.experiments.aggregate import AggregatedCell, aggregate_cells
from repro.experiments.comparison import run_comparison
from repro.experiments.config import DEFAULT_REAL_WORLD_DATASETS, ExperimentConfig
from repro.experiments.figure02 import run_figure02
from repro.experiments.figure04 import run_figure04
from repro.experiments.figure05 import run_figure05
from repro.experiments.figure06 import run_figure06
from repro.experiments.figure07 import run_figure07
from repro.experiments.figure08 import run_figure08, run_intervention_sweep
from repro.experiments.figure09 import run_figure09
from repro.experiments.figure11 import run_figure11
from repro.experiments.figure12 import run_figure12
from repro.experiments.figure13 import run_figure13
from repro.experiments.figure14 import run_figure14
from repro.experiments.reporting import FigureResult, render_table
from repro.experiments.runner import METHOD_NAMES, evaluate_cell, run_method
from repro.experiments.scenario_suite import run_scenario_suite

__all__ = [
    "AggregatedCell",
    "DEFAULT_REAL_WORLD_DATASETS",
    "ExperimentConfig",
    "FigureResult",
    "METHOD_NAMES",
    "aggregate_cells",
    "evaluate_cell",
    "render_table",
    "run_comparison",
    "run_figure02",
    "run_figure04",
    "run_figure05",
    "run_figure06",
    "run_figure07",
    "run_figure08",
    "run_figure09",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_intervention_sweep",
    "run_method",
    "run_scenario_suite",
]
