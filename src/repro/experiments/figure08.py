"""Fig. 8 (MEPS) and Fig. 9 (LSAC): behaviour under varying intervention degree.

For each fairness target (Disparate Impact via selection rate, Equalized Odds
via FNR, Equalized Odds via FPR) the experiment sweeps the intervention
degree — ``alpha_u`` for ConFair (with ``alpha_w = 0``, as in the paper's
sweep) and λ for OMN — and records the *per-group* metric values together
with balanced accuracy.  Perfect fairness is reached when the minority and
majority series meet; the paper's headline observation is that ConFair closes
the gap monotonically while OMN's behaviour is erratic.

The sweeps run through
:meth:`repro.interventions.FairnessPipeline.sweep_degrees`, which fits each
intervention once per target (profiling, constraint discovery) and re-derives
the training weights per degree.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.datasets import load_dataset, split_dataset
from repro.experiments.reporting import FigureResult
from repro.fairness.metrics import group_rates
from repro.interventions import FairnessPipeline
from repro.learners import balanced_accuracy_score

_TARGET_METRIC = {"di": "selection_rate", "fnr": "fnr", "fpr": "fpr"}

_SWEEP_PARAMS = {
    # ConFair sweeps alpha_u with alpha_w pinned to 0, as in the paper.
    "confair": {"alpha_u": 0.0, "alpha_w": 0.0},
    # OMN's degree is λ; each point re-enters the model-in-the-loop calibration.
    "omn": {"lam": 0.0},
}


def _group_metric_values(y_true, y_pred, group, target: str) -> Dict[str, float]:
    """Per-group value of the metric the sweep targets, plus balanced accuracy."""
    rates = group_rates(y_true, y_pred, group)
    attribute = _TARGET_METRIC[target]
    return {
        "minority_value": float(getattr(rates["minority"], attribute)),
        "majority_value": float(getattr(rates["majority"], attribute)),
        "balanced_accuracy": float(balanced_accuracy_score(y_true, y_pred)),
    }


def run_intervention_sweep(
    dataset: str = "meps",
    *,
    learner: str = "lr",
    degrees: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0),
    targets: Sequence[str] = ("di", "fnr", "fpr"),
    size_factor: Optional[float] = 0.05,
    random_state: int = 7,
    figure_id: str = "figure08",
) -> FigureResult:
    """Sweep the intervention degree for ConFair and OMN on one dataset.

    Parameters
    ----------
    dataset:
        Benchmark name (``"meps"`` reproduces Fig. 8, ``"lsac"`` Fig. 9).
    learner:
        Final learner (the paper uses LR for these plots).
    degrees:
        Intervention degrees to evaluate (degree 0 is the no-intervention
        reference point at the start of each series).
    targets:
        Fairness targets to sweep (subset of ``("di", "fnr", "fpr")``).
    size_factor, random_state:
        Dataset generation and split parameters.
    figure_id:
        Identifier recorded on the result (``figure08`` / ``figure09``).
    """
    data = load_dataset(dataset, size_factor=size_factor, random_state=random_state)
    split = split_dataset(data, random_state=random_state)
    result = FigureResult(
        figure_id=figure_id,
        title=f"Intervention-degree sweep on {dataset.upper()} ({learner.upper()} models)",
    )

    for target in targets:
        for method, degree_params in _SWEEP_PARAMS.items():
            pipeline = FairnessPipeline(
                intervention=method,
                learner=learner,
                dataset=split,
                seed=random_state,
                intervention_params={**degree_params, "fairness_target": target},
            )
            for point in pipeline.sweep_degrees(degrees):
                row = {"method": method, "target": target, "degree": point.degree}
                row.update(
                    _group_metric_values(
                        split.deploy.y, point.predictions, split.deploy.group, target
                    )
                )
                result.rows.append(row)

    result.notes.append(
        "Paper shape: as the ConFair degree grows, the minority/majority series converge "
        "monotonically; OMN's series move erratically and often leave the gap open."
    )
    return result


def run_figure08(**kwargs) -> FigureResult:
    """Regenerate Fig. 8 (MEPS intervention sweep)."""
    kwargs.setdefault("dataset", "meps")
    kwargs.setdefault("figure_id", "figure08")
    return run_intervention_sweep(**kwargs)
