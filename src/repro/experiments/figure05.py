"""Fig. 5: ConFair vs KAM across the 7 datasets and both learners.

The original figure is six bar charts (DI*, AOD*, BalAcc × LR, XGB); each bar
is one (dataset, method) pair.  The regenerated rows carry the same three
metrics per (dataset, method, learner), with the no-intervention baseline
included as the reference bars.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.comparison import run_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult


def run_figure05(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 5 (ConFair vs KAM vs no intervention)."""
    result = run_comparison(
        "figure05",
        "ConFair vs KAM: fairness (DI*, AOD*) and utility (BalAcc)",
        methods=("none", "confair", "kam"),
        config=config,
    )
    result.notes.append(
        "Paper shape: both interventions improve DI*/AOD* over 'none' without a notable "
        "BalAcc drop; ConFair's edge over KAM is largest for the XGB learner."
    )
    return result
