"""Shared driver for the method-comparison figures (Figs. 5, 6, 11, 12, 13, 14).

Each of those figures is a grid of (dataset × learner × method) cells showing
DI*, AOD*, and BalAcc (or runtime); :func:`run_comparison` evaluates the grid
and packages it as a :class:`~repro.experiments.reporting.FigureResult`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.aggregate import aggregate_cells
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult
from repro.interventions import intervention_accepts


def run_comparison(
    figure_id: str,
    title: str,
    methods: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    *,
    method_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
) -> FigureResult:
    """Evaluate ``methods`` over the configured datasets and learners.

    Parameters
    ----------
    figure_id, title:
        Identification of the paper artifact being regenerated.
    methods:
        Method names in the order they should appear per dataset.
    config:
        Experiment configuration (datasets, learners, repeats, sizes).
    method_kwargs:
        Optional per-method keyword overrides forwarded to the intervention
        registry (e.g. a fixed ``alpha_u`` or a ``calibration_learner``);
        options an intervention does not accept raise
        :class:`~repro.exceptions.ExperimentError`.
    """
    config = config or ExperimentConfig()
    method_kwargs = method_kwargs or {}
    result = FigureResult(figure_id=figure_id, title=title)
    for learner in config.learners:
        for dataset in config.datasets:
            for method in methods:
                extra = dict(method_kwargs.get(method, {}))
                # Seed the configured search grids only where the registry
                # says the intervention has such a search; explicit (user)
                # kwargs still flow through and are validated downstream.
                for grid_param, grid in (
                    ("tuning_grid", config.tuning_grid),
                    ("lam_grid", config.lam_grid),
                ):
                    if intervention_accepts(method, grid_param):
                        extra.setdefault(grid_param, grid)
                cell = aggregate_cells(
                    dataset,
                    method,
                    learner=learner,
                    n_repeats=config.n_repeats,
                    base_seed=config.base_seed,
                    size_factor=config.size_factor,
                    **extra,
                )
                result.rows.append(cell.to_row())
    return result
