"""Shared driver for the method-comparison figures (Figs. 5, 6, 11, 12, 13, 14).

Each of those figures is a grid of (dataset × learner × method) cells showing
DI*, AOD*, and BalAcc (or runtime); :func:`run_comparison` evaluates the grid
and packages it as a :class:`~repro.experiments.reporting.FigureResult`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.aggregate import aggregate_cells
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult


def run_comparison(
    figure_id: str,
    title: str,
    methods: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    *,
    method_kwargs: Optional[Dict[str, Dict[str, object]]] = None,
) -> FigureResult:
    """Evaluate ``methods`` over the configured datasets and learners.

    Parameters
    ----------
    figure_id, title:
        Identification of the paper artifact being regenerated.
    methods:
        Method names in the order they should appear per dataset.
    config:
        Experiment configuration (datasets, learners, repeats, sizes).
    method_kwargs:
        Optional per-method keyword overrides passed to
        :func:`repro.experiments.runner.run_method` (e.g. a fixed ``alpha_u``
        or a ``calibration_learner``).
    """
    config = config or ExperimentConfig()
    method_kwargs = method_kwargs or {}
    result = FigureResult(figure_id=figure_id, title=title)
    for learner in config.learners:
        for dataset in config.datasets:
            for method in methods:
                extra = dict(method_kwargs.get(method, {}))
                extra.setdefault("tuning_grid", config.tuning_grid)
                extra.setdefault("lam_grid", config.lam_grid)
                if method in ("none", "multimodel", "kam", "cap", "diffair", "diffair0"):
                    # These methods take no tuning grids; drop them.
                    extra.pop("tuning_grid", None)
                    extra.pop("lam_grid", None)
                cell = aggregate_cells(
                    dataset,
                    method,
                    learner=learner,
                    n_repeats=config.n_repeats,
                    base_seed=config.base_seed,
                    size_factor=config.size_factor,
                    **extra,
                )
                result.rows.append(cell.to_row())
    return result
