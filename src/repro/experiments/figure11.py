"""Fig. 10/11: synthetic drift study — DiffFair vs ConFair vs MultiModel.

The synthetic datasets (``syn1`` … ``syn5``) place both groups in the same
region of the feature space but rotate the minority's class boundary, so a
single model cannot conform to both groups.  The paper's finding: in this
regime the model-splitting strategies (DiffFair, and the naive MultiModel)
achieve much stronger fairness than the single-model ConFair, at some cost in
accuracy.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.comparison import run_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult

SYNTHETIC_DATASETS = ("syn1", "syn2", "syn3", "syn4", "syn5")


def run_figure11(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 11 (synthetic drift, LR models)."""
    if config is None:
        config = ExperimentConfig(datasets=SYNTHETIC_DATASETS, learners=("lr",))
    result = run_comparison(
        "figure11",
        "Synthetic drift: DiffFair vs ConFair vs MultiModel (LR models)",
        methods=("none", "multimodel", "diffair", "confair"),
        config=config,
    )
    result.notes.append(
        "Paper shape: under significant cross-group drift DiffFair produces the strongest "
        "fairness outcomes; ConFair improves over 'none' but cannot fully close the gap."
    )
    return result
