"""Fig. 6: ConFair vs OMN and CAP across the 7 datasets and both learners.

Rows mirror Fig. 5's structure with the OMN and CAP baselines; the
``degenerate`` column records the fraction of repeats whose model collapsed
to a single predicted class (the paper's crisscross bars).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.comparison import run_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult


def run_figure06(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 6 (ConFair vs OMN vs CAP vs no intervention)."""
    result = run_comparison(
        "figure06",
        "ConFair vs OMN and CAP: fairness (DI*, AOD*) and utility (BalAcc)",
        methods=("none", "confair", "omn", "cap"),
        config=config,
    )
    result.notes.append(
        "Paper shape: ConFair improves DI* more reliably than OMN (whose gains often come "
        "with degenerate single-class models) and matches or beats the invasive CAP."
    )
    return result
