"""Repeat evaluation cells over seeds and aggregate the metrics.

The repeats are delegated to
:meth:`repro.interventions.FairnessPipeline.run_repeated`, which derives the
per-repeat seeds deterministically from ``base_seed`` and can execute the
repeated splits in parallel worker threads (``n_jobs``) without changing the
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.interventions import FairnessPipeline, PipelineResult


@dataclass(frozen=True)
class AggregatedCell:
    """Mean/std metrics of one (dataset, method, learner) cell over repeats."""

    dataset: str
    method: str
    learner: str
    n_repeats: int
    di_star_mean: float
    di_star_std: float
    aod_star_mean: float
    aod_star_std: float
    balanced_accuracy_mean: float
    balanced_accuracy_std: float
    runtime_mean: float
    degenerate_fraction: float
    favors_minority_fraction: float

    def to_row(self) -> Dict[str, object]:
        """Row representation used by the figure tables."""
        return {
            "dataset": self.dataset,
            "method": self.method,
            "learner": self.learner,
            "DI*": round(self.di_star_mean, 3),
            "AOD*": round(self.aod_star_mean, 3),
            "BalAcc": round(self.balanced_accuracy_mean, 3),
            "runtime_s": round(self.runtime_mean, 3),
            "degenerate": round(self.degenerate_fraction, 2),
            "favors_minority": round(self.favors_minority_fraction, 2),
        }


def aggregate_cells(
    dataset: str,
    method: str,
    *,
    learner: str = "lr",
    n_repeats: int = 3,
    base_seed: int = 7,
    size_factor: Optional[float] = 0.05,
    n_jobs: Optional[int] = None,
    **method_kwargs,
) -> AggregatedCell:
    """Evaluate one cell over ``n_repeats`` random splits and average.

    The per-repeat seeds are derived deterministically from ``base_seed`` so
    repeated invocations are reproducible; ``n_jobs`` > 1 runs the repeats in
    parallel threads with identical results.
    """
    calibration_learner = method_kwargs.pop("calibration_learner", None)
    pipeline = FairnessPipeline(
        intervention=method,
        learner=learner,
        dataset=dataset,
        calibration_learner=calibration_learner,
        size_factor=size_factor,
        intervention_params=method_kwargs,
    )
    results: List[PipelineResult] = pipeline.run_repeated(
        n_repeats, base_seed=base_seed, n_jobs=n_jobs
    )
    di = np.array([r.report.di_star for r in results])
    aod = np.array([r.report.aod_star for r in results])
    bal = np.array([r.report.balanced_accuracy for r in results])
    runtime = np.array([r.runtime_seconds for r in results])
    degenerate = np.array([r.report.degenerate for r in results], dtype=float)
    favors = np.array([r.report.favors_minority for r in results], dtype=float)
    return AggregatedCell(
        dataset=dataset,
        method=method,
        learner=learner,
        n_repeats=n_repeats,
        di_star_mean=float(di.mean()),
        di_star_std=float(di.std()),
        aod_star_mean=float(aod.mean()),
        aod_star_std=float(aod.std()),
        balanced_accuracy_mean=float(bal.mean()),
        balanced_accuracy_std=float(bal.std()),
        runtime_mean=float(runtime.mean()),
        degenerate_fraction=float(degenerate.mean()),
        favors_minority_fraction=float(favors.mean()),
    )
