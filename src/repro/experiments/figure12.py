"""Fig. 12: DiffFair vs ConFair on the real-world benchmarks.

The paper's finding: on real data (where the cross-group drift is milder than
in the synthetic study) DiffFair is comparable to ConFair on most datasets,
with ConFair the better choice overall.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.comparison import run_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult


def run_figure12(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 12 (DiffFair vs ConFair vs MultiModel on real data)."""
    result = run_comparison(
        "figure12",
        "DiffFair vs ConFair on real-world datasets",
        methods=("none", "multimodel", "diffair", "confair"),
        config=config,
    )
    result.notes.append(
        "Paper shape: DiffFair is comparable to ConFair on most real datasets; ConFair wins "
        "where group representation is poor."
    )
    return result
