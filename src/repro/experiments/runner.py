"""Fit-and-evaluate a single (dataset, method, learner, seed) cell.

Every figure of the paper is a composition of such cells.  Since the
intervention-protocol redesign, the runner is a thin compatibility shim over
:class:`repro.interventions.FairnessPipeline`: methods are resolved through
the intervention registry (so there is no per-method dispatch here), their
keyword arguments are validated against each intervention's constructor
(unknown or inapplicable options raise
:class:`~repro.exceptions.ExperimentError` instead of being silently
dropped), and the uniform ``make_model`` protocol hides the differences
between the reweighing, model-splitting, and data-repair families.

New code should prefer the pipeline facade directly::

    from repro import FairnessPipeline

    result = FairnessPipeline(intervention="confair", learner="lr", dataset="meps").run()

``run_method`` and ``evaluate_cell`` are kept for compatibility with the
pre-redesign API and with the published experiment scripts; both now emit a
:class:`DeprecationWarning` (their results stay bit-identical to the
pipeline's).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import DatasetSplit
from repro.fairness import FairnessReport
from repro.interventions import FairnessPipeline, available_interventions

METHOD_NAMES: Tuple[str, ...] = tuple(available_interventions())
"""Method identifiers accepted by :func:`run_method`, in the paper's order.

``diffair0`` and ``confair0`` are the Fig. 13 ablation variants that skip the
density-based CC optimization (Algorithm 3).  The tuple mirrors the
intervention registry; see
:func:`repro.interventions.available_interventions`.
"""


@dataclass(frozen=True)
class CellResult:
    """Outcome of one (dataset, method, learner, seed) evaluation."""

    dataset: str
    method: str
    learner: str
    seed: int
    report: FairnessReport
    runtime_seconds: float
    details: Dict[str, object]


def run_method(
    method: str,
    split: DatasetSplit,
    *,
    learner: str = "lr",
    seed: int = 0,
    tuning_grid: Optional[Sequence[float]] = None,
    lam_grid: Optional[Sequence[float]] = None,
    alpha_u: Optional[float] = None,
    lam: Optional[float] = None,
    calibration_learner: Optional[str] = None,
    fairness_target: Optional[str] = None,
) -> Tuple[np.ndarray, Dict[str, object]]:
    """Fit ``method`` on the split and return deploy-set predictions.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    split:
        The train/validation/deploy partitions.
    learner:
        Learner used for the *final* model.
    seed:
        Random seed for the learners.
    tuning_grid, lam_grid:
        Grids for the automatic intervention-degree searches; ``None`` keeps
        the intervention's default grid.  Passing a grid to a method that has
        no such search raises :class:`~repro.exceptions.ExperimentError`.
    alpha_u, lam:
        Explicit intervention degrees (skip the automatic search).
    calibration_learner:
        Learner used to calibrate reweighing interventions (defaults to
        ``learner``); setting it differently reproduces the Fig. 7 transfer
        experiment.  Rejected for interventions without calibration.
    fairness_target:
        ``"di"``, ``"fnr"``, or ``"fpr"`` for the reweighing interventions
        (``None`` keeps the intervention default, ``"di"``).

    Returns
    -------
    (y_pred, details):
        Deploy-set predictions and method-specific details (chosen degrees,
        routing fractions, ...).
    """
    warnings.warn(
        "run_method is deprecated; use "
        "FairnessPipeline(intervention=..., dataset=split).run() instead "
        "(the results are bit-identical)",
        DeprecationWarning,
        stacklevel=2,
    )
    overrides = {
        name: value
        for name, value in (
            ("tuning_grid", tuple(tuning_grid) if tuning_grid is not None else None),
            ("lam_grid", tuple(lam_grid) if lam_grid is not None else None),
            ("alpha_u", alpha_u),
            ("lam", lam),
            ("fairness_target", fairness_target),
        )
        if value is not None
    }
    pipeline = FairnessPipeline(
        intervention=method,
        learner=learner,
        dataset=split,
        calibration_learner=calibration_learner,
        seed=seed,
        intervention_params=overrides,
    )
    result = pipeline.run()
    return result.predictions, result.details


def evaluate_cell(
    dataset: str,
    method: str,
    *,
    learner: str = "lr",
    seed: int = 0,
    size_factor: Optional[float] = 0.05,
    **method_kwargs,
) -> CellResult:
    """Load a dataset, split it, run one method, and evaluate the deploy set.

    Deprecated; prefer ``FairnessPipeline(...).run()`` (bit-identical).
    """
    warnings.warn(
        "evaluate_cell is deprecated; use "
        "FairnessPipeline(intervention=..., dataset=...).run() instead "
        "(the results are bit-identical)",
        DeprecationWarning,
        stacklevel=2,
    )
    calibration_learner = method_kwargs.pop("calibration_learner", None)
    pipeline = FairnessPipeline(
        intervention=method,
        learner=learner,
        dataset=dataset,
        calibration_learner=calibration_learner,
        size_factor=size_factor,
        seed=seed,
        intervention_params=method_kwargs,
    )
    result = pipeline.run()
    return CellResult(
        dataset=result.dataset,
        method=result.method,
        learner=result.learner,
        seed=result.seed,
        report=result.report,
        runtime_seconds=result.runtime_seconds,
        details=result.details,
    )
