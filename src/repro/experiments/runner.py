"""Fit-and-evaluate a single (dataset, method, learner, seed) cell.

Every figure of the paper is a composition of such cells.  The runner hides
the differences between the method families:

* reweighing methods (ConFair, KAM, OMN) produce per-tuple weights and train
  the requested learner on the weighted training data;
* model-splitting methods (DiffFair, MultiModel) train group-dependent models
  and route deployment tuples;
* CAP retrains the learner on its repaired dataset;
* "none" trains the learner on the raw data.

The cross-model experiment of Fig. 7 is supported through
``calibration_learner``: the intervention's internal tuning uses one learner
while the final model is trained with another.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.baselines import (
    CapuchinRepair,
    KamiranReweighing,
    MultiModel,
    NoIntervention,
    OmniFairReweighing,
)
from repro.core import ConFair, DiffFair
from repro.datasets import DatasetSplit, load_dataset, split_dataset
from repro.exceptions import ExperimentError
from repro.fairness import FairnessReport, evaluate_predictions
from repro.learners import make_learner

METHOD_NAMES: Tuple[str, ...] = (
    "none",
    "multimodel",
    "diffair",
    "diffair0",
    "confair",
    "confair0",
    "kam",
    "omn",
    "cap",
)
"""Method identifiers accepted by :func:`run_method`.

``diffair0`` and ``confair0`` are the Fig. 13 ablation variants that skip the
density-based CC optimization (Algorithm 3).
"""


@dataclass(frozen=True)
class CellResult:
    """Outcome of one (dataset, method, learner, seed) evaluation."""

    dataset: str
    method: str
    learner: str
    seed: int
    report: FairnessReport
    runtime_seconds: float
    details: Dict[str, object]


def _predict_with_weights(split: DatasetSplit, weights: np.ndarray, learner: str, seed: int) -> np.ndarray:
    """Train ``learner`` on the weighted training data and predict the deploy set."""
    model = make_learner(learner, random_state=seed)
    model.fit(split.train.X, split.train.y, sample_weight=weights)
    return model.predict(split.deploy.X)


def run_method(
    method: str,
    split: DatasetSplit,
    *,
    learner: str = "lr",
    seed: int = 0,
    tuning_grid: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 3.0),
    lam_grid: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5),
    alpha_u: Optional[float] = None,
    lam: Optional[float] = None,
    calibration_learner: Optional[str] = None,
    fairness_target: str = "di",
) -> Tuple[np.ndarray, Dict[str, object]]:
    """Fit ``method`` on the split and return deploy-set predictions.

    Parameters
    ----------
    method:
        One of :data:`METHOD_NAMES`.
    split:
        The train/validation/deploy partitions.
    learner:
        Learner used for the *final* model.
    seed:
        Random seed for the learners.
    tuning_grid, lam_grid:
        Grids for the automatic intervention-degree searches.
    alpha_u, lam:
        Explicit intervention degrees (skip the automatic search).
    calibration_learner:
        Learner used to calibrate reweighing interventions (defaults to
        ``learner``); setting it differently reproduces the Fig. 7 transfer
        experiment.
    fairness_target:
        ``"di"``, ``"fnr"``, or ``"fpr"`` for the reweighing interventions.

    Returns
    -------
    (y_pred, details):
        Deploy-set predictions and method-specific details (chosen degrees,
        routing fractions, ...).
    """
    key = method.strip().lower()
    calibration = calibration_learner or learner
    details: Dict[str, object] = {}

    if key == "none":
        model = NoIntervention(learner=learner, random_state=seed).fit(split.train)
        return model.predict(split.deploy.X), details

    if key == "multimodel":
        model = MultiModel(learner=learner, random_state=seed).fit(split.train)
        return model.predict(split.deploy.X, split.deploy.group), details

    if key in ("diffair", "diffair0"):
        diffair = DiffFair(
            learner=learner,
            use_density_filter=(key == "diffair"),
            random_state=seed,
        ).fit(split.train, validation=split.validation)
        predictions = diffair.predict(split.deploy.X)
        routes = diffair.route(split.deploy.X)
        details["minority_model_fraction"] = float(np.mean(routes == 1))
        return predictions, details

    if key in ("confair", "confair0"):
        confair = ConFair(
            alpha_u=alpha_u,
            fairness_target=fairness_target,
            use_density_filter=(key == "confair"),
            learner=calibration,
            tuning_grid=tuning_grid,
            random_state=seed,
        ).fit(split.train, validation=split.validation)
        details["alpha_u"] = confair.alpha_u_
        details["alpha_w"] = confair.alpha_w_
        return _predict_with_weights(split, confair.weights_, learner, seed), details

    if key == "kam":
        kam = KamiranReweighing(learner=learner, random_state=seed).fit(split.train)
        return _predict_with_weights(split, kam.weights_, learner, seed), details

    if key == "omn":
        omn = OmniFairReweighing(
            lam=lam,
            learner=calibration,
            lam_grid=lam_grid,
            fairness_target=fairness_target,
            random_state=seed,
        ).fit(split.train, validation=split.validation)
        details["lambda"] = omn.lam_
        return _predict_with_weights(split, omn.weights_, learner, seed), details

    if key == "cap":
        cap = CapuchinRepair(learner=learner, random_state=seed).fit(split.train)
        model = cap.fit_learner(make_learner(learner, random_state=seed))
        return model.predict(split.deploy.X), details

    raise ExperimentError(f"Unknown method {method!r}; available methods: {METHOD_NAMES}")


def evaluate_cell(
    dataset: str,
    method: str,
    *,
    learner: str = "lr",
    seed: int = 0,
    size_factor: Optional[float] = 0.05,
    **method_kwargs,
) -> CellResult:
    """Load a dataset, split it, run one method, and evaluate the deploy set."""
    data = load_dataset(dataset, size_factor=size_factor, random_state=seed)
    split = split_dataset(data, random_state=seed)
    start = time.perf_counter()
    predictions, details = run_method(method, split, learner=learner, seed=seed, **method_kwargs)
    elapsed = time.perf_counter() - start
    report = evaluate_predictions(split.deploy.y, predictions, split.deploy.group)
    return CellResult(
        dataset=dataset,
        method=method,
        learner=learner,
        seed=seed,
        report=report,
        runtime_seconds=elapsed,
        details=details,
    )
