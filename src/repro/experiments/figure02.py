"""Fig. 2: qualitative comparison of ConFair with prior reweighing methods.

The original figure is a static capability matrix; reproducing it amounts to
recording, for each method, whether it is non-invasive with respect to the
data and the model, whether it supports a flexible (user-tunable)
intervention, and whether it allows intra-group weight variability.  The
entries for the methods implemented in this library (CAP, KAM, OMN, ConFair)
are also *checked against the implementations* by the accompanying benchmark.
"""

from __future__ import annotations

from repro.experiments.reporting import FigureResult

_CAPABILITIES = [
    # method, non-invasive wrt data, non-invasive wrt model, flexible, intra-group variability
    ("DRO", True, False, False, True),
    ("LAH", True, False, False, True),
    ("CAP", False, True, False, False),
    ("KAM", True, True, False, False),
    ("OMN", True, True, True, False),
    ("CONFAIR", True, True, True, True),
]


def run_figure02() -> FigureResult:
    """Return the Fig. 2 capability matrix."""
    result = FigureResult(
        figure_id="figure02",
        title="Comparison of reweighing interventions (capability matrix)",
        notes=[
            "DRO (Hashimoto et al. 2018) and LAH (Lahoti et al. 2020) adjust weights during "
            "training and are listed for completeness; they are not implemented as baselines "
            "because the paper's quantitative evaluation does not include them."
        ],
    )
    for method, data_ni, model_ni, flexible, variability in _CAPABILITIES:
        result.rows.append(
            {
                "method": method,
                "non_invasive_wrt_data": data_ni,
                "non_invasive_wrt_model": model_ni,
                "flexible_intervention": flexible,
                "intra_group_variability": variability,
            }
        )
    return result
