"""Fig. 13: ablation of the density-based CC optimization (Algorithm 3).

``diffair0`` / ``confair0`` are the paper's variants that derive conformance
constraints from the *raw* (unfiltered) partitions.  The paper's finding: the
optimization is essential — especially for DiffFair, whose routing collapses
when the constraints are permissive.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.comparison import run_comparison
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import FigureResult


def run_figure13(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 13 (with/without the density-based CC optimization)."""
    result = run_comparison(
        "figure13",
        "Density-based CC optimization ablation (DiffFair/ConFair vs their *0 variants)",
        methods=("diffair", "diffair0", "confair", "confair0"),
        config=config,
    )
    result.notes.append(
        "Paper shape: the optimized variants achieve higher DI* than the *0 variants; the "
        "gap is largest for DiffFair."
    )
    return result
