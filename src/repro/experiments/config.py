"""Experiment configuration shared by the per-figure runners."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.exceptions import ExperimentError

DEFAULT_REAL_WORLD_DATASETS: Tuple[str, ...] = (
    "meps",
    "lsac",
    "credit",
    "acsp",
    "acsh",
    "acse",
    "acsi",
)
"""The 7 real-world benchmarks in the order the paper's figures list them."""


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Parameters
    ----------
    datasets:
        Dataset names to evaluate (see :func:`repro.datasets.available_datasets`).
    learners:
        Learner names (``"lr"``, ``"xgb"``).
    n_repeats:
        Number of repeated random splits averaged per cell (the paper uses
        20; benchmarks default to a smaller value to stay laptop-fast).
    size_factor:
        Fraction of each benchmark's published size to generate (``None``
        uses the per-dataset laptop-scale default).
    base_seed:
        Seed from which all per-repeat seeds are derived.
    tuning_grid:
        Candidate ``alpha_u`` values for ConFair's automatic search.
    lam_grid:
        Candidate λ values for OMN's automatic search.
    """

    datasets: Tuple[str, ...] = DEFAULT_REAL_WORLD_DATASETS
    learners: Tuple[str, ...] = ("lr", "xgb")
    n_repeats: int = 3
    size_factor: Optional[float] = 0.05
    base_seed: int = 7
    tuning_grid: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0, 3.0)
    lam_grid: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5)

    def __post_init__(self) -> None:
        if not self.datasets:
            raise ExperimentError("ExperimentConfig needs at least one dataset")
        if not self.learners:
            raise ExperimentError("ExperimentConfig needs at least one learner")
        if self.n_repeats < 1:
            raise ExperimentError("n_repeats must be at least 1")
        if self.size_factor is not None and not 0.0 < self.size_factor <= 1.0:
            raise ExperimentError("size_factor must be in (0, 1]")

    def quick(self) -> "ExperimentConfig":
        """A single-repeat, small-size copy (used by smoke tests)."""
        return ExperimentConfig(
            datasets=self.datasets,
            learners=self.learners,
            n_repeats=1,
            size_factor=min(self.size_factor or 0.05, 0.03),
            base_seed=self.base_seed,
            tuning_grid=(0.0, 1.0, 2.0),
            lam_grid=(0.0, 0.5, 1.0),
        )
