"""Exception hierarchy for the ``repro`` package.

All library-specific errors derive from :class:`ReproError`, so callers can
catch a single base class when they only care about "something in the library
failed" as opposed to a programming error such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class NotFittedError(ReproError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied input fails validation.

    Inherits from :class:`ValueError` so that generic callers that expect
    ``ValueError`` for bad input keep working.
    """


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to converge and the caller
    requested strict behaviour (``on_no_convergence="raise"``)."""


class DatasetError(ReproError):
    """Raised for problems constructing, loading, or registering datasets."""


class ConstraintError(ReproError):
    """Raised for invalid conformance-constraint construction or use."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration cannot be executed."""


class ArtifactError(ReproError):
    """Raised when a serving artifact cannot be saved or loaded.

    Covers schema-version mismatches, manifests referencing estimator
    classes this build does not provide, corrupted or missing payloads, and
    attempts to serialize objects that carry no persistable state.
    """


class SimulationError(ReproError):
    """Raised for invalid traffic-simulation setups.

    Covers unknown scenario names, scenario parameters the scenario does not
    accept, malformed schedules/compositions, and replays driven without the
    monitor the scoring needs.
    """


class FleetError(ReproError):
    """Raised for sharded-serving failures in :mod:`repro.fleet`.

    Covers worker processes that die or fail to start, requests dispatched
    to a closed fleet, and invalid fleet configuration (no workers, unknown
    dispatch policy).  Monitor-merge mismatches raise
    :class:`ValidationError` from the monitor itself.
    """


class TelemetryError(ReproError):
    """Raised for invalid telemetry use in :mod:`repro.telemetry`.

    Covers metric-name collisions across metric kinds, histogram merges
    whose bucket layouts or resolutions disagree, and malformed telemetry
    state dictionaries.
    """
