"""Group-fairness metrics.

All metrics operate on ``(y_true, y_pred, group)`` triples where ``group`` is
0 for the majority ``W`` and 1 for the minority ``U``.  Two reporting
conventions from the paper are provided:

* :func:`disparate_impact` returns the raw ratio ``SR_U / SR_W``;
  :func:`disparate_impact_star` folds it to ``min(DI, 1/DI)`` so that higher
  is always better (1 = parity).
* :func:`average_odds_difference` returns the signed mean of the FPR and TPR
  gaps; :func:`average_odds_star` reports ``1 - |AOD|`` (higher is better).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.learners.metrics import (
    false_negative_rate,
    false_positive_rate,
    selection_rate,
    true_positive_rate,
)
from repro.utils.validation import check_consistent_length


@dataclass(frozen=True)
class GroupRates:
    """Per-group prediction rates for one evaluation.

    ``has_positives`` / ``has_negatives`` record whether the group contains
    any positive / negative ground-truth labels; TPR/FNR (resp. FPR) are
    undefined when it does not, and the between-group gap metrics treat an
    undefined rate as contributing no gap.
    """

    selection_rate: float
    tpr: float
    fpr: float
    fnr: float
    n_samples: int
    has_positives: bool = True
    has_negatives: bool = True


def _split_by_group(y_true, y_pred, group) -> Tuple[np.ndarray, ...]:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    group = np.asarray(group).ravel()
    check_consistent_length(y_true, y_pred, group, names=("y_true", "y_pred", "group"))
    if y_true.size == 0:
        raise ValidationError("Fairness metrics need at least one sample")
    majority = group == 0
    minority = group == 1
    if not majority.any() or not minority.any():
        raise ValidationError("Both the majority (0) and the minority (1) group must be present")
    return y_true, y_pred, majority, minority


def group_rates(y_true, y_pred, group) -> Dict[str, GroupRates]:
    """Return per-group selection rate, TPR, FPR, and FNR.

    Keys are ``"majority"`` and ``"minority"``.
    """
    y_true, y_pred, majority, minority = _split_by_group(y_true, y_pred, group)
    result: Dict[str, GroupRates] = {}
    for key, mask in (("majority", majority), ("minority", minority)):
        true_block, pred_block = y_true[mask], y_pred[mask]
        result[key] = GroupRates(
            selection_rate=selection_rate(pred_block),
            tpr=true_positive_rate(true_block, pred_block),
            fpr=false_positive_rate(true_block, pred_block),
            fnr=false_negative_rate(true_block, pred_block),
            n_samples=int(mask.sum()),
            has_positives=bool(np.any(true_block == 1)),
            has_negatives=bool(np.any(true_block == 0)),
        )
    return result


def disparate_impact(y_true, y_pred, group) -> float:
    """Raw Disparate Impact ``SR_U / SR_W`` (∞ when the majority rate is 0)."""
    rates = group_rates(y_true, y_pred, group)
    sr_minority = rates["minority"].selection_rate
    sr_majority = rates["majority"].selection_rate
    if sr_majority == 0.0:
        return float("inf") if sr_minority > 0 else 1.0
    return sr_minority / sr_majority


def disparate_impact_star(y_true, y_pred, group) -> float:
    """Folded Disparate Impact ``min(DI, 1/DI)`` in ``[0, 1]`` — higher is fairer."""
    di = disparate_impact(y_true, y_pred, group)
    if di == 0.0 or np.isinf(di):
        return 0.0
    return float(min(di, 1.0 / di))


def favors_minority(y_true, y_pred, group) -> bool:
    """True when the minority's selection rate exceeds the majority's.

    The paper marks such outcomes with striped bars: bias in favour of the
    minority, which can be acceptable in historically-disadvantaged settings.
    """
    return disparate_impact(y_true, y_pred, group) > 1.0


def average_odds_difference(y_true, y_pred, group) -> float:
    """Signed Average Odds Difference ``((FPR_U-FPR_W) + (TPR_U-TPR_W)) / 2``.

    A rate that is undefined for either group (no positives for TPR, no
    negatives for FPR) contributes a zero gap rather than a spurious maximal
    one.
    """
    rates = group_rates(y_true, y_pred, group)
    minority, majority = rates["minority"], rates["majority"]
    fpr_gap = (
        minority.fpr - majority.fpr
        if minority.has_negatives and majority.has_negatives
        else 0.0
    )
    tpr_gap = (
        minority.tpr - majority.tpr
        if minority.has_positives and majority.has_positives
        else 0.0
    )
    return float((fpr_gap + tpr_gap) / 2.0)


def average_odds_star(y_true, y_pred, group) -> float:
    """Reported AOD ``1 - |AOD|`` in ``[0, 1]`` — higher is fairer."""
    return float(1.0 - abs(average_odds_difference(y_true, y_pred, group)))


def equalized_odds_difference(y_true, y_pred, group, *, rate: str = "fnr") -> float:
    """Absolute between-group gap in FNR or FPR (the Equalized-Odds components).

    Parameters
    ----------
    rate:
        ``"fnr"`` (paper's Equalized Odds by FNR), ``"fpr"``, or ``"tpr"``.
    """
    rates = group_rates(y_true, y_pred, group)
    if rate not in ("fnr", "fpr", "tpr"):
        raise ValidationError("rate must be 'fnr', 'fpr', or 'tpr'")
    minority, majority = rates["minority"], rates["majority"]
    needs_positives = rate in ("fnr", "tpr")
    if needs_positives and not (minority.has_positives and majority.has_positives):
        return 0.0
    if rate == "fpr" and not (minority.has_negatives and majority.has_negatives):
        return 0.0
    return float(abs(getattr(minority, rate) - getattr(majority, rate)))


def statistical_parity_difference(y_true, y_pred, group) -> float:
    """Selection-rate gap ``SR_U - SR_W`` (signed)."""
    rates = group_rates(y_true, y_pred, group)
    return float(rates["minority"].selection_rate - rates["majority"].selection_rate)
