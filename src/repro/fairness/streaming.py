"""Incremental (streaming) fairness accumulation over served traffic.

The offline path computes a :class:`~repro.fairness.report.FairnessReport`
from full prediction arrays.  A serving system sees the same information as a
*stream* of micro-batches, so this module provides the additive sufficient
statistics behind every reported metric:

* :class:`StreamCounts` — per-group counts (rows, positive predictions, and
  the labelled confusion cells) that add and subtract exactly, which is what
  makes sliding windows cheap: evicting a chunk is integer subtraction, not
  recomputation;
* :class:`FairnessAccumulator` — consumes ``(y_pred, group[, y_true])``
  batches and reproduces the offline report *bit-identically*: every rate is
  computed with the same count ratios the metric functions in
  :mod:`repro.fairness.metrics` evaluate, so an accumulator fed the deploy
  set in any batching agrees with :func:`~repro.fairness.evaluate_predictions`
  on the same rows.

:class:`~repro.serving.monitor.FairnessMonitor` builds its sliding window on
top of these primitives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.density_filter import iter_group_partitions
from repro.exceptions import ValidationError
from repro.fairness.report import FairnessReport

# Column layout of the per-group count matrix.
_N, _SELECTED, _TP, _FP, _FN, _TN = range(6)


def fold_disparate_impact(sr_minority: float, sr_majority: float) -> tuple:
    """Return ``(di, di_star)`` from the two selection rates.

    One shared implementation of the reporting convention in
    :mod:`repro.fairness.metrics` (``inf``/``1.0`` conventions for a zero
    majority rate, ``di_star = min(di, 1/di)`` with 0 for the degenerate
    ends), so the streaming and windowed views cannot drift from it.
    """
    if sr_majority == 0.0:
        di = float("inf") if sr_minority > 0 else 1.0
    else:
        di = sr_minority / sr_majority
    di_star = 0.0 if (di == 0.0 or np.isinf(di)) else float(min(di, 1.0 / di))
    return float(di), di_star


def _check_binary(name: str, values) -> np.ndarray:
    arr = np.asarray(values).ravel()
    if arr.size and np.any((arr != 0) & (arr != 1)):
        raise ValidationError(f"{name} must contain only binary 0/1 values")
    return arr


class StreamCounts:
    """Additive per-group sufficient statistics of a prediction stream.

    Internally a ``(2, 6)`` integer matrix — one row per group (0 = majority,
    1 = minority), columns ``[n, selected, tp, fp, fn, tn]``.  The confusion
    columns only grow for batches that carried ground-truth labels, so a
    stream may mix labelled (audit) and unlabelled traffic; ``n_labelled``
    tracks how many rows contributed to the confusion cells.
    """

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[np.ndarray] = None) -> None:
        self.counts = (
            np.zeros((2, 6), dtype=np.int64) if counts is None else np.asarray(counts, dtype=np.int64)
        )

    @classmethod
    def from_batch(cls, y_pred, group, y_true=None) -> "StreamCounts":
        """Count one batch of predictions (vectorized, no Python loop).

        All three arrays must be binary 0/1: the counts are *sufficient*
        statistics, so a non-binary row silently dropped here would make the
        streaming report diverge from the offline one — rejecting it keeps
        the bit-identical guarantee honest.
        """
        y_pred = _check_binary("y_pred", y_pred)
        group = _check_binary("group", group)
        if y_pred.shape[0] != group.shape[0]:
            raise ValidationError("y_pred and group must have the same number of rows")
        if y_true is not None:
            y_true = _check_binary("y_true", y_true)
            if y_true.shape[0] != y_pred.shape[0]:
                raise ValidationError("y_true and y_pred must have the same number of rows")
        counts = np.zeros((2, 6), dtype=np.int64)
        # The shared per-group iterator (see repro.core.density_filter) keeps
        # this bookkeeping loop identical to every other partition walk.
        for g, rows in iter_group_partitions(group):
            pred = y_pred[rows]
            counts[g, _N] = rows.size
            counts[g, _SELECTED] = int(np.sum(pred == 1))
            if y_true is not None:
                true = y_true[rows]
                counts[g, _TP] = int(np.sum((true == 1) & (pred == 1)))
                counts[g, _FP] = int(np.sum((true == 0) & (pred == 1)))
                counts[g, _FN] = int(np.sum((true == 1) & (pred == 0)))
                counts[g, _TN] = int(np.sum((true == 0) & (pred == 0)))
        return cls(counts)

    # ------------------------------------------------------------ algebra
    def __add__(self, other: "StreamCounts") -> "StreamCounts":
        return StreamCounts(self.counts + other.counts)

    def __sub__(self, other: "StreamCounts") -> "StreamCounts":
        return StreamCounts(self.counts - other.counts)

    def __iadd__(self, other: "StreamCounts") -> "StreamCounts":
        self.counts += other.counts
        return self

    def __isub__(self, other: "StreamCounts") -> "StreamCounts":
        self.counts -= other.counts
        return self

    def copy(self) -> "StreamCounts":
        return StreamCounts(self.counts.copy())

    # --------------------------------------------------------- accessors
    @property
    def n_samples(self) -> int:
        return int(self.counts[:, _N].sum())

    @property
    def n_labelled(self) -> int:
        return int(self.counts[:, _TP:].sum())

    def group_n(self, g: int) -> int:
        return int(self.counts[g, _N])

    def selection_rate(self, g: int) -> float:
        """Per-group selection rate, as ``selected / n`` (exact count ratio)."""
        n = self.counts[g, _N]
        if n == 0:
            raise ValidationError(f"No samples for group {g} in the current window")
        return float(self.counts[g, _SELECTED] / n)

    def _rate(self, g: int, numerator: int, base_columns) -> float:
        base = int(self.counts[g, list(base_columns)].sum())
        return float(self.counts[g, numerator] / base) if base else 0.0

    def tpr(self, g: int) -> float:
        return self._rate(g, _TP, (_TP, _FN))

    def fpr(self, g: int) -> float:
        return self._rate(g, _FP, (_FP, _TN))

    def fnr(self, g: int) -> float:
        return self._rate(g, _FN, (_TP, _FN))

    def has_positives(self, g: int) -> bool:
        return int(self.counts[g, _TP] + self.counts[g, _FN]) > 0

    def has_negatives(self, g: int) -> bool:
        return int(self.counts[g, _FP] + self.counts[g, _TN]) > 0


def report_from_counts(counts: StreamCounts) -> FairnessReport:
    """Build the offline :class:`FairnessReport` from streaming counts.

    Mirrors :func:`repro.fairness.evaluate_predictions` term by term — the
    same guarded gaps for undefined rates, the same folding conventions —
    evaluating each rate as the identical ratio of integers, so the result is
    bit-identical to the offline report on the same rows.
    """
    c = counts.counts
    if c[:, _N].sum() == 0:
        raise ValidationError("Fairness metrics need at least one sample")
    if c[0, _N] == 0 or c[1, _N] == 0:
        raise ValidationError("Both the majority (0) and the minority (1) group must be present")
    labelled = counts.n_labelled
    if labelled != counts.n_samples:
        raise ValidationError(
            "A full FairnessReport needs ground-truth labels for every row in the "
            f"window ({labelled} labelled of {counts.n_samples}); "
            "use FairnessAccumulator.summary() for unlabelled traffic"
        )

    sr_minority = counts.selection_rate(1)
    sr_majority = counts.selection_rate(0)
    di, di_star = fold_disparate_impact(sr_minority, sr_majority)

    both_negatives = counts.has_negatives(0) and counts.has_negatives(1)
    both_positives = counts.has_positives(0) and counts.has_positives(1)
    fpr_gap = (counts.fpr(1) - counts.fpr(0)) if both_negatives else 0.0
    tpr_gap = (counts.tpr(1) - counts.tpr(0)) if both_positives else 0.0
    aod = float((fpr_gap + tpr_gap) / 2.0)

    # Overall confusion cells (both groups pooled), matching the offline
    # metrics that ignore group membership.
    tp = int(c[:, _TP].sum())
    fp = int(c[:, _FP].sum())
    fn = int(c[:, _FN].sum())
    tn = int(c[:, _TN].sum())
    positives = tp + fn
    negatives = fp + tn
    tpr_all = float(tp / positives) if positives else 0.0
    tnr_all = float(tn / negatives) if negatives else 0.0

    n_selected = int(c[:, _SELECTED].sum())
    return FairnessReport(
        di=di,
        di_star=di_star,
        aod=aod,
        aod_star=float(1.0 - abs(aod)),
        balanced_accuracy=(tpr_all + tnr_all) / 2.0,
        accuracy=float((tp + tn) / counts.n_samples),
        eq_odds_fnr=float(abs(counts.fnr(1) - counts.fnr(0))) if both_positives else 0.0,
        eq_odds_fpr=float(abs(counts.fpr(1) - counts.fpr(0))) if both_negatives else 0.0,
        selection_rate_minority=sr_minority,
        selection_rate_majority=sr_majority,
        favors_minority=bool(di > 1.0),
        degenerate=bool(n_selected == 0 or n_selected == counts.n_samples),
    )


class FairnessAccumulator:
    """Accumulate fairness statistics over a stream of prediction batches.

    The accumulator is the *unbounded* variant (all traffic since creation
    or the last :meth:`reset`); the serving monitor composes several of
    these count objects into a sliding window.
    """

    def __init__(self) -> None:
        self.totals = StreamCounts()
        self.n_batches = 0

    def update(self, y_pred, group, y_true=None) -> StreamCounts:
        """Fold one batch in; returns that batch's own counts (for windowing)."""
        batch = StreamCounts.from_batch(y_pred, group, y_true)
        self.totals += batch
        self.n_batches += 1
        return batch

    def reset(self) -> None:
        self.totals = StreamCounts()
        self.n_batches = 0

    @property
    def n_samples(self) -> int:
        return self.totals.n_samples

    def report(self) -> FairnessReport:
        """Full offline-equivalent report (requires fully-labelled traffic)."""
        return report_from_counts(self.totals)

    def summary(self) -> dict:
        """Label-free view: selection rates and DI* from predictions alone."""
        totals = self.totals
        if totals.n_samples == 0:
            return {"n_samples": 0}
        out = {"n_samples": totals.n_samples, "n_batches": self.n_batches}
        if totals.group_n(0) and totals.group_n(1):
            sr_minority = totals.selection_rate(1)
            sr_majority = totals.selection_rate(0)
            di, di_star = fold_disparate_impact(sr_minority, sr_majority)
            out["selection_rate_minority"] = sr_minority
            out["selection_rate_majority"] = sr_majority
            out["di"] = di
            out["di_star"] = di_star
        return out
