"""Group mapping functions.

The paper assumes a user-specified binary mapping function ``g`` that assigns
every tuple to the majority group ``W`` (0) or the minority group ``U`` (1).
In the benchmark datasets the mapping is already materialized as the
``Dataset.group`` column, but :class:`GroupMapping` lets callers define the
mapping from raw attributes (a column equality test, a threshold, or any
callable) — mirroring how ``g`` is a simple function over one or more
attributes in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class GroupMapping:
    """A binary mapping function ``g`` from feature rows to {0, 1}.

    Parameters
    ----------
    function:
        Callable taking the full feature matrix and returning an array of 0/1
        group labels (1 = minority).
    name:
        Human-readable description of the mapping.
    """

    function: Callable[[np.ndarray], np.ndarray]
    name: str = "g"

    def __call__(self, X) -> np.ndarray:
        values = np.asarray(self.function(np.asarray(X)))
        values = values.ravel().astype(np.int64)
        uniques = np.unique(values)
        if not np.all(np.isin(uniques, (0, 1))):
            raise ValidationError(
                f"Group mapping {self.name!r} must return binary 0/1 values, got {uniques!r}"
            )
        return values


def group_from_column(column_index: int, minority_values: Sequence, name: Optional[str] = None) -> GroupMapping:
    """Map rows whose ``column_index`` value is in ``minority_values`` to the minority.

    Useful for raw categorical attributes (e.g. race codes) before encoding.
    """
    minority_set = set(minority_values)
    if not minority_set:
        raise ValidationError("minority_values must not be empty")

    def mapping(X: np.ndarray) -> np.ndarray:
        column = X[:, column_index]
        return np.array([1 if value in minority_set else 0 for value in column], dtype=np.int64)

    return GroupMapping(mapping, name=name or f"column[{column_index}] in {sorted(map(repr, minority_set))}")


def group_from_threshold(column_index: int, threshold: float, *, below_is_minority: bool = True, name: Optional[str] = None) -> GroupMapping:
    """Map rows by thresholding a numeric column (e.g. ``age < 35`` for Credit)."""

    def mapping(X: np.ndarray) -> np.ndarray:
        column = X[:, column_index].astype(np.float64)
        minority = column < threshold if below_is_minority else column >= threshold
        return minority.astype(np.int64)

    comparator = "<" if below_is_minority else ">="
    return GroupMapping(mapping, name=name or f"column[{column_index}] {comparator} {threshold}")
