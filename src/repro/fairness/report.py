"""Bundled fairness + utility evaluation of a set of predictions."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

import numpy as np

from repro.fairness.metrics import (
    average_odds_difference,
    average_odds_star,
    disparate_impact,
    disparate_impact_star,
    equalized_odds_difference,
    favors_minority,
    group_rates,
)
from repro.learners.metrics import accuracy_score, balanced_accuracy_score


@dataclass(frozen=True)
class FairnessReport:
    """All metrics the paper reports for one (dataset, model) evaluation.

    ``di_star`` and ``aod_star`` follow the paper's reporting convention
    (higher is better, 1 is parity); ``balanced_accuracy`` is the utility
    metric.  ``degenerate`` flags models that predict a single class —
    the paper marks those with crisscross bars as "useless predictions".
    """

    di: float
    di_star: float
    aod: float
    aod_star: float
    balanced_accuracy: float
    accuracy: float
    eq_odds_fnr: float
    eq_odds_fpr: float
    selection_rate_minority: float
    selection_rate_majority: float
    favors_minority: bool
    degenerate: bool

    def to_dict(self) -> Dict[str, object]:
        """Return the report as a plain dictionary (for tables and JSON)."""
        return asdict(self)


def evaluate_predictions(y_true, y_pred, group) -> FairnessReport:
    """Compute a :class:`FairnessReport` for binary predictions.

    Parameters
    ----------
    y_true:
        Ground-truth binary labels.
    y_pred:
        Model predictions (binary).
    group:
        Group membership (0 = majority, 1 = minority).
    """
    y_pred_arr = np.asarray(y_pred).ravel()
    rates = group_rates(y_true, y_pred, group)
    single_class = np.unique(y_pred_arr).size < 2
    return FairnessReport(
        di=disparate_impact(y_true, y_pred, group),
        di_star=disparate_impact_star(y_true, y_pred, group),
        aod=average_odds_difference(y_true, y_pred, group),
        aod_star=average_odds_star(y_true, y_pred, group),
        balanced_accuracy=balanced_accuracy_score(y_true, y_pred),
        accuracy=accuracy_score(y_true, y_pred),
        eq_odds_fnr=equalized_odds_difference(y_true, y_pred, group, rate="fnr"),
        eq_odds_fpr=equalized_odds_difference(y_true, y_pred, group, rate="fpr"),
        selection_rate_minority=rates["minority"].selection_rate,
        selection_rate_majority=rates["majority"].selection_rate,
        favors_minority=favors_minority(y_true, y_pred, group),
        degenerate=single_class,
    )
