"""Group-fairness metrics and reporting.

The paper evaluates fairness with Disparate Impact (reported as
``DI* = min(DI, 1/DI)``) and Average Odds Difference (reported as
``AOD* = 1 - |AOD|``), plus Balanced Accuracy for utility.  This subpackage
provides those metrics, the per-group rate primitives (selection rate, TPR,
FPR, FNR), an Equalized-Odds view, and a :class:`FairnessReport` bundling all
of them for one (dataset, model) evaluation.
"""

from repro.fairness.groups import GroupMapping, group_from_column, group_from_threshold
from repro.fairness.metrics import (
    average_odds_difference,
    average_odds_star,
    disparate_impact,
    disparate_impact_star,
    equalized_odds_difference,
    group_rates,
)
from repro.fairness.report import FairnessReport, evaluate_predictions
from repro.fairness.streaming import (
    FairnessAccumulator,
    StreamCounts,
    report_from_counts,
)

__all__ = [
    "FairnessAccumulator",
    "FairnessReport",
    "GroupMapping",
    "StreamCounts",
    "average_odds_difference",
    "average_odds_star",
    "disparate_impact",
    "disparate_impact_star",
    "equalized_odds_difference",
    "evaluate_predictions",
    "group_from_column",
    "group_from_threshold",
    "group_rates",
    "report_from_counts",
]
