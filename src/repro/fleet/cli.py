"""Command-line front end for the sharded serving fleet.

Three subcommands::

    repro-fleet serve  --shards 4 --backend process
    repro-fleet replay --shards 4 --scenario group_shift
    repro-fleet report --input fleet-report.json

``serve`` stands a fleet up from a saved artifact (fitting one first when
``--artifact`` is omitted, exactly like ``repro-simulate``), drives deploy
traffic through it, and emits the fleet report — per-shard throughput and
cold starts plus the merged monitor's windowed summary.  ``replay`` is the
equivalence check: it replays one scenario through an N-shard fleet *and*
through a single service and exits non-zero unless the scored verdicts are
bit-identical (everything except wall-clock throughput).  ``report``
pretty-summarizes a report JSON saved by ``serve --out-report``.

Also available as ``python -m repro.fleet``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.exceptions import ReproError, ValidationError
from repro.fleet.replay import compare_sharded_replay
from repro.fleet.service import DISPATCH_POLICIES, FleetService
from repro.fleet.workers import ProcessShardWorker
from repro.serving.artifacts import save_artifact
from repro.serving.cli import emit_json, parse_params
from repro.simulate.cli import _make_runner, _prepare
from repro.simulate.registry import available_scenarios, make_scenario
from repro.telemetry import (
    enable as enable_telemetry,
    get_event_log,
    write_events,
    write_metrics,
)


# ---------------------------------------------------------------- commands
def cmd_serve(args) -> int:
    # Enable telemetry *before* workers exist: inline shards snapshot the
    # process-wide flag into their private registries and process shards
    # forward it to the spawned worker over the pipe handshake.
    if args.metrics_out:
        enable_telemetry()
    if args.events_out:
        # Same ordering rule as telemetry: the flight recorder must be on
        # before workers exist so inline shards mint enabled private logs and
        # process shards inherit the flag over the pipe handshake.
        get_event_log().enable()
    artifact, loaded, split = _prepare(args)
    runner = _make_runner(args, loaded, split)
    if args.backend == "inline":
        fleet = runner.make_service(shards=args.shards)
        if not isinstance(fleet, FleetService):
            raise ValidationError("repro-fleet serve needs --shards >= 2")
    else:
        monitor_dir = tempfile.mkdtemp(prefix="repro-fleet-monitor-")
        monitor_path = str(save_artifact(runner.make_monitor(), monitor_dir))
        fleet = FleetService(
            [
                ProcessShardWorker(
                    artifact,
                    shard_id=shard_id,
                    monitor_path=monitor_path,
                    batch_size=args.batch_size,
                    mmap_mode="r" if args.mmap else None,
                )
                for shard_id in range(args.shards)
            ],
            dispatch=args.dispatch,
        )

    deploy = split.deploy
    rows = max(int(args.request_rows), 1)
    with fleet:
        for index in range(int(args.requests)):
            start = (index * rows) % deploy.n_samples
            take = np.arange(start, start + rows) % deploy.n_samples
            fleet.predict(deploy.X[take], deploy.group[take], y_true=deploy.y[take])
        report = fleet.fleet_report()
        if args.metrics_out:
            # Snapshotted inside the `with` block: worker telemetry state is
            # only reachable while the shards are alive.
            report["metrics_out"] = write_metrics(
                args.metrics_out, fleet.telemetry_report()
            )
        if args.events_out:
            report["events_out"] = write_events(
                args.events_out, fleet.events_report()
            )
    report["artifact"] = artifact
    report["backend"] = args.backend
    if args.out_report:
        Path(args.out_report).write_text(json.dumps(report, indent=2, sort_keys=True))
    emit_json(report)
    return 0


def cmd_replay(args) -> int:
    if args.metrics_out:
        enable_telemetry()
    if args.events_out:
        get_event_log().enable()
    artifact, loaded, split = _prepare(args)
    runner = _make_runner(args, loaded, split)
    scenario = make_scenario(args.scenario, **parse_params(args.scenario_param))
    comparison = compare_sharded_replay(
        runner,
        scenario,
        split.deploy,
        shards=args.shards,
        label=args.scenario,
        n_steps=args.steps,
        batch_size=args.stream_batch,
        seed=args.seed,
    )
    payload = {
        "artifact": artifact,
        "dataset": args.dataset,
        "scenario": repr(scenario),
        **comparison.to_dict(),
    }
    if args.metrics_out:
        # Both replays have finished and closed their fleets; the default
        # registry holds the replay spans and single-service metrics.
        payload["metrics_out"] = write_metrics(args.metrics_out)
    if args.events_out:
        # The default log carries the alarm edges, channel attributions, and
        # the single-service run's request events; shard-private logs died
        # with the fleet.
        payload["events_out"] = write_events(args.events_out)
    emit_json(payload)
    if not comparison.matches:
        print(
            f"error: {args.shards}-shard replay diverged from the single-service run",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(args) -> int:
    try:
        report = json.loads(Path(args.input).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ValidationError(f"cannot read fleet report {args.input!r}: {error}") from error
    summary = {
        "n_shards": report.get("n_shards"),
        "dispatch": report.get("dispatch"),
        "n_requests": report.get("n_requests"),
        "n_records": report.get("n_records"),
        "records_per_second": report.get("records_per_second"),
        "shards": report.get("shards"),
    }
    if "windowed" in report:
        summary["windowed"] = report["windowed"]
    emit_json(summary)
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Shard a monitored serving stack and verify it against the single service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common_options(p) -> None:
        # Mirrors repro-simulate's replay options so the two CLIs drive the
        # same artifact/fit/monitor plumbing.
        p.add_argument("--dataset", default="meps", help="benchmark dataset name")
        p.add_argument("--seed", type=int, default=7, help="dataset/split/stream seed")
        p.add_argument(
            "--size-factor",
            type=float,
            default=0.05,
            help="fraction of the published dataset size to generate",
        )
        p.add_argument(
            "--artifact",
            help="artifact directory saved by repro-serve fit (omit to fit one now)",
        )
        p.add_argument(
            "--out",
            help="where to save the freshly fitted artifact (default: a temp directory)",
        )
        p.add_argument("--intervention", default="confair", help="intervention to fit")
        p.add_argument("--learner", default="lr", help="final-model learner name")
        p.add_argument(
            "--param",
            action="append",
            metavar="KEY=VALUE",
            help="extra intervention constructor parameter (repeatable; JSON value)",
        )
        p.add_argument("--shards", type=int, default=4, help="number of shard workers")
        p.add_argument("--steps", type=int, default=40, help="stream steps on the timeline")
        p.add_argument(
            "--stream-batch", type=int, default=128, help="base rows per stream step"
        )
        p.add_argument("--window", type=int, default=2000, help="monitor window size")
        p.add_argument(
            "--group-tolerance",
            type=float,
            default=0.15,
            help="group-prevalence alarm tolerance (absolute fraction)",
        )
        p.add_argument("--batch-size", type=int, default=512, help="service micro-batch size")
        p.add_argument("--workers", type=int, default=None, help="per-shard thread-pool width")
        density = p.add_mutually_exclusive_group()
        density.add_argument(
            "--density",
            dest="density",
            action="store_true",
            default=True,
            help="enable the density-drift channel (default)",
        )
        density.add_argument(
            "--no-density",
            dest="density",
            action="store_false",
            help="disable the density-drift channel",
        )

    serve = sub.add_parser("serve", help="drive traffic through a fleet; emit its report")
    add_common_options(serve)
    serve.add_argument(
        "--backend",
        choices=("inline", "process"),
        default="inline",
        help="inline shard workers (in-process) or spawned worker processes",
    )
    serve.add_argument(
        "--dispatch",
        choices=DISPATCH_POLICIES,
        default="round_robin",
        help="request dispatch policy (process backend)",
    )
    mmap = serve.add_mutually_exclusive_group()
    mmap.add_argument(
        "--mmap",
        dest="mmap",
        action="store_true",
        default=True,
        help="memory-map the payload in worker processes (default)",
    )
    mmap.add_argument(
        "--no-mmap",
        dest="mmap",
        action="store_false",
        help="materialize the payload per worker",
    )
    serve.add_argument("--requests", type=int, default=32, help="requests to drive")
    serve.add_argument(
        "--request-rows", type=int, default=64, help="deploy rows per request"
    )
    serve.add_argument("--out-report", help="also write the fleet report JSON here")
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable telemetry and write the fleet dump (frontend + per-shard "
        "+ exactly-merged state) to PATH",
    )
    serve.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="enable the flight recorder and write the fleet event-log dump "
        "(frontend + per-shard + exactly-merged state) to PATH",
    )
    serve.set_defaults(func=cmd_serve)

    replay = sub.add_parser(
        "replay", help="assert an N-shard replay is bit-identical to the single service"
    )
    add_common_options(replay)
    replay.add_argument(
        "--scenario",
        default="group_shift",
        help=f"scenario name (one of {', '.join(available_scenarios())})",
    )
    replay.add_argument(
        "--scenario-param",
        action="append",
        metavar="KEY=VALUE",
        help="scenario constructor parameter (repeatable; value parsed as JSON)",
    )
    replay.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable telemetry and write the default-registry dump (replay "
        "spans + single-service metrics) to PATH after the comparison",
    )
    replay.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="enable the flight recorder and write the default event-log dump "
        "(alarm edges + channel attributions) to PATH after the comparison",
    )
    replay.set_defaults(func=cmd_replay)

    report = sub.add_parser("report", help="summarize a fleet report JSON")
    report.add_argument("--input", required=True, help="report file written by serve --out-report")
    report.set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro-fleet`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
