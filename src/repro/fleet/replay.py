"""Sharded replay verification: prove the fleet equals the single service.

The fleet's whole claim is that sharding is *invisible* to the monitoring
verdict: a drift scenario replayed through N shard workers (round-robin,
sequence-stamped, monitors merged) must produce the same alarms at the same
steps, the same detection latency, and the same windowed fairness trace as
one :class:`~repro.serving.PredictionService` observing the union stream.
:func:`compare_sharded_replay` runs both replays and diffs the full scored
traces — everything in ``ReplayResult.to_dict(include_steps=True)`` except
wall-clock throughput — so the equivalence is asserted bit for bit, not
eyeballed on summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simulate.replay import ReplayResult
from repro.simulate.suites import SuiteRunner, make_suite

#: Timing-dependent keys excluded from the bit-identity comparison.
TIMING_KEYS = ("records_per_second",)


def _comparable(result: ReplayResult) -> Dict[str, object]:
    out = result.to_dict(include_steps=True)
    for key in TIMING_KEYS:
        out.pop(key, None)
    return out


def diff_replay_results(single: ReplayResult, fleet: ReplayResult) -> List[str]:
    """Human-readable differences between two scored replays (empty == equal)."""
    a, b = _comparable(single), _comparable(fleet)
    differences = []
    for key in a:
        if a[key] != b[key]:
            if key == "steps":
                for index, (step_a, step_b) in enumerate(zip(a[key], b[key])):
                    if step_a != step_b:
                        differences.append(
                            f"steps[{index}]: single={step_a!r} fleet={step_b!r}"
                        )
                        break
                if len(a[key]) != len(b[key]):
                    differences.append(
                        f"steps: single has {len(a[key])}, fleet has {len(b[key])}"
                    )
            else:
                differences.append(f"{key}: single={a[key]!r} fleet={b[key]!r}")
    return differences


@dataclass
class ShardedReplayComparison:
    """Outcome of one single-vs-fleet replay equivalence check."""

    label: str
    shards: int
    single: ReplayResult
    fleet: ReplayResult
    differences: List[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        return not self.differences

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "shards": self.shards,
            "matches": self.matches,
            "differences": list(self.differences),
            "single": self.single.to_dict(),
            "fleet": self.fleet.to_dict(),
        }


def compare_sharded_replay(
    runner: SuiteRunner,
    scenario,
    deploy,
    *,
    shards: int,
    label: Optional[str] = None,
    n_steps: int = 40,
    batch_size: int = 128,
    seed: int = 0,
) -> ShardedReplayComparison:
    """Replay one scenario twice — single service and N-shard fleet — and diff.

    Both replays consume the same deterministic stream (same scenario, same
    seed), so any difference is the fleet's fault, not the traffic's.
    """
    single = runner.replay_scenario(
        scenario, deploy, label=label, n_steps=n_steps, batch_size=batch_size, seed=seed
    )
    fleet = runner.replay_scenario(
        scenario,
        deploy,
        label=label,
        n_steps=n_steps,
        batch_size=batch_size,
        seed=seed,
        shards=shards,
    )
    return ShardedReplayComparison(
        label=label if label is not None else single.scenario,
        shards=int(shards),
        single=single,
        fleet=fleet,
        differences=diff_replay_results(single, fleet),
    )


def compare_sharded_suite(
    runner: SuiteRunner,
    suite: str,
    deploy,
    *,
    shards: int,
    n_steps: int = 40,
    batch_size: int = 128,
    seed: int = 0,
) -> List[Tuple[str, ShardedReplayComparison]]:
    """Run :func:`compare_sharded_replay` for every scenario of a named suite."""
    return [
        (
            label,
            compare_sharded_replay(
                runner,
                scenario,
                deploy,
                shards=shards,
                label=label,
                n_steps=n_steps,
                batch_size=batch_size,
                seed=seed,
            ),
        )
        for label, scenario in make_suite(suite)
    ]
