"""``FleetService``: the asyncio front-end of the sharded serving fleet.

The front-end accepts requests (sync ``predict`` or native
``predict_async``), fans micro-batches out to shard workers round-robin or
least-loaded, preserves request ordering in the responses (parts are
gathered in dispatch order regardless of completion order), stamps every
dispatched batch with a stream-wide **sequence number**, and aggregates the
per-shard :class:`~repro.serving.ServiceStats` and monitor states into one
fleet-level view: :attr:`FleetService.monitor` is the shards' windows merged
through :meth:`~repro.serving.FairnessMonitor.merge_state_dicts` — the
union-stream monitor, bit for bit.

Determinism contract: with ``dispatch="round_robin"`` and no scattering
(``scatter_rows=None``, the default — each request goes whole to one shard)
the sequence-stamped shard windows merge to a monitor *bit-identical* to a
single :class:`~repro.serving.PredictionService` that served the same
request stream.  ``least_loaded`` dispatch and row scattering trade that
reproducibility for balance: both are timing-dependent (which shard is
least loaded, how a request splits across windows), so they serve scale,
not replays under test.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import FleetError, ValidationError
from repro.serving.monitor import FairnessMonitor
from repro.serving.service import ServiceStats
from repro.telemetry import (
    DEFAULT_SIZE_BUCKETS,
    EVENT_LOG_SCHEMA_VERSION,
    EventLog,
    MetricsRegistry,
    get_event_log,
    get_registry,
)

DISPATCH_POLICIES = ("round_robin", "least_loaded")


class FleetService:
    """Fan requests across shard workers; aggregate their monitors and stats.

    Parameters
    ----------
    workers:
        The shard workers (:class:`~repro.fleet.InlineShardWorker` /
        :class:`~repro.fleet.ProcessShardWorker`, or anything speaking their
        protocol).  The fleet owns them: ``close`` closes every worker.
    dispatch:
        ``"round_robin"`` (default; deterministic, the replay-proof policy)
        or ``"least_loaded"`` (fewest in-flight parts wins, ties to the
        lowest shard id).
    scatter_rows:
        ``None`` (default) dispatches each request whole to one shard —
        required for bit-identical monitor merging, since a monitor chunk is
        one update batch.  An integer scatters requests into row-blocks of
        that size spread across shards (higher intra-request parallelism,
        monitor windows chunked differently than single-service serving).
    report_every:
        Every N front-end requests, append a fleet report (merged monitor
        summary + per-shard stats) to :attr:`report_history`.
    telemetry:
        Optional :class:`~repro.telemetry.MetricsRegistry` for the
        *front-end's* own metrics (``fleet.requests_total``,
        ``fleet.request_rows``, ``fleet.request_parts``); defaults to the
        process-wide registry.  Shard-side serving metrics live in the
        workers' private registries and are merged — exactly, like the
        monitors — into :meth:`fleet_report` / :meth:`telemetry_report`.
    events:
        Optional :class:`~repro.telemetry.EventLog` for the *front-end's*
        flight recorder (alarm edges and mitigation transitions are emitted
        where the merged monitor is observed); defaults to the process-wide
        log.  Shard-side request events live in the workers' private logs
        and fold into the union-stream log in :meth:`events_report`.
    """

    def __init__(
        self,
        workers: Sequence,
        *,
        dispatch: str = "round_robin",
        scatter_rows: Optional[int] = None,
        report_every: Optional[int] = None,
        telemetry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        workers = list(workers)
        if not workers:
            raise FleetError("FleetService needs at least one shard worker")
        if dispatch not in DISPATCH_POLICIES:
            raise FleetError(
                f"Unknown dispatch policy {dispatch!r}; choose from {DISPATCH_POLICIES}"
            )
        if scatter_rows is not None and scatter_rows < 1:
            raise FleetError("scatter_rows must be a positive integer or None")
        if report_every is not None and report_every < 1:
            raise FleetError("report_every must be a positive integer or None")
        self.workers = workers
        self.dispatch = dispatch
        self.scatter_rows = scatter_rows
        self.report_every = report_every
        self.report_history: List[Dict[str, Any]] = []
        self.telemetry = telemetry if telemetry is not None else get_registry()
        self.events = events if events is not None else get_event_log()
        self._m_requests = self.telemetry.counter("fleet.requests_total")
        self._m_rows = self.telemetry.histogram(
            "fleet.request_rows", buckets=DEFAULT_SIZE_BUCKETS, resolution=1.0
        )
        self._m_parts = self.telemetry.histogram(
            "fleet.request_parts", buckets=DEFAULT_SIZE_BUCKETS, resolution=1.0
        )
        self.n_requests = 0
        self._sequence = 0
        self._pending = [0] * len(workers)
        self._next_worker = 0
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(max_workers=max(len(workers), 1))
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._monitor_cache: Optional[tuple] = None
        self._closed = False

    # ---------------------------------------------------------- dispatching
    def _pick_worker_index(self) -> int:
        # Caller holds self._lock.
        if self.dispatch == "round_robin":
            index = self._next_worker
            self._next_worker = (self._next_worker + 1) % len(self.workers)
            return index
        return min(range(len(self.workers)), key=lambda i: (self._pending[i], i))

    @staticmethod
    def trace_id_for(sequence: int) -> str:
        """The deterministic trace id of the micro-batch stamped ``sequence``.

        Derived from the sequence stamp (not a random uuid, not a clock) so
        the same replayed stream produces the same trace ids run over run —
        a forensics session can name a trace before re-running it.
        """
        return f"fleet-{int(sequence):06d}"

    def _dispatch_one(self, index: int, X, group, y_true, sequence, trace_id) -> np.ndarray:
        try:
            return self.workers[index].predict(
                X, group, y_true=y_true, sequence=sequence, trace_id=trace_id
            )
        finally:
            with self._lock:
                self._pending[index] -= 1

    async def predict_async(self, X, group=None, *, y_true=None) -> np.ndarray:
        """Serve one request; parts run concurrently, the response is ordered.

        The returned predictions line up with the request rows even when
        scattered parts complete out of order: results are gathered in
        dispatch order, never completion order.
        """
        if self._closed:
            raise ValidationError(
                "FleetService is closed; predictions after close() are not served"
            )
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        if group is not None:
            group = np.asarray(group).ravel()
            if group.shape[0] != X.shape[0]:
                raise ValidationError("X and group must have the same number of rows")
        if y_true is not None:
            y_true = np.asarray(y_true).ravel()
            if y_true.shape[0] != X.shape[0]:
                raise ValidationError("X and y_true must have the same number of rows")

        n = X.shape[0]
        block = n if self.scatter_rows is None else int(self.scatter_rows)
        slices = [slice(i, min(i + block, n)) for i in range(0, max(n, 1), max(block, 1))]
        assignments = []
        with self._lock:
            for part in slices:
                index = self._pick_worker_index()
                self._pending[index] += 1
                assignments.append((index, part, self._sequence))
                self._sequence += 1
            self.n_requests += 1
            n_requests = self.n_requests
        if self.telemetry.enabled:
            self._m_requests.inc()
            self._m_rows.observe(n)
            self._m_parts.observe(len(assignments))
        loop = asyncio.get_running_loop()
        tasks = [
            loop.run_in_executor(
                self._executor,
                self._dispatch_one,
                index,
                X[part],
                group[part] if group is not None else None,
                y_true[part] if y_true is not None else None,
                sequence,
                self.trace_id_for(sequence),
            )
            for index, part, sequence in assignments
        ]
        chunks = await asyncio.gather(*tasks)
        predictions = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        if self.report_every is not None and n_requests % self.report_every == 0:
            self.report_history.append(self.fleet_report())
        return predictions

    def predict(self, X, group=None, *, y_true=None) -> np.ndarray:
        """Synchronous facade over :meth:`predict_async`.

        Runs the coroutine on the fleet's background event loop, so sync
        callers (the replay harness, the CLI) and async callers share one
        code path and one ordering/sequencing discipline.
        """
        loop = self._ensure_loop()
        future = asyncio.run_coroutine_threadsafe(
            self.predict_async(X, group, y_true=y_true), loop
        )
        return future.result()

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lock:
            if self._closed:
                raise ValidationError("FleetService is closed")
            if self._loop is None:
                loop = asyncio.new_event_loop()
                thread = threading.Thread(
                    target=loop.run_forever, name="fleet-service-loop", daemon=True
                )
                thread.start()
                self._loop, self._loop_thread = loop, thread
            return self._loop

    # ----------------------------------------------------------- aggregation
    def snapshots(self):
        """One :class:`~repro.fleet.ShardSnapshot` per shard, in shard order."""
        return [worker.snapshot() for worker in self.workers]

    @property
    def monitor(self) -> Optional[FairnessMonitor]:
        """The shards' monitor windows merged into the union-stream monitor.

        Merged lazily and cached per sequence point: repeated reads between
        requests (a replay step reads statuses then the summary) reuse one
        merge.  ``None`` when no shard carries a monitor.
        """
        with self._lock:
            sequence = self._sequence
            cached = self._monitor_cache
        if cached is not None and cached[0] == sequence:
            return cached[1]
        template = None
        for worker in self.workers:
            template = worker.monitor_template()
            if template is not None:
                break
        if template is None:
            return None
        states = [
            snapshot.monitor_state
            for snapshot in self.snapshots()
            if snapshot.monitor_state is not None
        ]
        if not states:
            return None
        merged_state = FairnessMonitor.merge_state_dicts(
            states, window_size=template.window_size
        )
        merged = template.load_state_dict(merged_state)
        with self._lock:
            self._monitor_cache = (sequence, merged)
        return merged

    @property
    def stats(self) -> ServiceStats:
        """Aggregated shard stats (requests here are dispatched parts)."""
        total = ServiceStats()
        for snapshot in self.snapshots():
            total.n_requests += snapshot.stats.n_requests
            total.n_records += snapshot.stats.n_records
            total.total_seconds += snapshot.stats.total_seconds
        return total

    def fleet_report(self) -> Dict[str, Any]:
        """One fleet-level report: merged window view plus per-shard stats.

        Every shard entry carries its ``cold_start_seconds`` and the
        ``mmap_cache`` hit/miss outcome of its artifact load.  When the
        shards record telemetry, each entry additionally reports its
        request-latency quantiles, and the report gains a ``telemetry``
        section whose ``merged`` view folds the per-shard histograms
        together exactly (integer sufficient statistics — bit-identical to
        one service observing the union stream).
        """
        snapshots = self.snapshots()
        merged = self.monitor
        shard_exports: Dict[int, Dict[str, Any]] = {
            snapshot.shard_id: MetricsRegistry.export_state(snapshot.telemetry_state)
            for snapshot in snapshots
            if snapshot.telemetry_state is not None
        }
        shards = []
        for snapshot in snapshots:
            entry: Dict[str, Any] = {
                "shard_id": snapshot.shard_id,
                "n_requests": snapshot.stats.n_requests,
                "n_records": snapshot.stats.n_records,
                "records_per_second": round(snapshot.stats.records_per_second, 1),
                "cold_start_seconds": round(snapshot.cold_start_seconds, 4),
                "mmap_cache": snapshot.mmap_cache,
            }
            export = shard_exports.get(snapshot.shard_id)
            if export is not None:
                latency = export["histograms"].get("serving.request_latency_seconds")
                if latency is not None:
                    entry["latency_quantiles"] = latency["quantiles"]
            shards.append(entry)
        report: Dict[str, Any] = {
            "n_shards": len(self.workers),
            "dispatch": self.dispatch,
            "n_requests": self.n_requests,
            "shards": shards,
        }
        total = ServiceStats()
        for snapshot in snapshots:
            total.n_requests += snapshot.stats.n_requests
            total.n_records += snapshot.stats.n_records
            total.total_seconds += snapshot.stats.total_seconds
        report["n_records"] = total.n_records
        report["records_per_second"] = round(total.records_per_second, 1)
        if shard_exports:
            states = [
                snapshot.telemetry_state
                for snapshot in snapshots
                if snapshot.telemetry_state is not None
            ]
            merged_state = MetricsRegistry.merge_state_dicts(states)
            report["telemetry"] = {
                "n_reporting_shards": len(states),
                "merged": MetricsRegistry.export_state(merged_state),
            }
        if merged is not None:
            report["windowed"] = merged.windowed_summary()
        return report

    def telemetry_report(self) -> Dict[str, Any]:
        """The fleet's ``--metrics-out`` payload: front-end + shards + merge.

        ``frontend`` is the front-end registry's dump (its spans include the
        dispatch path), each ``shards`` entry carries that shard's summary
        *and* mergeable state, and ``merged`` folds the shard states into
        the exact union view.  Shards report only while telemetry is
        enabled and recording into private registries.
        """
        snapshots = self.snapshots()
        shards = []
        states = []
        for worker, snapshot in zip(self.workers, snapshots):
            if snapshot.telemetry_state is None:
                continue
            states.append(snapshot.telemetry_state)
            entry = {
                "shard_id": snapshot.shard_id,
                "cold_start_seconds": snapshot.cold_start_seconds,
                "mmap_cache": snapshot.mmap_cache,
                "export": MetricsRegistry.export_state(snapshot.telemetry_state),
                "state": snapshot.telemetry_state,
            }
            if hasattr(worker, "trace"):
                # Worker-side request spans (trace_id/shard_id/sequence) so a
                # dump alone can stitch a fleet trace without live workers.
                entry["spans"] = worker.trace()
            shards.append(entry)
        payload: Dict[str, Any] = {
            "telemetry_version": 1,
            "frontend": {
                "export": self.telemetry.export(),
                "state": self.telemetry.state_dict(),
            },
            "shards": shards,
        }
        if states:
            merged_state = MetricsRegistry.merge_state_dicts(states)
            payload["merged"] = {
                "export": MetricsRegistry.export_state(merged_state),
                "state": merged_state,
            }
        return payload

    def events_report(self) -> Dict[str, Any]:
        """The fleet's ``--events-out`` payload: front-end + shards + merge.

        ``frontend`` is the front-end log (alarm edges, channel snapshots,
        mitigation transitions — emitted where the merged monitor is
        observed), each ``shards`` entry is that shard's private log
        (``request`` events, worker lifecycle), and ``merged`` folds them
        all by sequence stamp into the union-stream log — bit-identical to
        the log one :class:`~repro.serving.PredictionService` would have
        recorded serving the same stream.
        """
        shards = []
        states = []
        for snapshot in self.snapshots():
            if snapshot.events_state is None:
                continue
            states.append(snapshot.events_state)
            shards.append({"shard_id": snapshot.shard_id, "state": snapshot.events_state})
        payload: Dict[str, Any] = {
            "events_version": EVENT_LOG_SCHEMA_VERSION,
            "frontend": {"state": self.events.state_dict()},
            "shards": shards,
        }
        payload["merged"] = {
            "state": EventLog.merge_state_dicts([self.events.state_dict()] + states)
        }
        return payload

    def trace(self, *, trace_id: Optional[str] = None) -> Dict[str, Any]:
        """Stitched frontend + shard span view, optionally for one trace id.

        The front-end contributes its dispatch-path spans; every worker that
        can report spans (inline: its private registry; process: over the
        pipe) contributes the ``serving.request`` spans it served, each
        carrying ``trace_id``/``shard_id``/``sequence`` attributes.
        """
        shards = []
        for worker in self.workers:
            if not hasattr(worker, "trace"):
                continue
            shards.append(
                {
                    "shard_id": getattr(worker, "shard_id", len(shards)),
                    "spans": worker.trace(trace_id=trace_id),
                }
            )
        return {
            "trace_id": trace_id,
            "frontend": self.telemetry.trace(trace_id=trace_id),
            "shards": shards,
        }

    # ------------------------------------------------------------- lifecycle
    @property
    def requires_group(self) -> bool:
        return any(bool(getattr(worker, "requires_group", False)) for worker in self.workers)

    def close(self) -> None:
        """Stop the loop, shut the executor down, close every worker."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop, self._loop = self._loop, None
            thread, self._loop_thread = self._loop_thread, None
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=10.0)
            loop.close()
        self._executor.shutdown(wait=True)
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "FleetService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
