"""``repro.fleet``: a sharded serving fleet with mergeable fairness monitors.

One :class:`~repro.serving.PredictionService` scales to one process.  The
fleet scales the same artifact to N shards without giving up the monitoring
guarantees the serving layer was built around:

* **Shard workers** (:class:`InlineShardWorker`, :class:`ProcessShardWorker`)
  each serve the artifact with their own
  :class:`~repro.serving.FairnessMonitor`.  Process workers load with
  ``load_artifact(..., mmap_mode="r")``, so the payload arrays are
  memory-mapped from a shared extraction cache: per-worker cold start is
  O(manifest), and the weights occupy one physical copy machine-wide.
* **The front-end** (:class:`FleetService`) fans requests to shards
  (round-robin or least-loaded), preserves response ordering, stamps every
  dispatched batch with a stream-wide sequence number, and merges the shard
  monitors through
  :meth:`~repro.serving.FairnessMonitor.merge_state_dicts` into the
  union-stream monitor.
* **The proof** (:func:`compare_sharded_replay`) replays a drift scenario
  through the fleet and through a single service and asserts the scored
  verdicts are bit-identical — alarms, detection latency, windowed DI*
  trace, everything but wall-clock throughput.

Scaling out
-----------
Start from a saved artifact and a saved baseline-installed monitor::

    from repro.fleet import FleetService, ProcessShardWorker

    workers = [
        ProcessShardWorker("model.artifact", shard_id=i,
                           monitor_path="monitor.artifact")
        for i in range(8)
    ]
    with FleetService(workers) as fleet:
        predictions = fleet.predict(X, group)      # sync facade
        report = fleet.fleet_report()              # merged window + per-shard stats

Observability
-------------
Shard workers carry **private** telemetry registries (inline shards are
handed one; process workers record into their own process's default
registry), so per-shard ``serving.*`` histograms merge into one fleet view
without double counting — exactly, via integer sufficient statistics, the
same way the monitors merge.  :meth:`FleetService.fleet_report` surfaces
per-shard ``cold_start_seconds``, the ``mmap_cache`` hit/miss outcome of
each artifact load, per-shard latency quantiles, and a ``telemetry``
section with the merged view; :meth:`FleetService.telemetry_report` is the
full ``--metrics-out`` payload (front-end + per-shard + merged state), and
``repro-telemetry`` summarizes or diffs it.  When a worker process dies,
the raised :class:`~repro.exceptions.FleetError` carries the shard id, the
process exit code, and the last in-flight/served sequence range.

The flight recorder spans the fleet the same way.  Shard workers carry
private :class:`~repro.telemetry.EventLog`\\ s whose ``request`` events are
keyed by the stream-wide sequence stamps, so
:meth:`FleetService.events_report` (the ``--events-out`` payload) folds
frontend + shard logs into the event stream a single service would have
recorded — bit-identically, proven by the flight-recorder test next to
:func:`compare_sharded_replay`.  The front-end stamps each dispatched
micro-batch with a deterministic trace id
(:meth:`FleetService.trace_id_for`), shard-side ``serving.request`` spans
carry it together with the shard id and served sequence, and
:meth:`FleetService.trace` (or ``repro-telemetry trace --trace-id ...``
over the dumps) stitches the frontend and shard views of one request back
together.  Worker process start/close lands in the frontend log as
``worker_lifecycle`` events with cold-start timings.

Async callers use ``await fleet.predict_async(...)`` directly.  Keep the
default ``dispatch="round_robin"`` and ``scatter_rows=None`` whenever the
merged monitor must reproduce a single-service run exactly; switch to
``least_loaded``/row scattering only when balance matters more than
replayability.  The ``repro-fleet`` CLI wraps the same pieces: ``serve``
(throughput + fleet report), ``replay`` (sharded-vs-single equivalence
check), and ``report`` (inspect a saved fleet report).
"""

from repro.fleet.replay import (
    ShardedReplayComparison,
    compare_sharded_replay,
    compare_sharded_suite,
    diff_replay_results,
)
from repro.fleet.service import DISPATCH_POLICIES, FleetService
from repro.fleet.workers import InlineShardWorker, ProcessShardWorker, ShardSnapshot

__all__ = [
    "DISPATCH_POLICIES",
    "FleetService",
    "InlineShardWorker",
    "ProcessShardWorker",
    "ShardSnapshot",
    "ShardedReplayComparison",
    "compare_sharded_replay",
    "compare_sharded_suite",
    "diff_replay_results",
]
