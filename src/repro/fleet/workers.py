"""Shard workers: the per-node half of the sharded serving fleet.

A *shard worker* owns one :class:`~repro.serving.PredictionService` (and its
per-shard :class:`~repro.serving.FairnessMonitor`) and exposes the narrow
surface the :class:`~repro.fleet.FleetService` front-end dispatches through:

* :class:`InlineShardWorker` — the service lives in this process.  Zero
  serialization overhead, deterministic, and what the sharded-replay
  bit-identity proof runs on;
* :class:`ProcessShardWorker` — the service lives in a spawned worker
  process that loads the artifact itself with
  ``load_artifact(..., mmap_mode="r")``, so N workers share one
  memory-mapped copy of the weights through the OS page cache and each
  worker's cold start is O(manifest), not O(weights).

Both speak the same protocol: ``predict`` (with the fleet's stream-wide
sequence stamp), ``snapshot`` (shard stats + the monitor's ``state_dict``
for fleet-level merging), ``monitor_template`` (an empty monitor carrying
the shard's configuration, the merge target), and ``close``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import FleetError
from repro.serving.artifacts import load_artifact
from repro.serving.monitor import FairnessMonitor
from repro.serving.service import PredictionService, ServiceStats


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's aggregation payload: stats plus mergeable monitor state."""

    shard_id: int
    stats: ServiceStats
    monitor_state: Optional[Dict[str, Any]]
    cold_start_seconds: float


class InlineShardWorker:
    """A shard whose :class:`PredictionService` runs in the caller's process.

    Parameters
    ----------
    service:
        The service this shard serves (typically with a fresh baseline-
        installed monitor attached).  The worker owns it: ``close`` closes
        it.
    shard_id:
        Position of this shard in the fleet (used in reports).
    """

    def __init__(self, service: PredictionService, *, shard_id: int = 0) -> None:
        self.service = service
        self.shard_id = int(shard_id)
        self.cold_start_seconds = 0.0

    @classmethod
    def from_artifact(
        cls,
        path,
        *,
        shard_id: int = 0,
        mmap_mode: Optional[str] = "r",
        monitor: Optional[FairnessMonitor] = None,
        batch_size: int = 2048,
        max_workers: Optional[int] = None,
    ) -> "InlineShardWorker":
        """Build a shard from a saved artifact (memory-mapped by default)."""
        start = time.perf_counter()
        loaded = load_artifact(path, mmap_mode=mmap_mode)
        service = PredictionService(
            loaded, batch_size=batch_size, max_workers=max_workers, monitor=monitor
        )
        worker = cls(service, shard_id=shard_id)
        worker.cold_start_seconds = time.perf_counter() - start
        return worker

    @property
    def requires_group(self) -> bool:
        return self.service.requires_group

    def predict(self, X, group=None, *, y_true=None, sequence=None) -> np.ndarray:
        return self.service.predict(X, group, y_true=y_true, sequence=sequence)

    def monitor_template(self) -> Optional[FairnessMonitor]:
        monitor = self.service.monitor
        return monitor.config_clone() if monitor is not None else None

    def snapshot(self) -> ShardSnapshot:
        stats = self.service.stats
        monitor = self.service.monitor
        return ShardSnapshot(
            shard_id=self.shard_id,
            stats=ServiceStats(stats.n_requests, stats.n_records, stats.total_seconds),
            monitor_state=monitor.state_dict() if monitor is not None else None,
            cold_start_seconds=self.cold_start_seconds,
        )

    def close(self) -> None:
        self.service.close()


def _shard_worker_main(conn, artifact_path, monitor_path, batch_size, mmap_mode) -> None:
    """Worker-process entry point: load, serve the pipe, snapshot on demand."""
    try:
        start = time.perf_counter()
        loaded = load_artifact(artifact_path, mmap_mode=mmap_mode)
        monitor = load_artifact(monitor_path) if monitor_path is not None else None
        service = PredictionService(loaded, batch_size=batch_size, monitor=monitor)
        cold_start = time.perf_counter() - start
    except BaseException as error:  # noqa: BLE001 - report, then die
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ready", {"cold_start_seconds": cold_start, "requires_group": service.requires_group}))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        try:
            if kind == "predict":
                _, X, group, y_true, sequence = message
                predictions = service.predict(X, group, y_true=y_true, sequence=sequence)
                conn.send(("ok", predictions))
            elif kind == "snapshot":
                stats = service.stats
                state = service.monitor.state_dict() if service.monitor is not None else None
                conn.send(
                    (
                        "ok",
                        {
                            "stats": (stats.n_requests, stats.n_records, stats.total_seconds),
                            "monitor_state": state,
                            "cold_start_seconds": cold_start,
                        },
                    )
                )
            elif kind == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown message kind {kind!r}"))
        except BaseException as error:  # noqa: BLE001 - keep the worker alive
            conn.send(("error", f"{type(error).__name__}: {error}"))
    service.close()
    conn.close()


class ProcessShardWorker:
    """A shard running in its own spawned process.

    The child loads the artifact itself — with ``mmap_mode="r"`` (the
    default) the payload arrays are memory-mapped from the shared extraction
    cache, so every worker after the first starts in O(manifest) time and
    the weights occupy one physical copy machine-wide.

    Parameters
    ----------
    artifact_path:
        Artifact directory (saved by ``save_artifact``) every worker serves.
    monitor_path:
        Optional artifact directory holding a baseline-installed
        :class:`FairnessMonitor`; each worker loads its own copy, and the
        parent loads one more as the merge template.
    batch_size:
        Micro-batch size of the in-worker service.
    mmap_mode:
        ``"r"`` (default) or ``None`` to materialize the payload per worker.
    start_timeout:
        Seconds to wait for the worker's ready handshake.
    """

    def __init__(
        self,
        artifact_path,
        *,
        shard_id: int = 0,
        monitor_path=None,
        batch_size: int = 2048,
        mmap_mode: Optional[str] = "r",
        start_timeout: float = 120.0,
    ) -> None:
        self.shard_id = int(shard_id)
        self._monitor_path = str(monitor_path) if monitor_path is not None else None
        self._template: Optional[FairnessMonitor] = None
        # One in-flight message per worker: the pipe is a strict
        # request/response channel, serialized under this lock.
        self._lock = threading.Lock()
        self._closed = False
        context = multiprocessing.get_context("spawn")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_conn, str(artifact_path), self._monitor_path, int(batch_size), mmap_mode),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        kind, payload = self._receive(timeout=start_timeout)
        if kind != "ready":
            self._abandon()
            raise FleetError(f"Shard worker {self.shard_id} failed to start: {payload}")
        self.cold_start_seconds = float(payload["cold_start_seconds"])
        self.requires_group = bool(payload["requires_group"])

    # ------------------------------------------------------------- plumbing
    def _receive(self, *, timeout: float = 120.0):
        if not self._conn.poll(timeout):
            self._abandon()
            raise FleetError(
                f"Shard worker {self.shard_id} did not answer within {timeout:.0f}s "
                "(worker process hung or died)"
            )
        try:
            return self._conn.recv()
        except EOFError:
            self._abandon()
            raise FleetError(
                f"Shard worker {self.shard_id} died mid-conversation (EOF on its pipe)"
            ) from None

    def _request(self, message, *, timeout: float = 120.0):
        with self._lock:
            if self._closed:
                raise FleetError(f"Shard worker {self.shard_id} is closed")
            try:
                self._conn.send(message)
            except (OSError, ValueError) as error:
                self._abandon()
                raise FleetError(
                    f"Cannot reach shard worker {self.shard_id}: {error}"
                ) from error
            kind, payload = self._receive(timeout=timeout)
        if kind == "error":
            raise FleetError(f"Shard worker {self.shard_id} failed: {payload}")
        return payload

    def _abandon(self) -> None:
        self._closed = True
        if self._process.is_alive():
            self._process.terminate()

    # ------------------------------------------------------------- protocol
    def predict(self, X, group=None, *, y_true=None, sequence=None) -> np.ndarray:
        return self._request(("predict", np.asarray(X), group, y_true, sequence))

    def monitor_template(self) -> Optional[FairnessMonitor]:
        if self._monitor_path is None:
            return None
        if self._template is None:
            template = load_artifact(self._monitor_path)
            if not isinstance(template, FairnessMonitor):
                raise FleetError(
                    f"monitor_path {self._monitor_path} holds "
                    f"{type(template).__name__}, not a FairnessMonitor"
                )
            self._template = template
        return self._template.config_clone()

    def snapshot(self) -> ShardSnapshot:
        payload = self._request(("snapshot",))
        n_requests, n_records, total_seconds = payload["stats"]
        return ShardSnapshot(
            shard_id=self.shard_id,
            stats=ServiceStats(int(n_requests), int(n_records), float(total_seconds)),
            monitor_state=payload["monitor_state"],
            cold_start_seconds=float(payload["cold_start_seconds"]),
        )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.send(("close",))
                self._conn.poll(5.0) and self._conn.recv()
            except (OSError, ValueError, EOFError):
                pass
        self._process.join(timeout=10.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()
