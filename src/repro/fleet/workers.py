"""Shard workers: the per-node half of the sharded serving fleet.

A *shard worker* owns one :class:`~repro.serving.PredictionService` (and its
per-shard :class:`~repro.serving.FairnessMonitor`) and exposes the narrow
surface the :class:`~repro.fleet.FleetService` front-end dispatches through:

* :class:`InlineShardWorker` — the service lives in this process.  Zero
  serialization overhead, deterministic, and what the sharded-replay
  bit-identity proof runs on;
* :class:`ProcessShardWorker` — the service lives in a spawned worker
  process that loads the artifact itself with
  ``load_artifact(..., mmap_mode="r")``, so N workers share one
  memory-mapped copy of the weights through the OS page cache and each
  worker's cold start is O(manifest), not O(weights).

Both speak the same protocol: ``predict`` (with the fleet's stream-wide
sequence stamp), ``snapshot`` (shard stats + the monitor's ``state_dict``
for fleet-level merging), ``monitor_template`` (an empty monitor carrying
the shard's configuration, the merge target), and ``close``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import FleetError
from repro.serving.artifacts import load_artifact, mmap_cache_stats
from repro.serving.monitor import FairnessMonitor
from repro.serving.service import PredictionService, ServiceStats
from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    events_enabled,
    get_event_log,
    get_registry,
    telemetry_enabled,
)


@dataclass(frozen=True)
class ShardSnapshot:
    """One shard's aggregation payload: stats plus mergeable monitor state.

    ``mmap_cache`` is the outcome of the shard's ``load_artifact``
    (``"hit"`` — a fresh extraction cache was memory-mapped directly,
    ``"miss"`` — the payload had to be extracted first, ``None`` — the
    shard did not load via mmap).  ``telemetry_state`` is the shard
    registry's mergeable ``state_dict`` (``None`` while telemetry is
    disabled, or when the shard records into the process-wide registry —
    merging that per shard would double-count).  ``events_state`` is the
    shard event log's mergeable ``state_dict`` under the same discipline:
    ``None`` unless the shard records into a private (or per-process) log.
    """

    shard_id: int
    stats: ServiceStats
    monitor_state: Optional[Dict[str, Any]]
    cold_start_seconds: float
    mmap_cache: Optional[str] = None
    telemetry_state: Optional[Dict[str, Any]] = None
    events_state: Optional[Dict[str, Any]] = None


class InlineShardWorker:
    """A shard whose :class:`PredictionService` runs in the caller's process.

    Parameters
    ----------
    service:
        The service this shard serves (typically with a fresh baseline-
        installed monitor attached).  The worker owns it: ``close`` closes
        it.
    shard_id:
        Position of this shard in the fleet (used in reports).
    """

    def __init__(self, service: PredictionService, *, shard_id: int = 0) -> None:
        self.service = service
        self.shard_id = int(shard_id)
        self.cold_start_seconds = 0.0
        self.mmap_cache: Optional[str] = None

    @classmethod
    def from_artifact(
        cls,
        path,
        *,
        shard_id: int = 0,
        mmap_mode: Optional[str] = "r",
        monitor: Optional[FairnessMonitor] = None,
        batch_size: int = 2048,
        max_workers: Optional[int] = None,
        telemetry: Optional[MetricsRegistry] = None,
        events: Optional[EventLog] = None,
    ) -> "InlineShardWorker":
        """Build a shard from a saved artifact (memory-mapped by default).

        The shard's service records into a **private** telemetry registry
        and a **private** event log (each inheriting the process-wide
        enabled flag) unless passed explicitly, so per-shard histograms and
        event logs stay mergeable without double counting against the
        process-wide instances.
        """
        start = time.perf_counter()
        before = mmap_cache_stats() if mmap_mode is not None else None
        loaded = load_artifact(path, mmap_mode=mmap_mode)
        if telemetry is None:
            telemetry = MetricsRegistry(enabled=telemetry_enabled())
        if events is None:
            events = EventLog(enabled=events_enabled())
        service = PredictionService(
            loaded,
            batch_size=batch_size,
            max_workers=max_workers,
            monitor=monitor,
            telemetry=telemetry,
            events=events,
            shard_id=shard_id,
        )
        worker = cls(service, shard_id=shard_id)
        worker.cold_start_seconds = time.perf_counter() - start
        if before is not None:
            # Process-cumulative counters, so concurrent loads in other
            # threads could blur the attribution; shard construction is
            # serial everywhere in this package.
            after = mmap_cache_stats()
            worker.mmap_cache = "miss" if after["extractions"] > before["extractions"] else "hit"
        return worker

    @property
    def requires_group(self) -> bool:
        return self.service.requires_group

    def predict(self, X, group=None, *, y_true=None, sequence=None, trace_id=None) -> np.ndarray:
        return self.service.predict(
            X, group, y_true=y_true, sequence=sequence, trace_id=trace_id
        )

    def monitor_template(self) -> Optional[FairnessMonitor]:
        monitor = self.service.monitor
        return monitor.config_clone() if monitor is not None else None

    def trace(self, *, trace_id: Optional[str] = None):
        """This shard's finished spans (optionally one trace id's worth)."""
        return self.service.telemetry.trace(trace_id=trace_id)

    def snapshot(self) -> ShardSnapshot:
        stats = self.service.stats
        monitor = self.service.monitor
        registry = self.service.telemetry
        events = self.service.events
        # Only a private registry is exported per shard: N inline shards
        # sharing the process-wide registry would each report the same
        # union state and the fleet merge would count it N times.  Same
        # rule for the event log.
        telemetry_state = (
            registry.state_dict()
            if registry.enabled and registry is not get_registry()
            else None
        )
        events_state = (
            events.state_dict() if events.enabled and events is not get_event_log() else None
        )
        return ShardSnapshot(
            shard_id=self.shard_id,
            stats=ServiceStats(stats.n_requests, stats.n_records, stats.total_seconds),
            monitor_state=monitor.state_dict() if monitor is not None else None,
            cold_start_seconds=self.cold_start_seconds,
            mmap_cache=self.mmap_cache,
            telemetry_state=telemetry_state,
            events_state=events_state,
        )

    def close(self) -> None:
        self.service.close()


def _shard_worker_main(
    conn,
    artifact_path,
    monitor_path,
    batch_size,
    mmap_mode,
    telemetry_on=False,
    shard_id=0,
    events_on=False,
) -> None:
    """Worker-process entry point: load, serve the pipe, snapshot on demand."""
    try:
        # The spawned process's default registry and event log are private
        # to this shard by construction, so the in-worker service records
        # straight into them and `snapshot` ships their mergeable states
        # back over the pipe.
        registry = get_registry()
        if telemetry_on:
            registry.enable()
        events = get_event_log()
        if events_on:
            events.enable()
        start = time.perf_counter()
        extractions_before = mmap_cache_stats()["extractions"] if mmap_mode is not None else None
        loaded = load_artifact(artifact_path, mmap_mode=mmap_mode)
        mmap_cache = None
        if extractions_before is not None:
            extracted = mmap_cache_stats()["extractions"] > extractions_before
            mmap_cache = "miss" if extracted else "hit"
        monitor = load_artifact(monitor_path) if monitor_path is not None else None
        service = PredictionService(
            loaded, batch_size=batch_size, monitor=monitor, shard_id=int(shard_id)
        )
        cold_start = time.perf_counter() - start
    except BaseException as error:  # noqa: BLE001 - report, then die
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(
        (
            "ready",
            {
                "cold_start_seconds": cold_start,
                "requires_group": service.requires_group,
                "mmap_cache": mmap_cache,
            },
        )
    )
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        try:
            if kind == "predict":
                _, X, group, y_true, sequence, trace_id = message
                predictions = service.predict(
                    X, group, y_true=y_true, sequence=sequence, trace_id=trace_id
                )
                conn.send(("ok", predictions))
            elif kind == "snapshot":
                stats = service.stats
                state = service.monitor.state_dict() if service.monitor is not None else None
                conn.send(
                    (
                        "ok",
                        {
                            "stats": (stats.n_requests, stats.n_records, stats.total_seconds),
                            "monitor_state": state,
                            "cold_start_seconds": cold_start,
                            "mmap_cache": mmap_cache,
                            "telemetry_state": (
                                registry.state_dict() if registry.enabled else None
                            ),
                            "events_state": events.state_dict() if events.enabled else None,
                        },
                    )
                )
            elif kind == "trace":
                _, trace_id = message
                conn.send(("ok", registry.trace(trace_id=trace_id)))
            elif kind == "close":
                conn.send(("ok", None))
                break
            else:
                conn.send(("error", f"unknown message kind {kind!r}"))
        except BaseException as error:  # noqa: BLE001 - keep the worker alive
            conn.send(("error", f"{type(error).__name__}: {error}"))
    service.close()
    conn.close()


class ProcessShardWorker:
    """A shard running in its own spawned process.

    The child loads the artifact itself — with ``mmap_mode="r"`` (the
    default) the payload arrays are memory-mapped from the shared extraction
    cache, so every worker after the first starts in O(manifest) time and
    the weights occupy one physical copy machine-wide.

    Parameters
    ----------
    artifact_path:
        Artifact directory (saved by ``save_artifact``) every worker serves.
    monitor_path:
        Optional artifact directory holding a baseline-installed
        :class:`FairnessMonitor`; each worker loads its own copy, and the
        parent loads one more as the merge template.
    batch_size:
        Micro-batch size of the in-worker service.
    mmap_mode:
        ``"r"`` (default) or ``None`` to materialize the payload per worker.
    start_timeout:
        Seconds to wait for the worker's ready handshake.
    telemetry:
        Whether the worker process records telemetry (its process-default
        registry is enabled and its mergeable state rides every snapshot).
        ``None`` (default) inherits the parent's current enabled flag at
        construction time.
    events:
        Whether the worker process records flight-recorder events (its
        process-default :class:`~repro.telemetry.EventLog` is enabled and
        its mergeable state rides every snapshot).  ``None`` (default)
        inherits the parent's current enabled flag at construction time.
        The *parent* additionally emits ``worker_lifecycle`` events into its
        own log when its log is enabled (``phase="start"`` at handshake,
        ``phase="close"`` stamped with the highest served sequence).
    """

    def __init__(
        self,
        artifact_path,
        *,
        shard_id: int = 0,
        monitor_path=None,
        batch_size: int = 2048,
        mmap_mode: Optional[str] = "r",
        start_timeout: float = 120.0,
        telemetry: Optional[bool] = None,
        events: Optional[bool] = None,
    ) -> None:
        self.shard_id = int(shard_id)
        self._monitor_path = str(monitor_path) if monitor_path is not None else None
        self._template: Optional[FairnessMonitor] = None
        # One in-flight message per worker: the pipe is a strict
        # request/response channel, serialized under this lock.
        self._lock = threading.Lock()
        self._closed = False
        # Crash forensics, mutated under self._lock: the sequence currently
        # awaiting its reply, and the lo..hi range of sequences this worker
        # has successfully served.
        self._inflight_sequence: Optional[int] = None
        self._served_lo: Optional[int] = None
        self._served_hi: Optional[int] = None
        telemetry_on = telemetry_enabled() if telemetry is None else bool(telemetry)
        events_on = events_enabled() if events is None else bool(events)
        context = multiprocessing.get_context("spawn")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                str(artifact_path),
                self._monitor_path,
                int(batch_size),
                mmap_mode,
                telemetry_on,
                self.shard_id,
                events_on,
            ),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        kind, payload = self._receive(timeout=start_timeout)
        if kind != "ready":
            self._abandon()
            raise FleetError(f"Shard worker {self.shard_id} failed to start: {payload}")
        self.cold_start_seconds = float(payload["cold_start_seconds"])
        self.requires_group = bool(payload["requires_group"])
        self.mmap_cache = payload.get("mmap_cache")
        self._emit_lifecycle("start", sequence=-1)

    # ------------------------------------------------------------- plumbing
    def _emit_lifecycle(self, phase: str, *, sequence: int) -> None:
        """Record a worker lifecycle edge in the *parent's* event log.

        Parent-side only (never the worker's private log), so inline-vs-
        process replay comparisons stay lifecycle-free on the shard side;
        ``start`` events use the sentinel sequence ``-1`` (nothing served
        yet), ``close`` events the highest sequence the worker served.
        """
        log = get_event_log()
        if log.enabled:
            log.emit(
                "worker_lifecycle",
                sequence=int(sequence),
                shard_id=self.shard_id,
                phase=phase,
                cold_start_seconds=round(self.cold_start_seconds, 4),
            )

    def _death_details(self) -> str:
        """Crash forensics for a dead/unresponsive worker's FleetError.

        Reaps the process (bounded join) for its exit code and reports the
        request sequence that was in flight plus the range this worker had
        already served — enough to diagnose a crashed shard from the
        exception alone.
        """
        self._process.join(timeout=1.0)
        exit_code = self._process.exitcode
        exit_part = (
            "process still alive" if exit_code is None else f"process exit code {exit_code}"
        )
        if self._inflight_sequence is not None:
            inflight_part = f"in-flight sequence {self._inflight_sequence}"
        else:
            inflight_part = "no sequenced request in flight"
        if self._served_lo is not None:
            served_part = f"served sequence range {self._served_lo}..{self._served_hi}"
        else:
            served_part = "no sequenced requests served"
        return f"shard {self.shard_id}; {exit_part}; {inflight_part}; {served_part}"

    def _receive(self, *, timeout: float = 120.0):
        if not self._conn.poll(timeout):
            details = self._death_details()
            self._abandon()
            raise FleetError(
                f"Shard worker {self.shard_id} did not answer within {timeout:.0f}s "
                f"(worker process hung or died; {details})"
            )
        try:
            return self._conn.recv()
        except EOFError:
            details = self._death_details()
            self._abandon()
            raise FleetError(
                f"Shard worker {self.shard_id} died mid-conversation "
                f"(EOF on its pipe; {details})"
            ) from None

    def _request(self, message, *, timeout: float = 120.0, sequence: Optional[int] = None):
        with self._lock:
            if self._closed:
                raise FleetError(f"Shard worker {self.shard_id} is closed")
            if sequence is not None:
                self._inflight_sequence = int(sequence)
            try:
                self._conn.send(message)
            except (OSError, ValueError) as error:
                details = self._death_details()
                self._abandon()
                raise FleetError(
                    f"Cannot reach shard worker {self.shard_id}: {error} ({details})"
                ) from error
            kind, payload = self._receive(timeout=timeout)
            if sequence is not None and kind == "ok":
                seq = int(sequence)
                self._served_lo = seq if self._served_lo is None else min(self._served_lo, seq)
                self._served_hi = seq if self._served_hi is None else max(self._served_hi, seq)
            self._inflight_sequence = None
        if kind == "error":
            raise FleetError(f"Shard worker {self.shard_id} failed: {payload}")
        return payload

    def _abandon(self) -> None:
        self._closed = True
        if self._process.is_alive():
            self._process.terminate()

    # ------------------------------------------------------------- protocol
    def predict(self, X, group=None, *, y_true=None, sequence=None, trace_id=None) -> np.ndarray:
        return self._request(
            ("predict", np.asarray(X), group, y_true, sequence, trace_id),
            sequence=sequence,
        )

    def trace(self, *, trace_id: Optional[str] = None):
        """The worker process's finished spans, fetched over the pipe."""
        return self._request(("trace", trace_id))

    def monitor_template(self) -> Optional[FairnessMonitor]:
        if self._monitor_path is None:
            return None
        if self._template is None:
            template = load_artifact(self._monitor_path)
            if not isinstance(template, FairnessMonitor):
                raise FleetError(
                    f"monitor_path {self._monitor_path} holds "
                    f"{type(template).__name__}, not a FairnessMonitor"
                )
            self._template = template
        return self._template.config_clone()

    def snapshot(self) -> ShardSnapshot:
        payload = self._request(("snapshot",))
        n_requests, n_records, total_seconds = payload["stats"]
        return ShardSnapshot(
            shard_id=self.shard_id,
            stats=ServiceStats(int(n_requests), int(n_records), float(total_seconds)),
            monitor_state=payload["monitor_state"],
            cold_start_seconds=float(payload["cold_start_seconds"]),
            mmap_cache=payload.get("mmap_cache"),
            telemetry_state=payload.get("telemetry_state"),
            events_state=payload.get("events_state"),
        )

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            served_hi = self._served_hi
            try:
                self._conn.send(("close",))
                self._conn.poll(5.0) and self._conn.recv()
            except (OSError, ValueError, EOFError):
                pass
        self._process.join(timeout=10.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()
        self._emit_lifecycle("close", sequence=-1 if served_hi is None else served_hi)
