"""``python -m repro.fleet`` — alias for the ``repro-fleet`` console script."""

from repro.fleet.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
