"""The :class:`Dataset` container used throughout the library.

A ``Dataset`` bundles the preprocessed numerical feature matrix, the binary
target, the binary group-membership vector (1 = minority), and bookkeeping
metadata (feature names, how many leading columns are "truly numeric" as
opposed to one-hot indicators).  It is deliberately immutable: interventions
never modify a dataset in place — the non-invasive ones return weights or
routing models, the invasive baseline (CAP) returns a *new* dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.validation import check_array, check_binary_labels


@dataclass(frozen=True)
class Dataset:
    """Preprocessed tabular dataset with group membership.

    Parameters
    ----------
    X:
        ``(n_samples, n_features)`` float matrix.  The first
        ``n_numeric_features`` columns are scaled numerical attributes; any
        remaining columns are one-hot indicators of categorical attributes.
    y:
        Binary target labels (0/1).
    group:
        Binary group membership (0 = majority ``W``, 1 = minority ``U``) —
        the output of the paper's mapping function ``g``.
    feature_names:
        One name per column of ``X``.
    n_numeric_features:
        Number of leading numerical columns; conformance constraints are
        derived over exactly these columns.
    name:
        Dataset name (used in reports).
    metadata:
        Free-form provenance information (generator parameters etc.).
    """

    X: np.ndarray
    y: np.ndarray
    group: np.ndarray
    feature_names: Tuple[str, ...] = ()
    n_numeric_features: Optional[int] = None
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        X = check_array(self.X, name="X")
        y = check_binary_labels(self.y, name="y")
        group = check_binary_labels(self.group, name="group")
        if y.shape[0] != X.shape[0] or group.shape[0] != X.shape[0]:
            raise DatasetError(
                "X, y, and group must have the same number of rows: "
                f"{X.shape[0]}, {y.shape[0]}, {group.shape[0]}"
            )
        names = tuple(self.feature_names) if self.feature_names else tuple(
            f"f{j}" for j in range(X.shape[1])
        )
        if len(names) != X.shape[1]:
            raise DatasetError(
                f"feature_names has {len(names)} entries, X has {X.shape[1]} columns"
            )
        n_numeric = self.n_numeric_features
        if n_numeric is None:
            n_numeric = X.shape[1]
        if not 0 <= n_numeric <= X.shape[1]:
            raise DatasetError("n_numeric_features must be between 0 and n_features")
        object.__setattr__(self, "X", X)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "group", group)
        object.__setattr__(self, "feature_names", names)
        object.__setattr__(self, "n_numeric_features", int(n_numeric))

    # ------------------------------------------------------------ properties
    @property
    def n_samples(self) -> int:
        """Number of rows."""
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns (numeric + one-hot)."""
        return int(self.X.shape[1])

    @property
    def numeric_X(self) -> np.ndarray:
        """The leading numerical columns (what conformance constraints profile)."""
        return self.X[:, : self.n_numeric_features]

    @property
    def minority_fraction(self) -> float:
        """Fraction of rows belonging to the minority group."""
        return float(np.mean(self.group == 1))

    @property
    def positive_rate(self) -> float:
        """Overall fraction of positive labels."""
        return float(np.mean(self.y == 1))

    def group_positive_rate(self, group_value: int) -> float:
        """Positive-label rate within one group (0 = majority, 1 = minority)."""
        mask = self.group == group_value
        if not mask.any():
            raise DatasetError(f"Dataset has no rows with group == {group_value}")
        return float(np.mean(self.y[mask] == 1))

    # ------------------------------------------------------------ selection
    def subset(self, mask_or_indices) -> "Dataset":
        """Return a new dataset restricted to the given rows."""
        indices = np.asarray(mask_or_indices)
        if indices.dtype == bool:
            if indices.shape[0] != self.n_samples:
                raise DatasetError("Boolean mask length must equal n_samples")
            indices = np.flatnonzero(indices)
        if indices.size == 0:
            raise DatasetError("Cannot create an empty dataset subset")
        return replace(
            self,
            X=self.X[indices],
            y=self.y[indices],
            group=self.group[indices],
        )

    def partition(self, *, group_value: Optional[int] = None, label: Optional[int] = None) -> "Dataset":
        """Return the sub-dataset matching a group value and/or label value."""
        mask = np.ones(self.n_samples, dtype=bool)
        if group_value is not None:
            mask &= self.group == group_value
        if label is not None:
            mask &= self.y == label
        if not mask.any():
            raise DatasetError(
                f"Empty partition for group={group_value!r}, label={label!r} in {self.name!r}"
            )
        return self.subset(mask)

    def partition_sizes(self) -> Dict[Tuple[int, int], int]:
        """Return ``{(group, label): count}`` for all four partitions."""
        sizes: Dict[Tuple[int, int], int] = {}
        for group_value in (0, 1):
            for label in (0, 1):
                mask = (self.group == group_value) & (self.y == label)
                sizes[(group_value, label)] = int(mask.sum())
        return sizes

    def with_name(self, name: str) -> "Dataset":
        """Return a copy carrying a different name."""
        return replace(self, name=name)

    def replace_labels(self, y: Sequence[int]) -> "Dataset":
        """Return a copy with a different label vector (used by invasive baselines)."""
        return replace(self, y=np.asarray(y))

    def describe(self) -> Dict[str, object]:
        """Summary statistics used by reports and the Fig. 4 reproduction."""
        return {
            "name": self.name,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "n_numeric_features": self.n_numeric_features,
            "minority_fraction": round(self.minority_fraction, 4),
            "positive_rate": round(self.positive_rate, 4),
            "minority_positive_rate": round(self.group_positive_rate(1), 4),
            "majority_positive_rate": round(self.group_positive_rate(0), 4),
        }
