"""Train/validation/deploy splitting of :class:`Dataset` objects.

The paper splits every dataset 70/15/15 into training, validation, and
deploy (test) sets, stratified implicitly by repeating the random split over
20 seeds.  :func:`split_dataset` performs one such split (stratified on the
label so small minority partitions stay populated) and returns a
:class:`DatasetSplit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import DatasetError
from repro.utils.random import check_random_state


@dataclass(frozen=True)
class DatasetSplit:
    """The three partitions of one train/validation/deploy split."""

    train: Dataset
    validation: Dataset
    deploy: Dataset

    def __iter__(self) -> Iterator[Dataset]:
        return iter((self.train, self.validation, self.deploy))

    @property
    def sizes(self) -> Tuple[int, int, int]:
        """Row counts of (train, validation, deploy)."""
        return (self.train.n_samples, self.validation.n_samples, self.deploy.n_samples)


def split_dataset(
    dataset: Dataset,
    *,
    train_size: float = 0.70,
    validation_size: float = 0.15,
    random_state=None,
    stratify_by_group: bool = True,
) -> DatasetSplit:
    """Split ``dataset`` into train/validation/deploy partitions.

    Parameters
    ----------
    dataset:
        The dataset to split.
    train_size, validation_size:
        Fractions for the training and validation partitions; the deploy
        partition receives the remainder.  Defaults follow the paper
        (70% / 15% / 15%).
    random_state:
        Seed or generator.
    stratify_by_group:
        Stratify the assignment on the (group, label) pair so every partition
        contains all four sub-populations whenever the input does.
    """
    if not 0.0 < train_size < 1.0 or not 0.0 < validation_size < 1.0:
        raise DatasetError("train_size and validation_size must be in (0, 1)")
    deploy_size = 1.0 - train_size - validation_size
    if deploy_size <= 0.0:
        raise DatasetError("train_size + validation_size must be < 1")

    rng = check_random_state(random_state)
    n_samples = dataset.n_samples
    assignment = np.empty(n_samples, dtype=np.int64)  # 0=train, 1=validation, 2=deploy

    if stratify_by_group:
        strata = dataset.group * 2 + dataset.y
    else:
        strata = dataset.y

    for stratum in np.unique(strata):
        indices = np.flatnonzero(strata == stratum)
        rng.shuffle(indices)
        n_stratum = indices.size
        n_train = int(round(train_size * n_stratum))
        n_validation = int(round(validation_size * n_stratum))
        # Ensure every partition receives at least one row from strata that
        # are large enough to spare them.
        if n_stratum >= 3:
            n_train = min(max(n_train, 1), n_stratum - 2)
            n_validation = min(max(n_validation, 1), n_stratum - n_train - 1)
        assignment[indices[:n_train]] = 0
        assignment[indices[n_train : n_train + n_validation]] = 1
        assignment[indices[n_train + n_validation :]] = 2

    for partition in (0, 1, 2):
        if not np.any(assignment == partition):
            raise DatasetError(
                "Dataset is too small to produce non-empty train/validation/deploy partitions"
            )

    return DatasetSplit(
        train=dataset.subset(assignment == 0),
        validation=dataset.subset(assignment == 1),
        deploy=dataset.subset(assignment == 2),
    )
