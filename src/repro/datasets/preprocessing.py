"""Raw-table preprocessing: null removal, scaling, one-hot encoding.

The paper's experimental steps preprocess every dataset the same way:
remove null values, normalize numerical attributes, and one-hot encode
categorical attributes.  :class:`RawTable` represents the pre-processing
input (numeric columns possibly containing NaN, plus object-valued
categorical columns); :class:`PreprocessingPipeline` applies the paper's
steps and produces a :class:`repro.datasets.table.Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import DatasetError
from repro.learners.encoder import OneHotEncoder
from repro.learners.scaler import MinMaxScaler, StandardScaler


@dataclass
class RawTable:
    """A not-yet-preprocessed table.

    Parameters
    ----------
    numeric:
        ``(n_rows, n_numeric)`` float matrix; may contain NaN for missing
        values.
    categorical:
        ``(n_rows, n_categorical)`` object matrix of category values; may
        contain ``None`` for missing values.  May be empty (zero columns).
    y:
        Binary labels.
    group:
        Binary group membership (1 = minority).
    numeric_names, categorical_names:
        Optional column names.
    name:
        Table name, propagated to the resulting :class:`Dataset`.
    """

    numeric: np.ndarray
    categorical: np.ndarray
    y: np.ndarray
    group: np.ndarray
    numeric_names: Tuple[str, ...] = ()
    categorical_names: Tuple[str, ...] = ()
    name: str = "raw"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.numeric = np.asarray(self.numeric, dtype=np.float64)
        if self.numeric.ndim == 1:
            self.numeric = self.numeric.reshape(-1, 1)
        self.categorical = np.asarray(self.categorical, dtype=object)
        if self.categorical.ndim == 1:
            self.categorical = self.categorical.reshape(-1, 1)
        if self.categorical.size == 0 and self.categorical.shape[0] == 0:
            # A fully-empty categorical block (e.g. []) means "no categorical
            # columns"; normalize it to (n_rows, 0).  A (k, 0) block with a
            # different row count is left as-is so the length check below
            # reports the inconsistency.
            self.categorical = np.empty((self.numeric.shape[0], 0), dtype=object)
        self.y = np.asarray(self.y).ravel()
        self.group = np.asarray(self.group).ravel()
        n_rows = self.numeric.shape[0]
        if not (self.categorical.shape[0] == n_rows == self.y.shape[0] == self.group.shape[0]):
            raise DatasetError("All RawTable components must have the same number of rows")
        if not self.numeric_names:
            self.numeric_names = tuple(f"num{j}" for j in range(self.numeric.shape[1]))
        if not self.categorical_names:
            self.categorical_names = tuple(f"cat{j}" for j in range(self.categorical.shape[1]))
        if len(self.numeric_names) != self.numeric.shape[1]:
            raise DatasetError("numeric_names length must match the numeric column count")
        if len(self.categorical_names) != self.categorical.shape[1]:
            raise DatasetError("categorical_names length must match the categorical column count")

    @property
    def n_rows(self) -> int:
        return int(self.numeric.shape[0])

    def null_mask(self) -> np.ndarray:
        """Boolean mask of rows containing at least one missing value."""
        numeric_null = np.isnan(self.numeric).any(axis=1) if self.numeric.shape[1] else np.zeros(
            self.n_rows, dtype=bool
        )
        if self.categorical.shape[1]:
            categorical_null = np.array(
                [any(value is None for value in row) for row in self.categorical], dtype=bool
            )
        else:
            categorical_null = np.zeros(self.n_rows, dtype=bool)
        return numeric_null | categorical_null


@dataclass
class PreprocessingPipeline:
    """Apply the paper's preprocessing steps to a :class:`RawTable`.

    Parameters
    ----------
    scaler:
        ``"minmax"`` (default, matching "normalizing numerical attributes"),
        ``"standard"``, or ``"none"``.
    drop_nulls:
        Remove rows with any missing value (the paper's policy).  When
        ``False``, numeric NaNs are imputed with the column median and
        categorical ``None`` becomes the explicit category ``"missing"``.
    """

    scaler: str = "minmax"
    drop_nulls: bool = True

    def __post_init__(self) -> None:
        if self.scaler not in ("minmax", "standard", "none"):
            raise DatasetError("scaler must be 'minmax', 'standard', or 'none'")

    def fit_transform(self, table: RawTable) -> Dataset:
        """Preprocess ``table`` into a model-ready :class:`Dataset`."""
        numeric = table.numeric
        categorical = table.categorical
        y = table.y
        group = table.group

        if self.drop_nulls:
            keep = ~table.null_mask()
            if not keep.any():
                raise DatasetError("All rows contain null values; nothing left after dropping")
            numeric, categorical, y, group = numeric[keep], categorical[keep], y[keep], group[keep]
        else:
            numeric = self._impute_numeric(numeric)
            categorical = self._impute_categorical(categorical)

        blocks = []
        names: list = []
        if numeric.shape[1]:
            scaled = self._scale(numeric)
            blocks.append(scaled)
            names.extend(table.numeric_names)
        if categorical.shape[1]:
            encoder = OneHotEncoder().fit(categorical)
            encoded = encoder.transform(categorical)
            blocks.append(encoded)
            for column_name, categories in zip(table.categorical_names, encoder.categories_):
                names.extend(f"{column_name}={value}" for value in categories)
        if not blocks:
            raise DatasetError("RawTable has no attribute columns")

        X = np.hstack(blocks)
        return Dataset(
            X=X,
            y=y,
            group=group,
            feature_names=tuple(names),
            n_numeric_features=numeric.shape[1],
            name=table.name,
            metadata=dict(table.metadata),
        )

    # ------------------------------------------------------------ internals
    def _scale(self, numeric: np.ndarray) -> np.ndarray:
        if self.scaler == "minmax":
            return MinMaxScaler().fit_transform(numeric)
        if self.scaler == "standard":
            return StandardScaler().fit_transform(numeric)
        return numeric.copy()

    @staticmethod
    def _impute_numeric(numeric: np.ndarray) -> np.ndarray:
        if numeric.shape[1] == 0:
            return numeric
        imputed = numeric.copy()
        for j in range(imputed.shape[1]):
            column = imputed[:, j]
            missing = np.isnan(column)
            if missing.any():
                fill = np.nanmedian(column) if not missing.all() else 0.0
                column[missing] = fill
        return imputed

    @staticmethod
    def _impute_categorical(categorical: np.ndarray) -> np.ndarray:
        if categorical.shape[1] == 0:
            return categorical
        imputed = categorical.copy()
        for row in range(imputed.shape[0]):
            for col in range(imputed.shape[1]):
                if imputed[row, col] is None:
                    imputed[row, col] = "missing"
        return imputed


def preprocess(table: RawTable, *, scaler: str = "minmax", drop_nulls: bool = True) -> Dataset:
    """Convenience wrapper around :class:`PreprocessingPipeline`."""
    return PreprocessingPipeline(scaler=scaler, drop_nulls=drop_nulls).fit_transform(table)
