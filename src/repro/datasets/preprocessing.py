"""Raw-table preprocessing: null removal, scaling, one-hot encoding.

The paper's experimental steps preprocess every dataset the same way:
remove null values, normalize numerical attributes, and one-hot encode
categorical attributes.  :class:`RawTable` represents the pre-processing
input (numeric columns possibly containing NaN, plus object-valued
categorical columns); :class:`PreprocessingPipeline` applies the paper's
steps and produces a :class:`repro.datasets.table.Dataset`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import DatasetError, NotFittedError
from repro.learners.base import BaseEstimator
from repro.learners.encoder import OneHotEncoder
from repro.learners.scaler import MinMaxScaler, StandardScaler

_IS_NONE = np.frompyfunc(lambda value: value is None, 1, 1)


@dataclass
class RawTable:
    """A not-yet-preprocessed table.

    Parameters
    ----------
    numeric:
        ``(n_rows, n_numeric)`` float matrix; may contain NaN for missing
        values.
    categorical:
        ``(n_rows, n_categorical)`` object matrix of category values; may
        contain ``None`` for missing values.  May be empty (zero columns).
    y:
        Binary labels.
    group:
        Binary group membership (1 = minority).
    numeric_names, categorical_names:
        Optional column names.
    name:
        Table name, propagated to the resulting :class:`Dataset`.
    """

    numeric: np.ndarray
    categorical: np.ndarray
    y: np.ndarray
    group: np.ndarray
    numeric_names: Tuple[str, ...] = ()
    categorical_names: Tuple[str, ...] = ()
    name: str = "raw"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.numeric = np.asarray(self.numeric, dtype=np.float64)
        if self.numeric.ndim == 1:
            self.numeric = self.numeric.reshape(-1, 1)
        self.categorical = np.asarray(self.categorical, dtype=object)
        if self.categorical.ndim == 1:
            self.categorical = self.categorical.reshape(-1, 1)
        if self.categorical.size == 0 and self.categorical.shape[0] == 0:
            # A fully-empty categorical block (e.g. []) means "no categorical
            # columns"; normalize it to (n_rows, 0).  A (k, 0) block with a
            # different row count is left as-is so the length check below
            # reports the inconsistency.
            self.categorical = np.empty((self.numeric.shape[0], 0), dtype=object)
        self.y = np.asarray(self.y).ravel()
        self.group = np.asarray(self.group).ravel()
        n_rows = self.numeric.shape[0]
        if not (self.categorical.shape[0] == n_rows == self.y.shape[0] == self.group.shape[0]):
            raise DatasetError("All RawTable components must have the same number of rows")
        if not self.numeric_names:
            self.numeric_names = tuple(f"num{j}" for j in range(self.numeric.shape[1]))
        if not self.categorical_names:
            self.categorical_names = tuple(f"cat{j}" for j in range(self.categorical.shape[1]))
        if len(self.numeric_names) != self.numeric.shape[1]:
            raise DatasetError("numeric_names length must match the numeric column count")
        if len(self.categorical_names) != self.categorical.shape[1]:
            raise DatasetError("categorical_names length must match the categorical column count")

    @property
    def n_rows(self) -> int:
        return int(self.numeric.shape[0])

    def null_mask(self) -> np.ndarray:
        """Boolean mask of rows containing at least one missing value."""
        numeric_null = np.isnan(self.numeric).any(axis=1) if self.numeric.shape[1] else np.zeros(
            self.n_rows, dtype=bool
        )
        if self.categorical.shape[1]:
            categorical_null = _IS_NONE(self.categorical).astype(bool).any(axis=1)
        else:
            categorical_null = np.zeros(self.n_rows, dtype=bool)
        return numeric_null | categorical_null


@dataclass
class PreprocessingPipeline(BaseEstimator):
    """Apply the paper's preprocessing steps to a :class:`RawTable`.

    Parameters
    ----------
    scaler:
        ``"minmax"`` (default, matching "normalizing numerical attributes"),
        ``"standard"``, or ``"none"``.
    drop_nulls:
        Remove rows with any missing value (the paper's policy).  When
        ``False``, numeric NaNs are imputed with the column median and
        categorical ``None`` becomes the explicit category ``"missing"``.

    After :meth:`fit_transform` the pipeline keeps its fitted state — the
    scaler statistics, the one-hot vocabulary, and the numeric imputation
    fills — so *new* records can be pushed through the exact fit-time
    transform with :meth:`transform` / :meth:`transform_features` (the
    serving path).  As a :class:`~repro.learners.base.BaseEstimator` with
    declared ``_state_attributes`` it persists through
    :mod:`repro.serving.artifacts` like any estimator.

    Attributes (after :meth:`fit_transform`)
    ----------------------------------------
    scaler_ :
        The fitted numeric scaler (``None`` when ``scaler="none"`` or the
        table had no numeric columns).
    encoder_ :
        The fitted :class:`OneHotEncoder` (``None`` without categoricals).
    numeric_fill_ :
        Per-column medians of the fit-time numeric block, used to impute
        missing numeric values in serving records.
    feature_names_ :
        Output feature names, matching the produced dataset columns.
    """

    scaler: str = "minmax"
    drop_nulls: bool = True

    _state_attributes = (
        "scaler_",
        "encoder_",
        "numeric_fill_",
        "n_numeric_",
        "n_categorical_",
        "feature_names_",
    )

    def __post_init__(self) -> None:
        if self.scaler not in ("minmax", "standard", "none"):
            raise DatasetError("scaler must be 'minmax', 'standard', or 'none'")

    def fit_transform(self, table: RawTable) -> Dataset:
        """Preprocess ``table`` into a model-ready :class:`Dataset`."""
        numeric = table.numeric
        categorical = table.categorical
        y = table.y
        group = table.group

        if self.drop_nulls:
            keep = ~table.null_mask()
            if not keep.any():
                raise DatasetError("All rows contain null values; nothing left after dropping")
            numeric, categorical, y, group = numeric[keep], categorical[keep], y[keep], group[keep]
        else:
            numeric = self._impute_numeric(numeric)
            categorical = self._impute_categorical(categorical)

        self.n_numeric_ = int(numeric.shape[1])
        self.n_categorical_ = int(categorical.shape[1])
        self.numeric_fill_ = (
            np.median(numeric, axis=0) if numeric.shape[1] else np.empty(0, dtype=np.float64)
        )

        blocks = []
        names: list = []
        self.scaler_ = None
        self.encoder_ = None
        if numeric.shape[1]:
            blocks.append(self._fit_scale(numeric))
            names.extend(table.numeric_names)
        if categorical.shape[1]:
            self.encoder_ = OneHotEncoder().fit(categorical)
            encoded = self.encoder_.transform(categorical)
            blocks.append(encoded)
            for column_name, categories in zip(table.categorical_names, self.encoder_.categories_):
                names.extend(f"{column_name}={value}" for value in categories)
        if not blocks:
            raise DatasetError("RawTable has no attribute columns")
        self.feature_names_ = tuple(names)

        X = np.hstack(blocks)
        return Dataset(
            X=X,
            y=y,
            group=group,
            feature_names=self.feature_names_,
            n_numeric_features=numeric.shape[1],
            name=table.name,
            metadata=dict(table.metadata),
        )

    # ------------------------------------------------------------- serving
    def transform(self, table: RawTable) -> Dataset:
        """Preprocess *new* records with the fit-time state (no refitting).

        Applies the same null policy as :meth:`fit_transform` (``drop_nulls``
        removes rows, so the result may have fewer rows than ``table``); use
        :meth:`transform_features` when per-record alignment matters.
        """
        self._check_fitted()
        numeric, categorical = table.numeric, table.categorical
        y, group = table.y, table.group
        if self.drop_nulls:
            keep = ~table.null_mask()
            if not keep.any():
                raise DatasetError("All rows contain null values; nothing left after dropping")
            numeric, categorical, y, group = numeric[keep], categorical[keep], y[keep], group[keep]
        X = self.transform_features(numeric, categorical)
        return Dataset(
            X=X,
            y=y,
            group=group,
            feature_names=self.feature_names_,
            n_numeric_features=self.n_numeric_,
            name=table.name,
            metadata=dict(table.metadata),
        )

    def transform_features(self, numeric, categorical=None) -> np.ndarray:
        """Vectorized serving transform: raw columns → model-ready feature rows.

        Missing numeric values are imputed with the fit-time column medians
        and missing categories become the explicit ``"missing"`` category
        (unseen categories encode as all-zero, the encoder's serving
        behaviour), so the output always has one row per input record.
        """
        self._check_fitted()
        numeric = np.asarray(numeric, dtype=np.float64)
        if numeric.ndim == 1:
            numeric = numeric.reshape(-1, 1)
        if numeric.shape[1] != self.n_numeric_:
            raise DatasetError(
                f"Records have {numeric.shape[1]} numeric columns, "
                f"pipeline was fitted with {self.n_numeric_}"
            )
        if categorical is None:
            categorical = np.empty((numeric.shape[0], 0), dtype=object)
        categorical = np.asarray(categorical, dtype=object)
        if categorical.ndim == 1:
            categorical = categorical.reshape(-1, 1)
        if categorical.shape[1] != self.n_categorical_:
            raise DatasetError(
                f"Records have {categorical.shape[1]} categorical columns, "
                f"pipeline was fitted with {self.n_categorical_}"
            )

        blocks = []
        if self.n_numeric_:
            block = numeric.copy()
            missing = np.isnan(block)
            if missing.any():
                block[missing] = np.broadcast_to(self.numeric_fill_, block.shape)[missing]
            blocks.append(self.scaler_.transform(block) if self.scaler_ is not None else block)
        if self.n_categorical_:
            blocks.append(self.encoder_.transform(self._impute_categorical(categorical)))
        return np.hstack(blocks)

    def _check_fitted(self, attribute: str = "feature_names_") -> None:
        if not hasattr(self, attribute):
            raise NotFittedError(
                "PreprocessingPipeline is not fitted yet; call fit_transform() first"
            )

    # ------------------------------------------------------------ internals
    def _fit_scale(self, numeric: np.ndarray) -> np.ndarray:
        if self.scaler == "minmax":
            self.scaler_ = MinMaxScaler().fit(numeric)
        elif self.scaler == "standard":
            self.scaler_ = StandardScaler().fit(numeric)
        else:
            return numeric.copy()
        return self.scaler_.transform(numeric)

    @staticmethod
    def _impute_numeric(numeric: np.ndarray) -> np.ndarray:
        if numeric.shape[1] == 0:
            return numeric
        imputed = numeric.copy()
        for j in range(imputed.shape[1]):
            column = imputed[:, j]
            missing = np.isnan(column)
            if missing.any():
                fill = np.nanmedian(column) if not missing.all() else 0.0
                column[missing] = fill
        return imputed

    @staticmethod
    def _impute_categorical(categorical: np.ndarray) -> np.ndarray:
        if categorical.shape[1] == 0:
            return categorical
        # Vectorized None detection: this runs per serving request through
        # transform_features, so a Python double loop would dominate the
        # latency of categorical-heavy traffic.
        missing = _IS_NONE(categorical).astype(bool)
        if not missing.any():
            return categorical
        imputed = categorical.copy()
        imputed[missing] = "missing"
        return imputed


def preprocess(table: RawTable, *, scaler: str = "minmax", drop_nulls: bool = True) -> Dataset:
    """Convenience wrapper around :class:`PreprocessingPipeline`."""
    return PreprocessingPipeline(scaler=scaler, drop_nulls=drop_nulls).fit_transform(table)
