"""Synthetic dataset generators.

Three generators live here:

* :func:`make_classification` — a reimplementation of the scikit-learn
  generator the paper uses for its synthetic study: class-conditional Gaussian
  clusters placed on the vertices of a hypercube in an informative subspace,
  plus redundant (linear-combination) features, noise features, and label
  flips.
* :func:`make_drifted_groups` — the Fig. 10 scenario: a majority and a
  minority group occupying overlapping regions of the input space but with
  *dissimilar* class-conditional distributions (covariate + concept drift
  across groups), so that a single model cannot conform to both groups.
* :func:`resample_dataset` — a *shift-parameterized* resampler: draw a new
  dataset from an existing one with a target minority fraction and/or
  positive-label rate, the primitive behind the group-/label-shift traffic
  scenarios in :mod:`repro.simulate` (which share its
  :func:`prevalence_weights` math).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import DatasetError
from repro.utils.random import check_random_state


def make_classification(
    n_samples: int = 1000,
    n_features: int = 6,
    n_informative: int = 3,
    n_redundant: int = 1,
    class_sep: float = 1.0,
    flip_y: float = 0.01,
    weights: Optional[Tuple[float, float]] = None,
    random_state=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a random binary classification problem.

    Follows the construction of ``sklearn.datasets.make_classification``:
    one Gaussian cluster per class centred on opposite hypercube vertices of
    an informative subspace (scaled by ``class_sep``), linear combinations of
    the informative features as redundant features, standard-normal noise for
    the remaining features, and a ``flip_y`` fraction of labels flipped.

    Returns
    -------
    (X, y):
        Feature matrix of shape ``(n_samples, n_features)`` and 0/1 labels.
    """
    if n_samples < 2:
        raise DatasetError("n_samples must be at least 2")
    if n_informative < 1:
        raise DatasetError("n_informative must be at least 1")
    if n_informative + n_redundant > n_features:
        raise DatasetError("n_informative + n_redundant cannot exceed n_features")
    if not 0.0 <= flip_y < 1.0:
        raise DatasetError("flip_y must be in [0, 1)")
    if weights is not None:
        if len(weights) != 2 or abs(sum(weights) - 1.0) > 1e-9 or min(weights) <= 0:
            raise DatasetError("weights must be two positive class proportions summing to 1")

    rng = check_random_state(random_state)
    class_weights = weights if weights is not None else (0.5, 0.5)
    n_positive = int(round(class_weights[1] * n_samples))
    n_positive = min(max(n_positive, 1), n_samples - 1)
    y = np.zeros(n_samples, dtype=np.int64)
    y[:n_positive] = 1
    rng.shuffle(y)

    centroid = rng.normal(0.0, 1.0, size=n_informative)
    centroid = centroid / max(np.linalg.norm(centroid), 1e-12) * class_sep

    X = np.empty((n_samples, n_features), dtype=np.float64)
    informative = rng.normal(0.0, 1.0, size=(n_samples, n_informative))
    informative[y == 1] += centroid
    informative[y == 0] -= centroid
    X[:, :n_informative] = informative

    if n_redundant > 0:
        mixing = rng.normal(0.0, 1.0, size=(n_informative, n_redundant))
        X[:, n_informative : n_informative + n_redundant] = informative @ mixing

    n_noise = n_features - n_informative - n_redundant
    if n_noise > 0:
        X[:, n_informative + n_redundant :] = rng.normal(0.0, 1.0, size=(n_samples, n_noise))

    if flip_y > 0:
        flip_mask = rng.random(n_samples) < flip_y
        y[flip_mask] = 1 - y[flip_mask]

    return X, y


def make_drifted_groups(
    n_majority: int = 8000,
    n_minority: int = 3000,
    n_features: int = 6,
    drift_angle: float = 75.0,
    class_sep: float = 1.3,
    group_shift: float = 3.0,
    minority_positive_rate: float = 0.5,
    majority_positive_rate: float = 0.5,
    flip_y: float = 0.02,
    name: str = "synthetic",
    random_state=None,
) -> Dataset:
    """Generate the Fig. 10 drift scenario as a :class:`Dataset`.

    The two groups display dissimilar attribute distributions: the minority's
    class boundary is rotated by ``drift_angle`` degrees relative to the
    majority's, and the whole minority group is shifted by ``group_shift``
    toward the *negative* side of the majority's boundary.  A single model
    trained on the pooled data therefore conforms to the majority and
    under-selects the minority (fewer positive outputs), which is exactly the
    regime where the model-splitting strategy (DiffFair) is expected to win.

    Parameters
    ----------
    n_majority, n_minority:
        Group sizes (the paper uses 8,000 and 3,000).
    n_features:
        Total number of numerical attributes; the drift is constructed in the
        first two dimensions and the rest are noise.
    drift_angle:
        Rotation (degrees) between the majority and minority class boundaries.
    class_sep:
        Distance of class centroids from the group centre.
    group_shift:
        Displacement of the minority group's centre along the negative
        majority direction (0 places both groups on the same centre).
    minority_positive_rate, majority_positive_rate:
        Positive-label proportions per group (0.5/0.5 in the paper).
    flip_y:
        Fraction of labels flipped at random.
    name:
        Dataset name.
    random_state:
        Seed or generator.
    """
    if n_features < 2:
        raise DatasetError("make_drifted_groups needs at least 2 features")
    if n_majority < 4 or n_minority < 4:
        raise DatasetError("each group needs at least 4 samples")
    if group_shift < 0:
        raise DatasetError("group_shift must be non-negative")
    rng = check_random_state(random_state)

    def group_block(
        n_rows: int,
        positive_rate: float,
        direction: np.ndarray,
        centre: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        n_positive = int(round(positive_rate * n_rows))
        n_positive = min(max(n_positive, 1), n_rows - 1)
        labels = np.zeros(n_rows, dtype=np.int64)
        labels[:n_positive] = 1
        rng.shuffle(labels)
        features = rng.normal(0.0, 1.0, size=(n_rows, n_features))
        offsets = np.tile(centre, (n_rows, 1))
        offsets[labels == 1] += class_sep * direction
        offsets[labels == 0] -= class_sep * direction
        features[:, :2] += offsets
        return features, labels

    majority_direction = np.array([1.0, 0.0])
    angle = np.deg2rad(drift_angle)
    minority_direction = np.array([np.cos(angle), np.sin(angle)])
    majority_centre = np.zeros(2)
    minority_centre = -group_shift * majority_direction

    X_majority, y_majority = group_block(
        n_majority, majority_positive_rate, majority_direction, majority_centre
    )
    X_minority, y_minority = group_block(
        n_minority, minority_positive_rate, minority_direction, minority_centre
    )

    X = np.vstack([X_majority, X_minority])
    y = np.concatenate([y_majority, y_minority])
    group = np.concatenate(
        [np.zeros(n_majority, dtype=np.int64), np.ones(n_minority, dtype=np.int64)]
    )

    if flip_y > 0:
        flip_mask = rng.random(X.shape[0]) < flip_y
        y = y.copy()
        y[flip_mask] = 1 - y[flip_mask]

    permutation = rng.permutation(X.shape[0])
    feature_names = tuple(f"x{j}" for j in range(n_features))
    return Dataset(
        X=X[permutation],
        y=y[permutation],
        group=group[permutation],
        feature_names=feature_names,
        n_numeric_features=n_features,
        name=name,
        metadata={
            "generator": "make_drifted_groups",
            "drift_angle": drift_angle,
            "class_sep": class_sep,
            "group_shift": group_shift,
            "n_majority": n_majority,
            "n_minority": n_minority,
        },
    )


def prevalence_weights(indicator: np.ndarray, target_rate: float) -> np.ndarray:
    """Per-row sampling weights that move a binary attribute to ``target_rate``.

    Rows where ``indicator == 1`` receive weight ``target / current`` and the
    rest ``(1 - target) / (1 - current)``, so sampling *with replacement*
    under these weights yields an expected prevalence of exactly
    ``target_rate``.  A target a degenerate pool cannot reach (no rows with
    the needed value) raises :class:`DatasetError`.
    """
    indicator = np.asarray(indicator).ravel()
    if not 0.0 <= target_rate <= 1.0:
        raise DatasetError("target_rate must be in [0, 1]")
    current = float(np.mean(indicator == 1))
    weights = np.ones(indicator.shape[0], dtype=np.float64)
    if target_rate > 0 and current == 0.0:
        raise DatasetError("cannot raise prevalence: no rows with indicator == 1")
    if target_rate < 1 and current == 1.0:
        raise DatasetError("cannot lower prevalence: no rows with indicator == 0")
    if current > 0:
        weights[indicator == 1] = target_rate / current
    if current < 1:
        weights[indicator == 0] = (1.0 - target_rate) / (1.0 - current)
    return weights


def joint_prevalence_weights(
    group: np.ndarray,
    y: np.ndarray,
    minority_fraction: float,
    target_positive_rate: float,
    *,
    max_iterations: int = 500,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """Sampling weights hitting a group marginal *and* a label marginal at once.

    Independent per-axis :func:`prevalence_weights` compound on pools where
    group and label are correlated (upweighting the minority also drags the
    positive rate), so the joint problem is solved by iterative proportional
    fitting over the four (group, label) cell masses: alternate rescaling of
    the group rows and the label columns until both marginals match.  Targets
    a pool cannot jointly reach (e.g. unequal marginals on a pool where
    ``group == y`` row-for-row) raise :class:`DatasetError`.
    """
    group = np.asarray(group).ravel()
    y = np.asarray(y).ravel()
    for name, target in (
        ("minority_fraction", minority_fraction),
        ("target_positive_rate", target_positive_rate),
    ):
        if not 0.0 <= target <= 1.0:
            raise DatasetError(f"{name} must be in [0, 1]")
    pool = np.empty((2, 2), dtype=np.float64)
    for g in (0, 1):
        for label in (0, 1):
            pool[g, label] = np.sum((group == g) & (y == label))
    pool /= group.shape[0]
    mass = pool.copy()
    row_targets = (1.0 - minority_fraction, minority_fraction)
    column_targets = (1.0 - target_positive_rate, target_positive_rate)

    def rescale(axis: int, targets) -> None:
        sums = mass.sum(axis=1 - axis)
        for index, target in enumerate(targets):
            cells = (index, slice(None)) if axis == 0 else (slice(None), index)
            if target == 0.0:
                mass[cells] = 0.0
            elif sums[index] == 0.0:
                kind = ("group", "label")[axis]
                raise DatasetError(
                    f"cannot reach a {kind} prevalence of {target}: the pool has "
                    f"no rows with {kind} == {index}"
                )
            else:
                mass[cells] *= target / sums[index]

    for _ in range(max_iterations):
        rescale(0, row_targets)
        rescale(1, column_targets)
        row_error = np.abs(mass.sum(axis=1) - row_targets).max()
        column_error = np.abs(mass.sum(axis=0) - column_targets).max()
        if max(row_error, column_error) < tolerance:
            break
    else:
        raise DatasetError(
            f"minority_fraction={minority_fraction} and "
            f"positive_rate={target_positive_rate} are not jointly achievable "
            "on this pool (its (group, label) cells cannot carry both marginals)"
        )
    weights = np.zeros(group.shape[0], dtype=np.float64)
    for g in (0, 1):
        for label in (0, 1):
            if pool[g, label] > 0:
                weights[(group == g) & (y == label)] = mass[g, label] / pool[g, label]
    return weights


def resample_dataset(
    dataset: Dataset,
    *,
    minority_fraction: Optional[float] = None,
    positive_rate: Optional[float] = None,
    n_samples: Optional[int] = None,
    random_state=None,
) -> Dataset:
    """Draw a shifted copy of ``dataset`` by weighted resampling.

    Rows are sampled with replacement under :func:`prevalence_weights` (one
    target) or :func:`joint_prevalence_weights` (both targets — solved
    jointly, so each requested marginal is achieved in expectation even when
    group and label are correlated in the pool), while every tuple remains a
    genuine tuple of the source: a pure prevalence shift — ``P(group)`` /
    ``P(y)`` move, ``P(X | group, y)`` does not.
    """
    if minority_fraction is None and positive_rate is None and n_samples is None:
        raise DatasetError(
            "resample_dataset needs minority_fraction, positive_rate, or n_samples"
        )
    rng = check_random_state(random_state)
    if minority_fraction is not None and positive_rate is not None:
        weights = joint_prevalence_weights(
            dataset.group, dataset.y, minority_fraction, positive_rate
        )
    elif minority_fraction is not None:
        weights = prevalence_weights(dataset.group, minority_fraction)
    elif positive_rate is not None:
        weights = prevalence_weights(dataset.y, positive_rate)
    else:
        weights = np.ones(dataset.n_samples, dtype=np.float64)
    size = dataset.n_samples if n_samples is None else int(n_samples)
    if size < 1:
        raise DatasetError("n_samples must be at least 1")
    probabilities = weights / weights.sum()
    indices = rng.choice(dataset.n_samples, size=size, replace=True, p=probabilities)
    resampled = dataset.subset(indices)
    metadata = dict(resampled.metadata)
    metadata["resampled_from"] = dataset.name
    if minority_fraction is not None:
        metadata["target_minority_fraction"] = float(minority_fraction)
    if positive_rate is not None:
        metadata["target_positive_rate"] = float(positive_rate)
    return replace(resampled, metadata=metadata)
