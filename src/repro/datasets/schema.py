"""Schema descriptions for benchmark datasets.

A :class:`DatasetSpec` records the published summary statistics of a paper
benchmark (size, attribute counts, minority definition, label skew) and the
generation parameters used by its surrogate generator.  The Fig. 4 table of
the paper is reproduced directly from these specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class ColumnSpec:
    """Description of a single attribute column.

    Parameters
    ----------
    name:
        Column name.
    kind:
        ``"numeric"`` or ``"categorical"``.
    n_categories:
        Number of distinct values for categorical columns (ignored otherwise).
    missing_rate:
        Fraction of values replaced by nulls in the raw surrogate table.
    """

    name: str
    kind: str = "numeric"
    n_categories: int = 0
    missing_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "categorical"):
            raise DatasetError(f"Column kind must be 'numeric' or 'categorical', got {self.kind!r}")
        if self.kind == "categorical" and self.n_categories < 2:
            raise DatasetError(f"Categorical column {self.name!r} needs at least 2 categories")
        if not 0.0 <= self.missing_rate < 1.0:
            raise DatasetError("missing_rate must be in [0, 1)")


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics and generation parameters of one benchmark dataset.

    The first block of fields mirrors the paper's Fig. 4; the second block
    parameterizes the drift injected by the surrogate generator.
    """

    name: str
    full_size: int
    n_numeric: int
    n_categorical: int
    minority_label: str
    minority_fraction: float
    minority_positive_rate: float
    predictive_task: str
    majority_positive_rate: float = 0.35
    drift_strength: float = 1.0
    class_separation: float = 1.6
    label_noise: float = 0.05
    categorical_cardinalities: Tuple[int, ...] = ()
    missing_rate: float = 0.01
    default_size_factor: float = 0.05

    def __post_init__(self) -> None:
        if self.full_size <= 0:
            raise DatasetError("full_size must be positive")
        if self.n_numeric < 0 or self.n_categorical < 0:
            raise DatasetError("attribute counts must be non-negative")
        if self.n_numeric + self.n_categorical == 0:
            raise DatasetError("dataset must have at least one attribute")
        for value, label in (
            (self.minority_fraction, "minority_fraction"),
            (self.minority_positive_rate, "minority_positive_rate"),
            (self.majority_positive_rate, "majority_positive_rate"),
            (self.label_noise, "label_noise"),
            (self.missing_rate, "missing_rate"),
        ):
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{label} must be in [0, 1], got {value}")
        if not 0.0 < self.default_size_factor <= 1.0:
            raise DatasetError("default_size_factor must be in (0, 1]")
        if self.categorical_cardinalities and len(self.categorical_cardinalities) != self.n_categorical:
            raise DatasetError(
                "categorical_cardinalities length must match n_categorical when provided"
            )

    @property
    def n_attributes(self) -> int:
        """Total number of attributes (numeric + categorical)."""
        return self.n_numeric + self.n_categorical

    def scaled_size(self, size_factor: float) -> int:
        """Number of rows generated for a given ``size_factor``.

        A floor of 800 rows keeps the minority partitions of every benchmark
        large enough for the 70/15/15 split to contain all four (group, label)
        sub-populations.
        """
        if not 0.0 < size_factor <= 1.0:
            raise DatasetError("size_factor must be in (0, 1]")
        return max(800, int(round(self.full_size * size_factor)))

    def summary_row(self) -> Dict[str, object]:
        """One row of the Fig. 4 summary table."""
        return {
            "dataset": self.name,
            "size": self.full_size,
            "numerical": self.n_numeric,
            "categorical": self.n_categorical,
            "minority_group": self.minority_label,
            "minority_population": f"{self.minority_fraction * 100:.1f}%",
            "minority_positive_labels": f"{self.minority_positive_rate * 100:.1f}%",
            "predictive_task": self.predictive_task,
        }


def _paper_specs() -> Dict[str, DatasetSpec]:
    """Specs for the 7 paper benchmarks, calibrated to Fig. 4."""
    specs = [
        DatasetSpec(
            name="meps",
            full_size=15_675,
            n_numeric=6,
            n_categorical=34,
            minority_label="non-White",
            minority_fraction=0.616,
            minority_positive_rate=0.114,
            majority_positive_rate=0.28,
            predictive_task="high hospital utilization",
            drift_strength=1.2,
            class_separation=2.2,
            label_noise=0.05,
            default_size_factor=0.2,
        ),
        DatasetSpec(
            name="lsac",
            full_size=24_479,
            n_numeric=6,
            n_categorical=4,
            minority_label="African-American",
            minority_fraction=0.077,
            minority_positive_rate=0.566,
            majority_positive_rate=0.82,
            predictive_task="passing bar exam",
            drift_strength=1.0,
            label_noise=0.05,
            default_size_factor=0.15,
        ),
        DatasetSpec(
            name="credit",
            full_size=120_269,
            n_numeric=6,
            n_categorical=0,
            minority_label="age<35",
            minority_fraction=0.137,
            minority_positive_rate=0.107,
            majority_positive_rate=0.06,
            predictive_task="serious delay in 2 years",
            drift_strength=0.7,
            class_separation=2.6,
            label_noise=0.03,
            default_size_factor=0.03,
        ),
        DatasetSpec(
            name="acsp",
            full_size=86_600,
            n_numeric=4,
            n_categorical=14,
            minority_label="African-American",
            minority_fraction=0.092,
            minority_positive_rate=0.483,
            majority_positive_rate=0.68,
            predictive_task="covered by private insurance",
            drift_strength=1.0,
            label_noise=0.05,
            default_size_factor=0.04,
        ),
        DatasetSpec(
            name="acsh",
            full_size=250_847,
            n_numeric=4,
            n_categorical=21,
            minority_label="African-American",
            minority_fraction=0.073,
            minority_positive_rate=0.093,
            majority_positive_rate=0.22,
            predictive_task="having health insurance",
            drift_strength=1.1,
            class_separation=2.2,
            label_noise=0.04,
            default_size_factor=0.015,
        ),
        DatasetSpec(
            name="acse",
            full_size=250_847,
            n_numeric=4,
            n_categorical=11,
            minority_label="African-American",
            minority_fraction=0.073,
            minority_positive_rate=0.393,
            majority_positive_rate=0.57,
            predictive_task="employment",
            drift_strength=1.0,
            label_noise=0.05,
            default_size_factor=0.015,
        ),
        DatasetSpec(
            name="acsi",
            full_size=250_847,
            n_numeric=6,
            n_categorical=13,
            minority_label="African-American",
            minority_fraction=0.073,
            minority_positive_rate=0.402,
            majority_positive_rate=0.60,
            predictive_task="income poverty rate < 250",
            drift_strength=1.0,
            label_noise=0.05,
            default_size_factor=0.015,
        ),
    ]
    return {spec.name: spec for spec in specs}


PAPER_DATASET_SPECS: Dict[str, DatasetSpec] = _paper_specs()
"""Mapping of dataset name to its :class:`DatasetSpec` (the Fig. 4 table)."""
