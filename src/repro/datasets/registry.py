"""Name-based access to every benchmark dataset.

``load_dataset("meps")`` returns a preprocessed :class:`Dataset` for the MEPS
surrogate; ``load_dataset("syn1")`` … ``load_dataset("syn5")`` return the
synthetic drift datasets of the Fig. 10/11 study.  All loaders are
deterministic given ``random_state``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.preprocessing import PreprocessingPipeline
from repro.datasets.realworld import generate_surrogate_by_name
from repro.datasets.schema import PAPER_DATASET_SPECS
from repro.datasets.synthetic import make_drifted_groups
from repro.datasets.table import Dataset
from repro.exceptions import DatasetError

REAL_WORLD_NAMES = tuple(sorted(PAPER_DATASET_SPECS))
"""Names of the 7 real-world (surrogate) benchmarks."""

SYNTHETIC_NAMES = ("syn1", "syn2", "syn3", "syn4", "syn5")
"""Names of the 5 synthetic drift datasets used in the Fig. 11 study."""

_SYNTHETIC_ANGLES: Dict[str, float] = {
    "syn1": 85.0,
    "syn2": 75.0,
    "syn3": 65.0,
    "syn4": 55.0,
    "syn5": 90.0,
}

_DEFAULT_SYNTHETIC_SCALE = 0.2  # 20% of the paper's 11,000 rows by default.


def available_datasets() -> List[str]:
    """Return every dataset name accepted by :func:`load_dataset`."""
    return list(REAL_WORLD_NAMES) + list(SYNTHETIC_NAMES)


def load_dataset(
    name: str,
    *,
    size_factor: Optional[float] = None,
    random_state=0,
    scaler: str = "minmax",
) -> Dataset:
    """Load a benchmark dataset by name.

    Parameters
    ----------
    name:
        One of :func:`available_datasets` (case-insensitive).
    size_factor:
        Fraction of the published dataset size to generate.  Defaults to a
        per-dataset laptop-scale factor; pass ``1.0`` for the full published
        size.
    random_state:
        Seed controlling the surrogate generation (and hence the exact rows).
    scaler:
        Numerical scaling applied during preprocessing (``"minmax"``,
        ``"standard"``, or ``"none"``).
    """
    key = name.strip().lower()
    if key in PAPER_DATASET_SPECS:
        raw = generate_surrogate_by_name(key, size_factor=size_factor, random_state=random_state)
        return PreprocessingPipeline(scaler=scaler).fit_transform(raw)
    if key in SYNTHETIC_NAMES:
        scale = size_factor if size_factor is not None else _DEFAULT_SYNTHETIC_SCALE
        if not 0.0 < scale <= 1.0:
            raise DatasetError("size_factor must be in (0, 1]")
        n_majority = max(200, int(round(8000 * scale)))
        n_minority = max(80, int(round(3000 * scale)))
        index = int(key[-1])
        return make_drifted_groups(
            n_majority=n_majority,
            n_minority=n_minority,
            n_features=6,
            drift_angle=_SYNTHETIC_ANGLES[key],
            class_sep=1.3,
            name=key,
            random_state=(random_state or 0) + index,
        )
    raise DatasetError(f"Unknown dataset {name!r}; available: {available_datasets()}")


def dataset_summary(names: Optional[List[str]] = None) -> List[Dict[str, object]]:
    """Return the Fig. 4 summary table (one dict per real-world benchmark)."""
    selected = names if names is not None else list(REAL_WORLD_NAMES)
    rows = []
    for name in selected:
        key = name.strip().lower()
        if key not in PAPER_DATASET_SPECS:
            raise DatasetError(f"Unknown real-world dataset {name!r}")
        rows.append(PAPER_DATASET_SPECS[key].summary_row())
    return rows
