"""Dataset substrate: containers, generators, preprocessing, and a registry.

The paper evaluates on 7 real-world benchmark datasets (MEPS, LSAC, Credit,
and four ACS/Folktables tasks) plus 5 synthetic drift datasets.  The raw
real-world extracts cannot be redistributed or downloaded in this offline
environment, so :mod:`repro.datasets.realworld` provides *statistical
surrogates* calibrated to the published summary statistics (Fig. 4), with a
controlled majority/minority drift so the phenomenon under study is present.
See DESIGN.md §3 for the substitution rationale.

Public entry points:

* :func:`load_dataset` / :func:`available_datasets` — name-based access to
  every benchmark dataset (surrogate or synthetic).
* :class:`Dataset` — an immutable container of features, labels, and group
  membership with convenient partitioning helpers.
* :func:`make_classification` and :func:`make_drifted_groups` — synthetic
  generators (the latter reproduces the Fig. 10 drift scenario).
* :func:`resample_dataset` / :func:`prevalence_weights` — shift-parameterized
  weighted resampling (the primitive behind the :mod:`repro.simulate`
  group-/label-shift traffic scenarios).
* :class:`PreprocessingPipeline` — null removal, scaling, one-hot encoding.
* :func:`split_dataset` — the 70/15/15 train/validation/deploy protocol.
"""

from repro.datasets.preprocessing import PreprocessingPipeline, RawTable
from repro.datasets.registry import available_datasets, dataset_summary, load_dataset
from repro.datasets.schema import ColumnSpec, DatasetSpec
from repro.datasets.splits import DatasetSplit, split_dataset
from repro.datasets.synthetic import (
    joint_prevalence_weights,
    make_classification,
    make_drifted_groups,
    prevalence_weights,
    resample_dataset,
)
from repro.datasets.table import Dataset

__all__ = [
    "ColumnSpec",
    "Dataset",
    "DatasetSpec",
    "DatasetSplit",
    "PreprocessingPipeline",
    "RawTable",
    "available_datasets",
    "dataset_summary",
    "load_dataset",
    "joint_prevalence_weights",
    "make_classification",
    "make_drifted_groups",
    "prevalence_weights",
    "resample_dataset",
    "split_dataset",
]
