"""Statistical surrogates for the paper's 7 real-world benchmark datasets.

The raw MEPS, LSAC, Kaggle-Credit, and ACS (Folktables) extracts cannot be
downloaded in this offline environment and cannot be redistributed with the
library.  Each benchmark is therefore replaced by a *surrogate generator*
that reproduces the properties the paper's evaluation depends on:

* the published summary statistics of Fig. 4 — dataset size, number of
  numeric/categorical attributes, minority-group fraction, and the positive-
  label rate within the minority group;
* a group-conditional *data drift*: the class-conditional distribution of the
  numeric attributes differs between the majority and the minority group
  (rotated discriminative direction plus mean shift), so a model trained on
  the pooled data conforms to the majority and under-serves the minority —
  the unfairness phenomenon the interventions are designed to repair;
* categorical attributes correlated with both the group and the label, so
  one-hot features carry group signal (needed by the CAP baseline, which
  repairs the categorical view);
* a small missing-value rate so the preprocessing path is exercised.

Absolute metric values will differ from the paper's (the surrogates are not
the real populations); the comparative structure — which methods improve
fairness, the monotonicity of the intervention sweeps, the ablation
directions — is what the surrogates preserve.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datasets.preprocessing import RawTable
from repro.datasets.schema import PAPER_DATASET_SPECS, DatasetSpec
from repro.exceptions import DatasetError
from repro.utils.random import check_random_state


def _rotation_matrix(n_features: int, angle_degrees: float) -> np.ndarray:
    """Rotation in the plane of the first two coordinates, identity elsewhere."""
    rotation = np.eye(n_features)
    if n_features >= 2:
        angle = np.deg2rad(angle_degrees)
        rotation[0, 0] = np.cos(angle)
        rotation[0, 1] = -np.sin(angle)
        rotation[1, 0] = np.sin(angle)
        rotation[1, 1] = np.cos(angle)
    return rotation


def generate_surrogate(
    spec: DatasetSpec,
    *,
    size_factor: Optional[float] = None,
    random_state=None,
) -> RawTable:
    """Generate the raw surrogate table for one benchmark spec.

    Parameters
    ----------
    spec:
        The benchmark's :class:`DatasetSpec` (see ``PAPER_DATASET_SPECS``).
    size_factor:
        Fraction of the published dataset size to generate; defaults to the
        spec's ``default_size_factor`` which keeps every benchmark laptop-
        scale.  Pass ``1.0`` to generate the full published size.
    random_state:
        Seed or generator.
    """
    rng = check_random_state(random_state)
    factor = spec.default_size_factor if size_factor is None else size_factor
    n_rows = spec.scaled_size(factor)

    n_minority = max(20, int(round(spec.minority_fraction * n_rows)))
    n_minority = min(n_minority, n_rows - 20)
    n_majority = n_rows - n_minority

    group = np.concatenate(
        [np.zeros(n_majority, dtype=np.int64), np.ones(n_minority, dtype=np.int64)]
    )

    # Labels: per-group positive rates from the published statistics.
    y = np.empty(n_rows, dtype=np.int64)
    y[:n_majority] = (rng.random(n_majority) < spec.majority_positive_rate).astype(np.int64)
    y[n_majority:] = (rng.random(n_minority) < spec.minority_positive_rate).astype(np.int64)
    # Guarantee each (group, label) partition is non-empty.
    for group_value, start, stop in ((0, 0, n_majority), (1, n_majority, n_rows)):
        block = y[start:stop]
        if block.sum() == 0:
            block[rng.integers(0, block.size)] = 1
        if block.sum() == block.size:
            block[rng.integers(0, block.size)] = 0

    n_numeric = max(spec.n_numeric, 2)
    # Class-discriminative direction for the majority; the minority's is rotated
    # and its cluster centre shifted — the group drift the paper studies.
    direction = np.zeros(n_numeric)
    direction[0] = 1.0
    if n_numeric >= 3:
        direction[2] = 0.5
    direction /= np.linalg.norm(direction)
    rotation = _rotation_matrix(n_numeric, 55.0 * spec.drift_strength)
    minority_direction = rotation @ direction
    # Shift the whole minority group toward the negative side of the majority's
    # discriminative direction: a pooled model then under-selects minorities,
    # which is the unfair starting point the paper's interventions repair.
    minority_offset = -0.9 * spec.drift_strength * direction

    numeric = rng.normal(0.0, 1.0, size=(n_rows, n_numeric))
    signs = np.where(y == 1, 1.0, -1.0)
    majority_mask = group == 0
    separation = spec.class_separation
    numeric[majority_mask] += np.outer(signs[majority_mask], separation * direction)
    minority_mask = ~majority_mask
    numeric[minority_mask] += np.outer(signs[minority_mask], separation * minority_direction)
    numeric[minority_mask] += minority_offset

    # Mild label noise keeps the task realistic (and the models imperfect).
    if spec.label_noise > 0:
        flip_mask = rng.random(n_rows) < spec.label_noise
        y[flip_mask] = 1 - y[flip_mask]

    # Categorical attributes: each column correlates with the group and/or the
    # label through a biased category-selection distribution.
    n_categorical = spec.n_categorical
    cardinalities = (
        spec.categorical_cardinalities
        if spec.categorical_cardinalities
        else tuple(2 + (j % 4) for j in range(n_categorical))
    )
    categorical = np.empty((n_rows, n_categorical), dtype=object)
    for j in range(n_categorical):
        n_categories = cardinalities[j]
        base = rng.dirichlet(np.ones(n_categories))
        skewed = rng.dirichlet(np.ones(n_categories))
        if j % 3 == 2:
            # Every third column is pure noise (no group signal), as real
            # survey attributes often are.
            choices = rng.choice(n_categories, size=n_rows, p=base)
        else:
            # The remaining columns correlate with the *group* only: they give
            # the categorical view demographic signal (what the CAP baseline
            # repairs) without leaking the label, so the class-conditional
            # drift stays confined to the numeric attributes.
            choices = np.empty(n_rows, dtype=np.int64)
            minority_rows = group == 1
            choices[~minority_rows] = rng.choice(
                n_categories, size=int((~minority_rows).sum()), p=base
            )
            choices[minority_rows] = rng.choice(
                n_categories, size=int(minority_rows.sum()), p=skewed
            )
        for row in range(n_rows):
            categorical[row, j] = f"c{int(choices[row])}"

    # Inject missing values at the spec's rate.
    if spec.missing_rate > 0:
        numeric_missing = rng.random(numeric.shape) < spec.missing_rate
        numeric[numeric_missing] = np.nan
        if n_categorical:
            categorical_missing = rng.random(categorical.shape) < spec.missing_rate
            categorical[categorical_missing] = None

    # Shuffle rows so group blocks are interleaved.
    permutation = rng.permutation(n_rows)
    return RawTable(
        numeric=numeric[permutation],
        categorical=categorical[permutation],
        y=y[permutation],
        group=group[permutation],
        numeric_names=tuple(f"{spec.name}_num{j}" for j in range(n_numeric)),
        categorical_names=tuple(f"{spec.name}_cat{j}" for j in range(n_categorical)),
        name=spec.name,
        metadata={
            "spec": spec.name,
            "size_factor": factor,
            "surrogate": True,
            "minority_label": spec.minority_label,
            "predictive_task": spec.predictive_task,
        },
    )


def generate_surrogate_by_name(
    name: str,
    *,
    size_factor: Optional[float] = None,
    random_state=None,
) -> RawTable:
    """Generate the raw surrogate for a benchmark by its paper name."""
    key = name.strip().lower()
    if key not in PAPER_DATASET_SPECS:
        raise DatasetError(
            f"Unknown benchmark dataset {name!r}; available: {sorted(PAPER_DATASET_SPECS)}"
        )
    return generate_surrogate(
        PAPER_DATASET_SPECS[key], size_factor=size_factor, random_state=random_state
    )
