"""Lightweight tracing spans for :mod:`repro.telemetry`.

A span measures one wall-clock section of work (``fit.profile_partitions``,
``replay.step``, ...) as a context manager.  Spans nest: each registry keeps a
per-thread stack, so a span opened while another is active records that span's
id as its ``parent_id``, giving a parent/child trace without any global state.
Finished spans are appended to the owning registry's bounded trace buffer and
their durations feed a ``span.<name>.seconds`` histogram, so hot sections get
latency distributions for free.

When the registry is disabled, :meth:`MetricsRegistry.span` returns a shared
no-op context manager — entering it costs one attribute read and no
allocation, which is what keeps instrumented hot paths free when telemetry is
off.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

__all__ = ["SpanHandle", "NOOP_SPAN"]


class SpanHandle:
    """A live span, yielded by ``with registry.span(...) as span_handle``.

    Attributes set through :meth:`set` (or by mutating :attr:`attributes`
    directly) are copied into the finished span record when the context
    manager exits.
    """

    __slots__ = ("name", "span_id", "parent_id", "attributes", "start_time", "_start_perf")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_time = time.time()
        self._start_perf = time.perf_counter()

    def set(self, **attributes: Any) -> "SpanHandle":
        """Attach structured attributes to the span; returns ``self``."""

        self.attributes.update(attributes)
        return self


class _NoopSpanHandle:
    """Inert stand-in yielded while telemetry is disabled."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    attributes: Dict[str, Any] = {}

    def set(self, **attributes: Any) -> "_NoopSpanHandle":
        return self


class _NoopSpan:
    """Shared no-op context manager returned by disabled registries."""

    __slots__ = ()

    _HANDLE = _NoopSpanHandle()

    def __enter__(self) -> _NoopSpanHandle:
        return self._HANDLE

    def __exit__(self, *exc_info: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _SpanContext:
    """Context manager created by :meth:`MetricsRegistry.span` when enabled."""

    __slots__ = ("_registry", "_name", "_attributes", "_handle")

    def __init__(self, registry: Any, name: str, attributes: Dict[str, Any]) -> None:
        self._registry = registry
        self._name = name
        self._attributes = attributes
        self._handle: Optional[SpanHandle] = None

    def __enter__(self) -> SpanHandle:
        self._handle = self._registry._start_span(self._name, self._attributes)
        return self._handle

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        handle = self._handle
        if handle is not None:
            duration = time.perf_counter() - handle._start_perf
            self._registry._finish_span(handle, duration, ok=exc_type is None)
        return False
