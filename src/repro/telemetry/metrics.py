"""Metric primitives and the :class:`MetricsRegistry`.

Three metric kinds, all named, all owned by a registry:

- :class:`Counter` — a monotonically increasing integer (requests served,
  rows scored).
- :class:`Gauge` — a point-in-time float, usually published by a collector
  callback at export time (cache sizes, hit counts).
- :class:`Histogram` — a fixed-bucket distribution whose merge is **exact**.

Exact histogram merging is the load-bearing design decision.  Like
``FairnessMonitor``, fleet shards each record their own histogram and the
front-end folds them into one view; for that view to be trustworthy the fold
must be bit-identical to a histogram that observed the union stream,
independent of shard split and merge order.  Floating-point accumulation
cannot promise that, so a histogram quantizes every observation to an integer
at ``resolution`` granularity (nanoseconds for second-valued latencies) and
keeps only integer sufficient statistics — per-bucket counts, the scaled sum,
scaled min/max.  Merging is then integer addition: associative, commutative,
exact.  :meth:`MetricsRegistry.merge_state_dicts` mirrors
``FairnessMonitor.merge_state_dicts`` on top of that.

Thread safety follows the PR 6 discipline: one registry lock guards all
metric maps and metric state; no user code runs under the lock (collectors
run outside it against individual metric operations that re-acquire it).
"""

from __future__ import annotations

import itertools
import math
import re
import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import TelemetryError
from repro.telemetry.spans import NOOP_SPAN, SpanHandle, _SpanContext

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default bucket upper bounds for second-valued histograms (latencies).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default bucket upper bounds for count-valued histograms (batch sizes).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0,
)

#: Quantiles reported by ``export()``.
_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p95", 0.95), ("p99", 0.99),
)

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    return _PROM_NAME_RE.sub("_", name)


class Counter:
    """A monotone integer counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        amount = int(amount)
        if amount < 0:
            raise TelemetryError(f"Counter {self.name!r} cannot decrease (inc({amount}))")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time float value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str, lock: threading.RLock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram with exact, order-invariant merges.

    Observations are quantized to ``round(value / resolution)`` and every
    retained statistic is an integer in that scale, so two histograms with
    the same bucket layout merge by integer addition — bit-identical to a
    single histogram that observed the concatenated stream, in any order.
    Bucket bounds are upper-inclusive (Prometheus ``le`` semantics) with an
    implicit ``+Inf`` overflow bucket.
    """

    __slots__ = (
        "name", "_lock", "_uppers", "_scaled_uppers", "_resolution",
        "_counts", "_sum_scaled", "_min_scaled", "_max_scaled", "_exemplars",
    )

    def __init__(
        self,
        name: str,
        lock: threading.RLock,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        resolution: float = 1e-9,
    ) -> None:
        uppers = tuple(float(u) for u in buckets)
        if not uppers:
            raise TelemetryError(f"Histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(uppers, uppers[1:])):
            raise TelemetryError(f"Histogram {name!r} buckets must be strictly increasing")
        resolution = float(resolution)
        if not resolution > 0.0:
            raise TelemetryError(f"Histogram {name!r} resolution must be positive")
        self.name = name
        self._lock = lock
        self._uppers = uppers
        self._resolution = resolution
        self._scaled_uppers = tuple(int(round(u / resolution)) for u in uppers)
        self._counts = [0] * (len(uppers) + 1)  # +1: the +Inf overflow bucket
        self._sum_scaled = 0
        self._min_scaled: Optional[int] = None
        self._max_scaled: Optional[int] = None
        # Per-bucket exemplars (last trace id + value per bucket).  They are
        # diagnostics riding exports only — never part of state_dict(), so
        # the exact-merge contract is untouched.
        self._exemplars: Dict[int, Dict[str, Any]] = {}

    # -- recording ---------------------------------------------------------

    def observe(self, value: float, *, exemplar: Optional[str] = None) -> None:
        scaled = int(round(float(value) / self._resolution))
        index = bisect_left(self._scaled_uppers, scaled)
        with self._lock:
            self._counts[index] += 1
            self._sum_scaled += scaled
            if self._min_scaled is None or scaled < self._min_scaled:
                self._min_scaled = scaled
            if self._max_scaled is None or scaled > self._max_scaled:
                self._max_scaled = scaled
            if exemplar is not None:
                self._exemplars[index] = {
                    "trace_id": str(exemplar),
                    "value": scaled * self._resolution,
                }

    # -- reading -----------------------------------------------------------

    @property
    def buckets(self) -> Tuple[float, ...]:
        return self._uppers

    @property
    def resolution(self) -> float:
        return self._resolution

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum_scaled * self._resolution

    @property
    def min(self) -> Optional[float]:
        with self._lock:
            return None if self._min_scaled is None else self._min_scaled * self._resolution

    @property
    def max(self) -> Optional[float]:
        with self._lock:
            return None if self._max_scaled is None else self._max_scaled * self._resolution

    @property
    def mean(self) -> Optional[float]:
        with self._lock:
            total = sum(self._counts)
            if total == 0:
                return None
            return self._sum_scaled * self._resolution / total

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the ``q``-th observation, clamped to the observed max)."""

        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile fraction must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            max_scaled = self._max_scaled
        total = sum(counts)
        if total == 0 or max_scaled is None:
            return None
        observed_max = max_scaled * self._resolution
        rank = max(1, math.ceil(q * total))
        cumulative = 0
        for upper, bucket_count in zip(self._uppers, counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return min(upper, observed_max)
        return observed_max

    # -- state -------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self._uppers),
                "resolution": self._resolution,
                "counts": list(self._counts),
                "sum_scaled": self._sum_scaled,
                "min_scaled": self._min_scaled,
                "max_scaled": self._max_scaled,
            }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._check_layout(state)
        counts = [int(c) for c in state["counts"]]
        with self._lock:
            self._counts = counts
            self._sum_scaled = int(state["sum_scaled"])
            self._min_scaled = None if state["min_scaled"] is None else int(state["min_scaled"])
            self._max_scaled = None if state["max_scaled"] is None else int(state["max_scaled"])

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another histogram's state into this one (exact)."""

        self._check_layout(state)
        counts = [int(c) for c in state["counts"]]
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._sum_scaled += int(state["sum_scaled"])
            for key, pick in (("min_scaled", min), ("max_scaled", max)):
                theirs = state[key]
                if theirs is None:
                    continue
                theirs = int(theirs)
                ours = self._min_scaled if key == "min_scaled" else self._max_scaled
                merged = theirs if ours is None else pick(ours, theirs)
                if key == "min_scaled":
                    self._min_scaled = merged
                else:
                    self._max_scaled = merged

    def _check_layout(self, state: Dict[str, Any]) -> None:
        buckets = tuple(float(u) for u in state.get("buckets", ()))
        resolution = float(state.get("resolution", 0.0))
        if buckets != self._uppers or resolution != self._resolution:
            raise TelemetryError(
                f"Histogram {self.name!r} layout mismatch: have "
                f"{len(self._uppers)} buckets @ resolution {self._resolution}, "
                f"state has {len(buckets)} buckets @ resolution {resolution}"
            )
        if len(state.get("counts", ())) != len(self._uppers) + 1:
            raise TelemetryError(
                f"Histogram {self.name!r} state has {len(state.get('counts', ()))} "
                f"bucket counts, expected {len(self._uppers) + 1}"
            )

    def summary(self) -> Dict[str, Any]:
        """JSON-able summary: count, sum, mean, min/max, quantiles, buckets."""

        with self._lock:
            counts = list(self._counts)
            sum_scaled = self._sum_scaled
            min_scaled = self._min_scaled
            max_scaled = self._max_scaled
            exemplars = {index: dict(e) for index, e in self._exemplars.items()}
        total = sum(counts)
        quantiles: Dict[str, Optional[float]] = {}
        observed_max = None if max_scaled is None else max_scaled * self._resolution
        for label, q in _QUANTILES:
            if total == 0 or observed_max is None:
                quantiles[label] = None
                continue
            rank = max(1, math.ceil(q * total))
            cumulative = 0
            value: Optional[float] = observed_max
            for upper, bucket_count in zip(self._uppers, counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    value = min(upper, observed_max)
                    break
            quantiles[label] = value
        cumulative = 0
        buckets: List[Dict[str, Any]] = []
        for index, (upper, bucket_count) in enumerate(zip(self._uppers, counts)):
            cumulative += bucket_count
            bucket: Dict[str, Any] = {"le": upper, "count": cumulative}
            if index in exemplars:
                bucket["exemplar"] = exemplars[index]
            buckets.append(bucket)
        overflow: Dict[str, Any] = {"le": "+Inf", "count": total}
        if len(self._uppers) in exemplars:
            overflow["exemplar"] = exemplars[len(self._uppers)]
        buckets.append(overflow)
        return {
            "count": total,
            "sum": sum_scaled * self._resolution,
            "mean": None if total == 0 else sum_scaled * self._resolution / total,
            "min": None if min_scaled is None else min_scaled * self._resolution,
            "max": observed_max,
            "quantiles": quantiles,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Process- or shard-scoped home for counters, gauges, histograms, spans.

    A registry starts **disabled**: instrumented code guards every record
    with one ``registry.enabled`` attribute read, so the disabled hot-path
    cost is a single branch.  :func:`repro.telemetry.get_registry` returns
    the process-wide default; fleet shards get private registries so their
    states merge without double counting.

    ``state_dict()`` / ``load_state_dict()`` / ``merge_state_dicts()``
    mirror ``FairnessMonitor``: states are plain JSON-able dicts, and the
    merge of per-shard states is exact (see :class:`Histogram`).  Spans are
    process-local diagnostics and deliberately stay out of mergeable state.
    """

    def __init__(self, *, enabled: bool = False, max_spans: int = 4096) -> None:
        if int(max_spans) < 1:
            raise TelemetryError("max_spans must be at least 1")
        self._lock = threading.RLock()
        self._enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._spans: deque = deque(maxlen=int(max_spans))
        self._spans_dropped = 0
        self._span_ids = itertools.count(1)
        self._span_local = threading.local()

    @property
    def max_spans(self) -> int:
        """Capacity of the finished-span buffer (oldest records beyond it
        are dropped and counted into the ``span.dropped`` counter)."""

        return int(self._spans.maxlen or 0)

    # -- enablement --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> "MetricsRegistry":
        self._enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self._enabled = False
        return self

    # -- metric construction ----------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_name_free(name, "counter")
                metric = Counter(name, self._lock)
                self._counters[name] = metric
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_name_free(name, "gauge")
                metric = Gauge(name, self._lock)
                self._gauges[name] = metric
            return metric

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        resolution: float = 1e-9,
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_name_free(name, "histogram")
                metric = Histogram(name, self._lock, buckets=buckets, resolution=resolution)
                self._histograms[name] = metric
                return metric
        if metric.buckets != tuple(float(u) for u in buckets) or (
            metric.resolution != float(resolution)
        ):
            raise TelemetryError(
                f"Histogram {name!r} already registered with a different "
                f"bucket layout or resolution"
            )
        return metric

    def _check_name_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise TelemetryError(
                    f"Metric name {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    # -- collectors --------------------------------------------------------

    def add_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run before every export/``state_dict`` to fold
        externally owned stats (cache counters, ...) into gauges."""

        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:  # outside the lock: collectors take their own
            collector(self)

    # -- spans -------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a tracing span; no-op (shared singleton) when disabled."""

        if not self._enabled:
            return NOOP_SPAN
        return _SpanContext(self, name, attributes)

    def _span_stack(self) -> List[SpanHandle]:
        stack = getattr(self._span_local, "stack", None)
        if stack is None:
            stack = []
            self._span_local.stack = stack
        return stack

    def _start_span(self, name: str, attributes: Dict[str, Any]) -> SpanHandle:
        stack = self._span_stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span_id = next(self._span_ids)
        handle = SpanHandle(name, span_id, parent_id, dict(attributes))
        stack.append(handle)
        return handle

    def _finish_span(self, handle: SpanHandle, duration: float, *, ok: bool) -> None:
        stack = self._span_stack()
        status = "ok" if ok else "error"
        if stack and stack[-1] is handle:
            stack.pop()
        else:
            # Exited out of order (or on a thread that never started it):
            # broken instrumentation must be observable, not invisible.
            if handle in stack:
                stack.remove(handle)
            status = "misnested"
            self.counter("span.misnested").inc()
        record = {
            "name": handle.name,
            "span_id": handle.span_id,
            "parent_id": handle.parent_id,
            "start_time": handle.start_time,
            "duration_seconds": duration,
            "status": status,
            "attributes": dict(handle.attributes),
        }
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self._spans_dropped += 1
            self._spans.append(record)
        self.histogram(f"span.{handle.name}.seconds").observe(duration)

    def _publish_span_drops(self) -> None:
        """Fold the running drop count into the ``span.dropped`` counter.

        Called on every export path so the counter rides the mergeable
        state without touching the span hot path with an extra counter
        increment per finished span."""

        with self._lock:
            dropped = self._spans_dropped
        if dropped:
            counter = self.counter("span.dropped")
            delta = dropped - counter.value
            if delta > 0:
                counter.inc(delta)

    def trace(self, *, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Finished spans, oldest first (bounded buffer).

        With ``trace_id`` only spans whose attributes carry that trace id
        are returned — the per-request view the fleet stitches."""

        with self._lock:
            records = [dict(record) for record in self._spans]
        if trace_id is None:
            return records
        return [
            record
            for record in records
            if record["attributes"].get("trace_id") == trace_id
        ]

    # -- state -------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Mergeable snapshot of all metrics (collectors run first)."""

        self._run_collectors()
        self._publish_span_drops()
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.state_dict() for name, h in sorted(self._histograms.items())
                },
            }

    def load_state_dict(self, state: Dict[str, Any]) -> "MetricsRegistry":
        """Replace this registry's metric contents with ``state``."""

        self._validate_state(state)
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
            for name, value in state.get("counters", {}).items():
                self.counter(name).inc(int(value))
            for name, value in state.get("gauges", {}).items():
                self.gauge(name).set(float(value))
            for name, hist_state in state.get("histograms", {}).items():
                hist = self.histogram(
                    name,
                    buckets=hist_state["buckets"],
                    resolution=hist_state["resolution"],
                )
                hist.load_state(hist_state)
        return self

    @staticmethod
    def _validate_state(state: Any) -> None:
        if not isinstance(state, dict):
            raise TelemetryError(
                f"telemetry state must be a dict, got {type(state).__name__}"
            )
        for key in ("counters", "gauges", "histograms"):
            if key in state and not isinstance(state[key], dict):
                raise TelemetryError(f"telemetry state[{key!r}] must be a dict")

    @classmethod
    def merge_state_dicts(cls, states: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
        """Fold per-shard states into one — exact for counters + histograms.

        Counters and gauges sum; histograms merge via integer sufficient
        statistics, so the result is bit-identical to a registry that
        observed the union stream, independent of shard split and order
        (the same contract as ``FairnessMonitor.merge_state_dicts``).
        """

        merged = cls()
        for state in states:
            cls._validate_state(state)
            for name, value in state.get("counters", {}).items():
                merged.counter(name).inc(int(value))
            for name, value in state.get("gauges", {}).items():
                gauge = merged.gauge(name)
                gauge.set(gauge.value + float(value))
            for name, hist_state in state.get("histograms", {}).items():
                hist = merged.histogram(
                    name,
                    buckets=hist_state["buckets"],
                    resolution=hist_state["resolution"],
                )
                hist.merge_state(hist_state)
        return merged.state_dict()

    # -- exports -----------------------------------------------------------

    def export(self, *, include_spans: bool = True) -> Dict[str, Any]:
        """JSON-able summary of every metric (and, optionally, the trace)."""

        self._run_collectors()
        self._publish_span_drops()
        with self._lock:
            payload: Dict[str, Any] = {
                "enabled": self._enabled,
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.summary() for name, h in sorted(self._histograms.items())
                },
            }
            if include_spans:
                payload["spans"] = [dict(record) for record in self._spans]
        return payload

    def export_prometheus(self) -> str:
        """Prometheus text exposition (metrics only; spans are JSON-only)."""

        self._run_collectors()
        self._publish_span_drops()
        lines: List[str] = []
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        for name, counter in counters:
            prom = _prometheus_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {counter.value}")
        for name, gauge in gauges:
            prom = _prometheus_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {gauge.value}")
        for name, hist in histograms:
            prom = _prometheus_name(name)
            summary = hist.summary()
            lines.append(f"# TYPE {prom} histogram")
            for bucket in summary["buckets"]:
                lines.append(
                    f'{prom}_bucket{{le="{bucket["le"]}"}} {bucket["count"]}'
                )
            lines.append(f"{prom}_sum {summary['sum']}")
            lines.append(f"{prom}_count {summary['count']}")
        return "\n".join(lines) + "\n"

    def dump(self) -> Dict[str, Any]:
        """The ``--metrics-out`` file payload: summary + mergeable state."""

        return {
            "telemetry_version": 1,
            "export": self.export(),
            "state": self.state_dict(),
        }

    @classmethod
    def export_state(cls, state: Dict[str, Any]) -> Dict[str, Any]:
        """Summarize a ``state_dict`` (e.g. one shard's) without a live
        registry — used by ``fleet_report()`` and the telemetry CLI."""

        return cls().load_state_dict(state).export(include_spans=False)

    # -- lifecycle ---------------------------------------------------------

    def reset(self, *, clear_collectors: bool = False) -> None:
        """Drop all metrics and spans (tests/benchmarks).

        Collectors survive by default — modules register them once at import
        time (density backend cache, mmap cache) and they only re-publish
        gauges, so keeping them across resets is what callers want.
        """

        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}
            if clear_collectors:
                self._collectors = []
            self._spans.clear()
            self._spans_dropped = 0
            self._span_ids = itertools.count(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        with self._lock:
            return (
                f"MetricsRegistry(enabled={self._enabled}, "
                f"counters={len(self._counters)}, gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)}, spans={len(self._spans)})"
            )
