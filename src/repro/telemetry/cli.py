"""Command-line front end for telemetry dumps.

Two subcommands::

    repro-telemetry summary --input metrics.json
    repro-telemetry summary --input fleet-metrics.json --section shard:0 --prometheus
    repro-telemetry diff    --before warmup.json --after loaded.json

``summary`` re-summarizes the **mergeable state** inside a ``--metrics-out``
dump — counters, gauges, and histogram quantiles — either as JSON (the
default, same shape as ``MetricsRegistry.export``) or as Prometheus text
exposition with ``--prometheus``.  ``diff`` subtracts one dump from another
**exactly**: counters and histogram bucket counts are integers, so the delta
between two dumps of the same process is precisely what happened in between.

Both commands accept plain dumps (written by ``repro-serve serve`` /
``repro-simulate run|suite`` / ``repro-fleet replay``) and fleet dumps
(written by ``repro-fleet serve``, which carry ``frontend`` / ``shards`` /
``merged`` sections); pick a fleet section with ``--section``.

Also available as ``python -m repro.telemetry``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError, TelemetryError
from repro.telemetry.metrics import MetricsRegistry


def _load_dump(path: str) -> Dict[str, Any]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise TelemetryError(f"cannot read telemetry dump {path!r}: {error}") from error
    if not isinstance(payload, dict):
        raise TelemetryError(f"telemetry dump {path!r} is not a JSON object")
    return payload


def _select_state(dump: Dict[str, Any], section: str, path: str) -> Dict[str, Any]:
    """Pull one mergeable ``state`` out of a plain or fleet dump.

    ``section`` is ``auto`` (plain state, else the fleet's ``merged``),
    ``merged``, ``frontend``, or ``shard:<id>``.
    """
    if section == "auto":
        if "state" in dump:
            return dump["state"]
        if "merged" in dump:
            return dump["merged"]["state"]
        raise TelemetryError(
            f"telemetry dump {path!r} has neither 'state' nor 'merged' — "
            f"not a --metrics-out file?"
        )
    if section in ("merged", "frontend"):
        block = dump.get(section)
        if not isinstance(block, dict) or "state" not in block:
            raise TelemetryError(
                f"telemetry dump {path!r} has no {section!r} section "
                f"(only repro-fleet serve dumps carry one)"
            )
        return block["state"]
    if section.startswith("shard:"):
        shard_id = section[len("shard:"):]
        for shard in dump.get("shards", []):
            if str(shard.get("shard_id")) == shard_id:
                state = shard.get("state")
                if state is None:
                    raise TelemetryError(
                        f"shard {shard_id} in {path!r} reported no telemetry state"
                    )
                return state
        raise TelemetryError(f"telemetry dump {path!r} has no shard {shard_id!r}")
    raise TelemetryError(
        f"unknown --section {section!r}; use auto, merged, frontend, or shard:<id>"
    )


def _emit(payload: Dict[str, Any]) -> None:
    json.dump(payload, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


# ---------------------------------------------------------------- commands
def cmd_summary(args) -> int:
    dump = _load_dump(args.input)
    state = _select_state(dump, args.section, args.input)
    registry = MetricsRegistry().load_state_dict(state)
    if args.prometheus:
        sys.stdout.write(registry.export_prometheus())
        return 0
    export = registry.export(include_spans=False)
    export.pop("enabled", None)  # a re-summarized state has no live flag
    _emit(
        {
            "input": args.input,
            "section": args.section,
            "telemetry_version": dump.get("telemetry_version"),
            "summary": export,
        }
    )
    return 0


def _diff_histograms(
    before: Dict[str, Any], after: Dict[str, Any], name: str
) -> Dict[str, Any]:
    b_buckets = tuple(float(u) for u in before["buckets"])
    a_buckets = tuple(float(u) for u in after["buckets"])
    if b_buckets != a_buckets or float(before["resolution"]) != float(after["resolution"]):
        raise TelemetryError(
            f"Histogram {name!r} changed bucket layout between dumps; "
            f"cannot diff exactly"
        )
    resolution = float(after["resolution"])
    bucket_deltas: List[Dict[str, Any]] = []
    uppers: List[Any] = list(a_buckets) + ["+Inf"]
    for upper, b_count, a_count in zip(uppers, before["counts"], after["counts"]):
        delta = int(a_count) - int(b_count)
        if delta:
            bucket_deltas.append({"le": upper, "count_delta": delta})
    count_delta = sum(int(c) for c in after["counts"]) - sum(
        int(c) for c in before["counts"]
    )
    sum_delta_scaled = int(after["sum_scaled"]) - int(before["sum_scaled"])
    return {
        "count_delta": count_delta,
        "sum_delta": sum_delta_scaled * resolution,
        "mean_of_new": (
            None if count_delta <= 0 else sum_delta_scaled * resolution / count_delta
        ),
        "bucket_deltas": bucket_deltas,
    }


def cmd_diff(args) -> int:
    before_dump = _load_dump(args.before)
    after_dump = _load_dump(args.after)
    before = _select_state(before_dump, args.section, args.before)
    after = _select_state(after_dump, args.section, args.after)
    MetricsRegistry._validate_state(before)
    MetricsRegistry._validate_state(after)

    counters: Dict[str, Any] = {}
    for name in sorted(set(before.get("counters", {})) | set(after.get("counters", {}))):
        b = int(before.get("counters", {}).get(name, 0))
        a = int(after.get("counters", {}).get(name, 0))
        counters[name] = {"before": b, "after": a, "delta": a - b}

    gauges: Dict[str, Any] = {}
    for name in sorted(set(before.get("gauges", {})) | set(after.get("gauges", {}))):
        b = float(before.get("gauges", {}).get(name, 0.0))
        a = float(after.get("gauges", {}).get(name, 0.0))
        gauges[name] = {"before": b, "after": a, "delta": a - b}

    histograms: Dict[str, Any] = {}
    before_hists = before.get("histograms", {})
    after_hists = after.get("histograms", {})
    for name in sorted(set(before_hists) | set(after_hists)):
        b_state = before_hists.get(name)
        a_state = after_hists.get(name)
        if b_state is None:
            # New in `after`: the whole after-state is the delta.
            b_state = {
                **a_state,
                "counts": [0] * len(a_state["counts"]),
                "sum_scaled": 0,
            }
        if a_state is None:
            a_state = {
                **b_state,
                "counts": [0] * len(b_state["counts"]),
                "sum_scaled": 0,
            }
        histograms[name] = _diff_histograms(b_state, a_state, name)

    _emit(
        {
            "before": args.before,
            "after": args.after,
            "section": args.section,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
    )
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Summarize and diff --metrics-out telemetry dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_section_option(p) -> None:
        p.add_argument(
            "--section",
            default="auto",
            metavar="WHICH",
            help="which state to read from a fleet dump: auto (default; plain "
            "state, else merged), merged, frontend, or shard:<id>",
        )

    summary = sub.add_parser(
        "summary", help="re-summarize a dump's mergeable state (JSON or Prometheus)"
    )
    summary.add_argument("--input", required=True, help="a --metrics-out JSON file")
    add_section_option(summary)
    summary.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition instead of JSON",
    )
    summary.set_defaults(func=cmd_summary)

    diff = sub.add_parser(
        "diff", help="exact metric deltas between two dumps of the same process"
    )
    diff.add_argument("--before", required=True, help="earlier --metrics-out JSON file")
    diff.add_argument("--after", required=True, help="later --metrics-out JSON file")
    add_section_option(diff)
    diff.set_defaults(func=cmd_diff)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro-telemetry`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
