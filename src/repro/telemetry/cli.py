"""Command-line front end for telemetry dumps.

Four subcommands::

    repro-telemetry summary --input metrics.json
    repro-telemetry summary --input fleet-metrics.json --section shard:0 --prometheus
    repro-telemetry diff    --before warmup.json --after loaded.json
    repro-telemetry tail    --input events.json --kind alarm_edge
    repro-telemetry trace   --events events.json --metrics metrics.json \\
                            --trace-id fleet-000017

``summary`` re-summarizes the **mergeable state** inside a ``--metrics-out``
dump — counters, gauges, and histogram quantiles — either as JSON (the
default, same shape as ``MetricsRegistry.export``) or as Prometheus text
exposition with ``--prometheus``.  ``diff`` subtracts one dump from another
**exactly**: counters and histogram bucket counts are integers, so the delta
between two dumps of the same process is precisely what happened in between.

``tail`` reads a ``--events-out`` flight-recorder dump and prints the last N
events in canonical ``(sequence, kind, index)`` order, optionally filtered
by kind — ``tail --kind channel_snapshot`` is the alarm-forensics view.
``trace`` stitches the two dump families: it gathers the spans matching a
``--trace-id`` (or an explicit ``--sequence``) from a ``--metrics-out``
dump — frontend and shard sections alike — and joins the event-log records
that share those sequence stamps, resolving one fleet micro-batch into its
dispatch span, worker-side request span, and every event it triggered.

All commands accept plain dumps (written by ``repro-serve serve`` /
``repro-simulate run|suite`` / ``repro-fleet replay``) and fleet dumps
(written by ``repro-fleet serve``, which carry ``frontend`` / ``shards`` /
``merged`` sections); pick a fleet section with ``--section``.

Also available as ``python -m repro.telemetry``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import ReproError, TelemetryError
from repro.telemetry.events import EventLog
from repro.telemetry.metrics import MetricsRegistry


def _load_dump(path: str) -> Dict[str, Any]:
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise TelemetryError(f"cannot read telemetry dump {path!r}: {error}") from error
    if not isinstance(payload, dict):
        raise TelemetryError(f"telemetry dump {path!r} is not a JSON object")
    return payload


def _select_state(dump: Dict[str, Any], section: str, path: str) -> Dict[str, Any]:
    """Pull one mergeable ``state`` out of a plain or fleet dump.

    ``section`` is ``auto`` (plain state, else the fleet's ``merged``),
    ``merged``, ``frontend``, or ``shard:<id>``.
    """
    if section == "auto":
        if "state" in dump:
            return dump["state"]
        if "merged" in dump:
            return dump["merged"]["state"]
        raise TelemetryError(
            f"telemetry dump {path!r} has neither 'state' nor 'merged' — "
            f"not a --metrics-out file?"
        )
    if section in ("merged", "frontend"):
        block = dump.get(section)
        if not isinstance(block, dict) or "state" not in block:
            raise TelemetryError(
                f"telemetry dump {path!r} has no {section!r} section "
                f"(only repro-fleet serve dumps carry one)"
            )
        return block["state"]
    if section.startswith("shard:"):
        shard_id = section[len("shard:"):]
        for shard in dump.get("shards", []):
            if str(shard.get("shard_id")) == shard_id:
                state = shard.get("state")
                if state is None:
                    raise TelemetryError(
                        f"shard {shard_id} in {path!r} reported no telemetry state"
                    )
                return state
        raise TelemetryError(f"telemetry dump {path!r} has no shard {shard_id!r}")
    raise TelemetryError(
        f"unknown --section {section!r}; use auto, merged, frontend, or shard:<id>"
    )


def _select_event_state(dump: Dict[str, Any], section: str, path: str) -> Dict[str, Any]:
    """Pull one event-log ``state`` out of a plain or fleet ``--events-out`` dump."""
    if section == "auto":
        if "state" in dump:
            return dump["state"]
        if "merged" in dump:
            return dump["merged"]["state"]
        raise TelemetryError(
            f"event dump {path!r} has neither 'state' nor 'merged' — "
            f"not an --events-out file?"
        )
    if section in ("merged", "frontend"):
        block = dump.get(section)
        if not isinstance(block, dict) or "state" not in block:
            raise TelemetryError(
                f"event dump {path!r} has no {section!r} section "
                f"(only fleet dumps carry one)"
            )
        return block["state"]
    if section.startswith("shard:"):
        shard_id = section[len("shard:"):]
        for shard in dump.get("shards", []):
            if str(shard.get("shard_id")) == shard_id:
                state = shard.get("state")
                if state is None:
                    raise TelemetryError(
                        f"shard {shard_id} in {path!r} reported no event state"
                    )
                return state
        raise TelemetryError(f"event dump {path!r} has no shard {shard_id!r}")
    raise TelemetryError(
        f"unknown --section {section!r}; use auto, merged, frontend, or shard:<id>"
    )


def _collect_spans(dump: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Every span in a plain or fleet ``--metrics-out`` dump, source-tagged."""
    spans: List[Dict[str, Any]] = []

    def tag(records, source) -> None:
        for record in records or []:
            if isinstance(record, dict):
                spans.append({**record, "source": source})

    if "export" in dump:  # plain dump: MetricsRegistry.dump()
        tag(dump["export"].get("spans"), "process")
    frontend = dump.get("frontend")
    if isinstance(frontend, dict):
        tag(frontend.get("export", {}).get("spans"), "frontend")
    for shard in dump.get("shards", []):
        if isinstance(shard, dict):
            tag(shard.get("spans"), f"shard:{shard.get('shard_id')}")
    return spans


def _emit(payload: Dict[str, Any]) -> None:
    json.dump(payload, sys.stdout, indent=2, default=str)
    sys.stdout.write("\n")


# ---------------------------------------------------------------- commands
def cmd_summary(args) -> int:
    dump = _load_dump(args.input)
    state = _select_state(dump, args.section, args.input)
    registry = MetricsRegistry().load_state_dict(state)
    if args.prometheus:
        sys.stdout.write(registry.export_prometheus())
        return 0
    export = registry.export(include_spans=False)
    export.pop("enabled", None)  # a re-summarized state has no live flag
    _emit(
        {
            "input": args.input,
            "section": args.section,
            "telemetry_version": dump.get("telemetry_version"),
            "summary": export,
        }
    )
    return 0


def _diff_histograms(
    before: Dict[str, Any], after: Dict[str, Any], name: str
) -> Dict[str, Any]:
    b_buckets = tuple(float(u) for u in before["buckets"])
    a_buckets = tuple(float(u) for u in after["buckets"])
    if b_buckets != a_buckets or float(before["resolution"]) != float(after["resolution"]):
        raise TelemetryError(
            f"Histogram {name!r} changed bucket layout between dumps; "
            f"cannot diff exactly"
        )
    resolution = float(after["resolution"])
    bucket_deltas: List[Dict[str, Any]] = []
    uppers: List[Any] = list(a_buckets) + ["+Inf"]
    for upper, b_count, a_count in zip(uppers, before["counts"], after["counts"]):
        delta = int(a_count) - int(b_count)
        if delta:
            bucket_deltas.append({"le": upper, "count_delta": delta})
    count_delta = sum(int(c) for c in after["counts"]) - sum(
        int(c) for c in before["counts"]
    )
    sum_delta_scaled = int(after["sum_scaled"]) - int(before["sum_scaled"])
    return {
        "count_delta": count_delta,
        "sum_delta": sum_delta_scaled * resolution,
        "mean_of_new": (
            None if count_delta <= 0 else sum_delta_scaled * resolution / count_delta
        ),
        "bucket_deltas": bucket_deltas,
    }


def cmd_diff(args) -> int:
    before_dump = _load_dump(args.before)
    after_dump = _load_dump(args.after)
    before = _select_state(before_dump, args.section, args.before)
    after = _select_state(after_dump, args.section, args.after)
    MetricsRegistry._validate_state(before)
    MetricsRegistry._validate_state(after)

    counters: Dict[str, Any] = {}
    for name in sorted(set(before.get("counters", {})) | set(after.get("counters", {}))):
        b = int(before.get("counters", {}).get(name, 0))
        a = int(after.get("counters", {}).get(name, 0))
        counters[name] = {"before": b, "after": a, "delta": a - b}

    gauges: Dict[str, Any] = {}
    for name in sorted(set(before.get("gauges", {})) | set(after.get("gauges", {}))):
        b = float(before.get("gauges", {}).get(name, 0.0))
        a = float(after.get("gauges", {}).get(name, 0.0))
        gauges[name] = {"before": b, "after": a, "delta": a - b}

    histograms: Dict[str, Any] = {}
    before_hists = before.get("histograms", {})
    after_hists = after.get("histograms", {})
    for name in sorted(set(before_hists) | set(after_hists)):
        b_state = before_hists.get(name)
        a_state = after_hists.get(name)
        if b_state is None:
            # New in `after`: the whole after-state is the delta.
            b_state = {
                **a_state,
                "counts": [0] * len(a_state["counts"]),
                "sum_scaled": 0,
            }
        if a_state is None:
            a_state = {
                **b_state,
                "counts": [0] * len(b_state["counts"]),
                "sum_scaled": 0,
            }
        histograms[name] = _diff_histograms(b_state, a_state, name)

    _emit(
        {
            "before": args.before,
            "after": args.after,
            "section": args.section,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
    )
    return 0


def cmd_tail(args) -> int:
    dump = _load_dump(args.input)
    state = _select_event_state(dump, args.section, args.input)
    log = EventLog(max_events=max(len(state.get("records", [])), 1)).load_state_dict(state)
    records = log.tail(args.last, kind=args.kind)
    _emit(
        {
            "input": args.input,
            "section": args.section,
            "events_version": dump.get("events_version"),
            "n_emitted": log.n_emitted,
            "evicted_through": log.evicted_through,
            "n_shown": len(records),
            "events": records,
        }
    )
    return 0


def cmd_trace(args) -> int:
    if args.trace_id is None and args.sequence is None:
        raise TelemetryError("trace needs --trace-id and/or --sequence to anchor the join")
    spans: List[Dict[str, Any]] = []
    if args.metrics is not None:
        for span in _collect_spans(_load_dump(args.metrics)):
            attributes = span.get("attributes") or {}
            if args.trace_id is not None and attributes.get("trace_id") != args.trace_id:
                continue
            if (
                args.sequence is not None
                and args.trace_id is None
                and attributes.get("sequence") != args.sequence
            ):
                continue
            spans.append(span)
    # The join key: sequences named on the matched spans, plus any given
    # explicitly.  Event records never carry trace ids (they must merge
    # bit-identically across shardings), so the sequence stamp is the bridge.
    sequences = {
        int(span["attributes"]["sequence"])
        for span in spans
        if isinstance(span.get("attributes"), dict) and "sequence" in span["attributes"]
    }
    if args.sequence is not None:
        sequences.add(int(args.sequence))
    events: List[Dict[str, Any]] = []
    if args.events is not None:
        dump = _load_dump(args.events)
        state = _select_event_state(dump, args.section, args.events)
        log = EventLog(max_events=max(len(state.get("records", [])), 1)).load_state_dict(
            state
        )
        events = [record for record in log.records() if record["sequence"] in sequences]
    _emit(
        {
            "trace_id": args.trace_id,
            "sequences": sorted(sequences),
            "n_spans": len(spans),
            "n_events": len(events),
            "spans": spans,
            "events": events,
        }
    )
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-telemetry",
        description="Summarize and diff --metrics-out telemetry dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_section_option(p) -> None:
        p.add_argument(
            "--section",
            default="auto",
            metavar="WHICH",
            help="which state to read from a fleet dump: auto (default; plain "
            "state, else merged), merged, frontend, or shard:<id>",
        )

    summary = sub.add_parser(
        "summary", help="re-summarize a dump's mergeable state (JSON or Prometheus)"
    )
    summary.add_argument("--input", required=True, help="a --metrics-out JSON file")
    add_section_option(summary)
    summary.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition instead of JSON",
    )
    summary.set_defaults(func=cmd_summary)

    diff = sub.add_parser(
        "diff", help="exact metric deltas between two dumps of the same process"
    )
    diff.add_argument("--before", required=True, help="earlier --metrics-out JSON file")
    diff.add_argument("--after", required=True, help="later --metrics-out JSON file")
    add_section_option(diff)
    diff.set_defaults(func=cmd_diff)

    tail = sub.add_parser(
        "tail", help="last N flight-recorder events from an --events-out dump"
    )
    tail.add_argument("--input", required=True, help="an --events-out JSON file")
    add_section_option(tail)
    tail.add_argument(
        "-n",
        "--last",
        type=int,
        default=20,
        metavar="N",
        help="events to show (default 20)",
    )
    tail.add_argument(
        "--kind",
        default=None,
        help="only events of this kind (request, alarm_edge, channel_snapshot, "
        "mitigation_transition, worker_lifecycle)",
    )
    tail.set_defaults(func=cmd_tail)

    trace = sub.add_parser(
        "trace",
        help="stitch one trace: spans from a --metrics-out dump joined to "
        "events by sequence stamp",
    )
    trace.add_argument(
        "--events", default=None, help="an --events-out JSON file (the event side)"
    )
    trace.add_argument(
        "--metrics", default=None, help="a --metrics-out JSON file (the span side)"
    )
    trace.add_argument(
        "--trace-id", default=None, help="trace id to follow (e.g. fleet-000017)"
    )
    trace.add_argument(
        "--sequence",
        type=int,
        default=None,
        help="sequence stamp to join on (alternative or additional anchor)",
    )
    add_section_option(trace)
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro-telemetry`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
