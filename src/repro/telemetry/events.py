"""Structured event log: the flight recorder half of the telemetry layer.

Metrics answer *how much*; the event log answers *what happened, in what
order*.  An :class:`EventLog` records typed, sequence-stamped events —
served requests, alarm edges, channel-attribution snapshots, mitigation
transitions, worker lifecycle — and makes the same exact-merge promise the
rest of the stack does: shard-local logs fold into one fleet-level log
**bit-identically to the log one process would have recorded observing the
union stream**, keyed by the monitor's stream-wide sequence stamps.  The
merge is associative and order-invariant, mirroring
:meth:`repro.serving.FairnessMonitor.merge` and
:meth:`repro.telemetry.MetricsRegistry.merge_state_dicts`.

Design rules that make the contract hold:

* records carry **no wall-clock timestamps** and **no trace ids** — both
  differ between a sharded run and a single-service run.  Ordering is the
  canonical ``(sequence, kind, index)`` triple, where ``index`` counts
  events of the same kind at the same sequence within one log.  Spans carry
  trace ids *and* sequences, so the sequence stamp is the join key between
  the event log and the trace view.
* the log is bounded: past ``max_events`` the lowest-sequence records are
  evicted and the eviction horizon (``evicted_through``) rides the state so
  merges of partially-evicted logs stay well-defined (every record at or
  below the merged horizon is dropped, exactly like the monitor's window).
* duplicate ``(sequence, kind, index)`` keys across merge inputs raise
  :class:`~repro.exceptions.TelemetryError` — shard logs partition the
  stream, they never overlap.

Like the metrics registry, an ``EventLog`` is off by default and
``emit`` costs one attribute read while off.  JSONL export/import
(:meth:`EventLog.export_jsonl` / :meth:`EventLog.import_jsonl`) persists a
log one JSON object per line, header first.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import TelemetryError

EVENT_LOG_SCHEMA_VERSION = 1

#: The typed vocabulary.  ``request`` — one served (micro-)batch, stamped
#: with the monitor-assigned sequence; ``alarm_edge`` — a monitor channel
#: set crossed from clear to alarming (or changed composition);
#: ``channel_snapshot`` — a full :meth:`FairnessMonitor.alarm_report`
#: attribution payload; ``mitigation_transition`` — one
#: :class:`MitigationTransition`; ``worker_lifecycle`` — a shard worker
#: process starting or closing.
EVENT_KINDS = (
    "request",
    "alarm_edge",
    "channel_snapshot",
    "mitigation_transition",
    "worker_lifecycle",
)

_KEY = Tuple[int, str, int]


def _record_key(record: Dict[str, Any]) -> _KEY:
    return (int(record["sequence"]), str(record["kind"]), int(record["index"]))


class EventLog:
    """A bounded, sequence-stamped structured event log with exact merging.

    Parameters
    ----------
    enabled:
        Whether ``emit`` records anything.  Off by default, mirroring
        :class:`MetricsRegistry`.
    max_events:
        Retention bound.  When exceeded, the lowest-``(sequence, kind,
        index)`` records are evicted and ``evicted_through`` advances to the
        highest evicted sequence.
    """

    def __init__(self, *, enabled: bool = False, max_events: int = 65536) -> None:
        if int(max_events) < 1:
            raise TelemetryError("max_events must be at least 1")
        self.enabled = bool(enabled)
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        # Insertion order is almost always sequence order (one writer per
        # log), so eviction pops from the left; merge re-sorts canonically.
        self._records: deque = deque()
        self._indices: Dict[Tuple[int, str], int] = {}
        self._evicted_through: Optional[int] = None
        self._n_emitted = 0

    # ------------------------------------------------------------- control
    def enable(self) -> "EventLog":
        self.enabled = True
        return self

    def disable(self) -> "EventLog":
        self.enabled = False
        return self

    def reset(self) -> "EventLog":
        """Drop every record and forget the eviction horizon."""
        with self._lock:
            self._records.clear()
            self._indices.clear()
            self._evicted_through = None
            self._n_emitted = 0
        return self

    # ------------------------------------------------------------ recording
    def emit(self, kind: str, *, sequence: int, **attributes: Any) -> Optional[Dict[str, Any]]:
        """Record one event; returns the stored record (``None`` while off).

        ``sequence`` is the stream-wide stamp the event is keyed by
        (``-1`` for events that precede any sequenced traffic, e.g. a
        worker starting).  ``attributes`` must be JSON-serializable — they
        travel through JSONL dumps and worker pipes verbatim.
        """
        if not self.enabled:
            return None
        if kind not in EVENT_KINDS:
            raise TelemetryError(
                f"unknown event kind {kind!r} (expected one of {', '.join(EVENT_KINDS)})"
            )
        sequence = int(sequence)
        with self._lock:
            slot = (sequence, kind)
            index = self._indices.get(slot, 0)
            self._indices[slot] = index + 1
            record = {
                "sequence": sequence,
                "index": index,
                "kind": kind,
                "attributes": dict(attributes),
            }
            self._records.append(record)
            self._n_emitted += 1
            self._evict_locked()
        return record

    def _evict_locked(self) -> None:
        while len(self._records) > self.max_events:
            victim = min(self._records, key=_record_key)
            self._records.remove(victim)
            horizon = int(victim["sequence"])
            if self._evicted_through is None or horizon > self._evicted_through:
                self._evicted_through = horizon

    # ------------------------------------------------------------- reading
    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def evicted_through(self) -> Optional[int]:
        """Highest evicted sequence (``None`` while nothing was evicted)."""
        return self._evicted_through

    @property
    def n_emitted(self) -> int:
        """Events ever emitted into this log, including evicted ones."""
        return self._n_emitted

    def records(
        self, *, kind: Optional[str] = None, since: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Records in canonical ``(sequence, kind, index)`` order (copies)."""
        with self._lock:
            snapshot = [dict(record) for record in self._records]
        if kind is not None:
            snapshot = [record for record in snapshot if record["kind"] == kind]
        if since is not None:
            snapshot = [record for record in snapshot if record["sequence"] >= int(since)]
        snapshot.sort(key=_record_key)
        return snapshot

    def tail(self, n: int = 20, *, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """The last ``n`` records in canonical order."""
        selected = self.records(kind=kind)
        return selected[-max(int(n), 0):]

    # ------------------------------------------------------- checkpointing
    def state_dict(self) -> Dict[str, Any]:
        """Mergeable snapshot: canonical records plus retention bookkeeping."""
        return {
            "schema_version": EVENT_LOG_SCHEMA_VERSION,
            "max_events": self.max_events,
            "evicted_through": self._evicted_through,
            "n_emitted": self._n_emitted,
            "records": self.records(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> "EventLog":
        """Restore a snapshot (replacing current contents); returns self."""
        state = _validate_state(state)
        with self._lock:
            self.max_events = int(state["max_events"])
            self._records = deque(dict(record) for record in state["records"])
            self._indices = {}
            for record in self._records:
                slot = (record["sequence"], record["kind"])
                self._indices[slot] = max(
                    self._indices.get(slot, 0), int(record["index"]) + 1
                )
            self._evicted_through = state["evicted_through"]
            self._n_emitted = int(state["n_emitted"])
            self._evict_locked()
        return self

    @classmethod
    def merge_state_dicts(cls, states: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
        """Fold shard-local states into the union-stream state, exactly.

        Associative and order-invariant: records are the disjoint union
        (duplicate ``(sequence, kind, index)`` keys raise
        :class:`TelemetryError`), the eviction horizon is the max of the
        inputs' horizons (records at or below it are dropped), capacity is
        the sum of the inputs' capacities, and the result is canonically
        ``(sequence, kind, index)``-sorted — so merging shard logs in any
        grouping yields the same bytes.
        """
        validated = [_validate_state(state) for state in states]
        if not validated:
            return {
                "schema_version": EVENT_LOG_SCHEMA_VERSION,
                "max_events": 1,
                "evicted_through": None,
                "n_emitted": 0,
                "records": [],
            }
        horizons = [
            state["evicted_through"]
            for state in validated
            if state["evicted_through"] is not None
        ]
        horizon = max(horizons) if horizons else None
        seen: Dict[_KEY, Dict[str, Any]] = {}
        for state in validated:
            for record in state["records"]:
                key = _record_key(record)
                if key in seen:
                    raise TelemetryError(
                        f"duplicate event {key} across merge inputs — shard "
                        "logs must partition the stream, not overlap"
                    )
                seen[key] = dict(record)
        records = [
            record
            for key, record in sorted(seen.items())
            if horizon is None or record["sequence"] > horizon
        ]
        max_events = sum(int(state["max_events"]) for state in validated)
        n_emitted = sum(int(state["n_emitted"]) for state in validated)
        merged = {
            "schema_version": EVENT_LOG_SCHEMA_VERSION,
            "max_events": max_events,
            "evicted_through": horizon,
            "n_emitted": n_emitted,
            "records": records,
        }
        if len(records) > max_events:
            # The union can only exceed the summed capacities when inputs
            # were built with tiny bounds; fold through a log so eviction
            # applies the same lowest-sequence-first rule.
            merged = cls(max_events=max_events).load_state_dict(merged).state_dict()
        return merged

    @classmethod
    def merge(cls, *logs: "EventLog") -> "EventLog":
        """Merge live logs into a new (enabled) union log."""
        state = cls.merge_state_dicts([log.state_dict() for log in logs])
        merged = cls(enabled=True, max_events=int(state["max_events"]))
        return merged.load_state_dict(state)

    # --------------------------------------------------------------- JSONL
    def export_jsonl(self, path) -> str:
        """Write the log as JSON Lines: one header line, then one record per line."""
        header = {
            "events_version": EVENT_LOG_SCHEMA_VERSION,
            "max_events": self.max_events,
            "evicted_through": self._evicted_through,
            "n_emitted": self._n_emitted,
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(json.dumps(record, sort_keys=True) for record in self.records())
        target = Path(path)
        target.write_text("\n".join(lines) + "\n")
        return str(target)

    @classmethod
    def import_jsonl(cls, path) -> "EventLog":
        """Load a log written by :meth:`export_jsonl`."""
        try:
            lines = [
                line for line in Path(path).read_text().splitlines() if line.strip()
            ]
            parsed = [json.loads(line) for line in lines]
        except (OSError, json.JSONDecodeError) as error:
            raise TelemetryError(f"cannot read event log {path!r}: {error}") from error
        if not parsed or "events_version" not in parsed[0]:
            raise TelemetryError(
                f"event log {path!r} is missing its header line"
            )
        header, records = parsed[0], parsed[1:]
        state = {
            "schema_version": header["events_version"],
            "max_events": header.get("max_events", max(len(records), 1)),
            "evicted_through": header.get("evicted_through"),
            "n_emitted": header.get("n_emitted", len(records)),
            "records": records,
        }
        log = cls(enabled=True, max_events=int(state["max_events"]))
        return log.load_state_dict(state)


def _validate_state(state: Any) -> Dict[str, Any]:
    if not isinstance(state, dict):
        raise TelemetryError("event-log state must be a dict")
    version = state.get("schema_version")
    if version != EVENT_LOG_SCHEMA_VERSION:
        raise TelemetryError(
            f"event-log state has schema_version {version!r}, "
            f"this build reads {EVENT_LOG_SCHEMA_VERSION}"
        )
    records = state.get("records")
    if not isinstance(records, (list, tuple)):
        raise TelemetryError("event-log state 'records' must be a list")
    horizon = state.get("evicted_through")
    if horizon is not None and not isinstance(horizon, int):
        raise TelemetryError("event-log state 'evicted_through' must be an int or None")
    cleaned: List[Dict[str, Any]] = []
    for record in records:
        if not isinstance(record, dict):
            raise TelemetryError("event-log records must be dicts")
        try:
            sequence = int(record["sequence"])
            index = int(record["index"])
            kind = str(record["kind"])
        except (KeyError, TypeError, ValueError) as error:
            raise TelemetryError(f"malformed event record {record!r}") from error
        if kind not in EVENT_KINDS:
            raise TelemetryError(f"event record has unknown kind {kind!r}")
        attributes = record.get("attributes", {})
        if not isinstance(attributes, dict):
            raise TelemetryError("event record 'attributes' must be a dict")
        cleaned.append(
            {
                "sequence": sequence,
                "index": index,
                "kind": kind,
                "attributes": dict(attributes),
            }
        )
    try:
        max_events = int(state.get("max_events", max(len(cleaned), 1)))
    except (TypeError, ValueError) as error:
        raise TelemetryError("event-log state 'max_events' must be an int") from error
    try:
        n_emitted = int(state.get("n_emitted", len(cleaned)))
    except (TypeError, ValueError) as error:
        raise TelemetryError("event-log state 'n_emitted' must be an int") from error
    return {
        "schema_version": EVENT_LOG_SCHEMA_VERSION,
        "max_events": max_events,
        "evicted_through": horizon,
        "n_emitted": n_emitted,
        "records": cleaned,
    }


def merge_event_states(states: Iterable[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Convenience: merge states skipping ``None`` entries (absent shards)."""
    return EventLog.merge_state_dicts([state for state in states if state is not None])
