"""repro.telemetry — unified metrics, latency histograms, and tracing spans.

Every layer of the stack — fit (:func:`repro.core.profile_partitions`,
:class:`repro.interventions.FairnessPipeline`), serve
(:class:`repro.serving.PredictionService`), shard
(:class:`repro.fleet.FleetService`), and replay
(:class:`repro.simulate.ReplayHarness`) — records into one substrate:

- **Counters** (``serving.requests_total``, ``serving.records_total``) and
  **gauges** (``density.backend_cache.hits``, folded in from
  ``backend_cache_stats()`` by a collector at export time).
- **Histograms** (``serving.request_latency_seconds``,
  ``serving.batch_rows``, ``serving.queue_wait_seconds``) with fixed buckets
  and **exact merges**: observations are quantized to integers at record
  time, so per-shard histograms fold into one fleet view bit-identically to
  a histogram that observed the union stream — the same contract
  :meth:`repro.serving.FairnessMonitor.merge` makes for fairness state.
- **Spans** (``with span("fit.profile_partitions"): ...``) with
  parent/child nesting, wall-time, and structured attributes, buffered per
  registry and summarized into ``span.<name>.seconds`` histograms.

Telemetry is **off by default** and near-zero-overhead while off: every
instrumented hot path guards its recording with a single
``registry.enabled`` attribute read (gated by
``benchmarks/test_telemetry_overhead.py`` in the CI regression gate).
Enable it for the process with :func:`enable`, or pass a private
:class:`MetricsRegistry` to the component you care about::

    from repro import telemetry

    telemetry.enable()
    service.predict(rows)                  # records latency/batch metrics
    print(telemetry.export_prometheus())   # Prometheus text exposition
    payload = telemetry.export()           # JSON-able dict (incl. spans)

The ``repro-serve serve``, ``repro-fleet serve|replay``, and
``repro-simulate run|suite`` commands take ``--metrics-out PATH`` to enable
telemetry and write a JSON dump (summary + mergeable state); the
``repro-telemetry`` CLI summarizes and diffs those dumps.

The flight recorder
-------------------
Metrics aggregate; the **event log** (:mod:`repro.telemetry.events`)
remembers.  :class:`EventLog` records typed, sequence-stamped events —
served requests, alarm edges, :meth:`FairnessMonitor.alarm_report`
channel snapshots, mitigation transitions, worker lifecycle — and merges
shard-local logs bit-identically to the union-stream log, keyed by the
same sequence stamps the monitors merge on.  Traces stitch onto it:
:class:`~repro.fleet.FleetService` assigns a deterministic trace id per
dispatched micro-batch, worker-side request spans carry
``trace_id``/``shard_id``/``sequence``, and latency histograms attach
per-bucket **exemplars** (sample trace ids), so a tail-latency bucket or
an alarm edge resolves to concrete requests::

    from repro import telemetry

    telemetry.enable()
    telemetry.get_event_log().enable()
    ...                                        # serve / replay traffic
    log = telemetry.get_event_log()
    print(log.tail(5))                         # last events, canonical order
    print([r for r in log.records(kind="alarm_edge")])

Every replay/serving CLI takes ``--events-out PATH`` to enable the event
log and dump it as JSON, and ``repro-telemetry tail|trace`` inspect those
dumps (``trace`` joins spans to events by sequence stamp).

Thread safety: one registry lock guards all metric state (the PR 6
discipline); spans keep per-thread stacks, so concurrent callers trace
independently.  Determinism: counters and histogram merges are exact
integer arithmetic; wall-clock values never feed replay verdicts
(``compare_sharded_replay`` stays bit-identical with telemetry enabled),
and event records carry neither timestamps nor trace ids, so sharded
event logs merge bit-identically too.
"""

from __future__ import annotations

import json as _json
from pathlib import Path as _Path
from typing import Any, Dict, Optional

from repro.telemetry.events import EVENT_KINDS, EVENT_LOG_SCHEMA_VERSION, EventLog
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import SpanHandle

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EVENT_KINDS",
    "EVENT_LOG_SCHEMA_VERSION",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanHandle",
    "disable",
    "dump",
    "enable",
    "events_enabled",
    "export",
    "export_prometheus",
    "get_event_log",
    "get_registry",
    "reset",
    "span",
    "telemetry_enabled",
    "write_events",
    "write_metrics",
]

#: The process-wide default registry.  Instrumented components use it unless
#: handed a private registry (fleet shards get their own to keep merges
#: double-count-free).
_DEFAULT_REGISTRY = MetricsRegistry()

#: The process-wide default event log, following the same private-vs-default
#: discipline as the registry: inline fleet shards get private logs so the
#: fleet merge never double-counts an event.
_DEFAULT_EVENT_LOG = EventLog()


def get_event_log() -> EventLog:
    """The process-wide default :class:`EventLog`."""

    return _DEFAULT_EVENT_LOG


def events_enabled() -> bool:
    """Whether the default event log is currently recording."""

    return _DEFAULT_EVENT_LOG.enabled


def write_events(path, payload: Optional[Dict[str, Any]] = None) -> str:
    """Write an event-log dump to ``path`` as deterministic JSON.

    ``payload`` defaults to ``{"events_version": 1, "state": ...}`` for the
    default log; the fleet CLI passes
    :meth:`~repro.fleet.FleetService.events_report` instead.  Returns the
    written path (what ``--events-out`` handlers report).
    """

    target = _Path(path)
    if payload is None:
        payload = {
            "events_version": EVENT_LOG_SCHEMA_VERSION,
            "state": _DEFAULT_EVENT_LOG.state_dict(),
        }
    target.write_text(
        _json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return str(target)


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""

    return _DEFAULT_REGISTRY


def enable() -> MetricsRegistry:
    """Enable the default registry; returns it for chaining."""

    return _DEFAULT_REGISTRY.enable()


def disable() -> MetricsRegistry:
    """Disable the default registry; returns it for chaining."""

    return _DEFAULT_REGISTRY.disable()


def telemetry_enabled() -> bool:
    """Whether the default registry is currently recording."""

    return _DEFAULT_REGISTRY.enabled


def span(name: str, **attributes: Any):
    """Open a span on the default registry (no-op while disabled)."""

    return _DEFAULT_REGISTRY.span(name, **attributes)


def export(*, include_spans: bool = True) -> Dict[str, Any]:
    """JSON-able summary of the default registry."""

    return _DEFAULT_REGISTRY.export(include_spans=include_spans)


def export_prometheus() -> str:
    """Prometheus text exposition of the default registry."""

    return _DEFAULT_REGISTRY.export_prometheus()


def dump() -> Dict[str, Any]:
    """The ``--metrics-out`` payload for the default registry."""

    return _DEFAULT_REGISTRY.dump()


def write_metrics(path, payload: Optional[Dict[str, Any]] = None) -> str:
    """Write a telemetry dump to ``path`` as deterministic JSON.

    ``payload`` defaults to the default registry's :func:`dump`; the fleet
    CLI passes :meth:`~repro.fleet.FleetService.telemetry_report` instead.
    Returns the written path (what ``--metrics-out`` handlers report).
    """

    target = _Path(path)
    payload = dump() if payload is None else payload
    target.write_text(
        _json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return str(target)


def reset(*, clear_collectors: bool = False) -> None:
    """Clear the default registry's metrics and spans (collectors stay
    unless ``clear_collectors=True``)."""

    _DEFAULT_REGISTRY.reset(clear_collectors=clear_collectors)
