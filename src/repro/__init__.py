"""repro — reproduction of "Non-Invasive Fairness in Learning Through the Lens of Data Drift" (ICDE 2024).

The package implements the paper's two non-invasive fairness interventions —
:class:`~repro.core.ConFair` (conformance-driven reweighing) and
:class:`~repro.core.DiffFair` (conformance-routed model splitting) — together
with every substrate they depend on: a from-scratch ML layer (logistic
regression, gradient-boosted trees, scalers, encoders), the Conformance
Constraints profiling primitive, kernel density estimation, fairness metrics,
benchmark dataset surrogates, the baselines the paper compares against, and
an experiment harness that regenerates every figure of the evaluation.

Every method is exposed through one estimator surface: the
:class:`~repro.interventions.Intervention` protocol and its registry
(:func:`make_intervention`, :func:`available_interventions`), composed end to
end by the :class:`~repro.interventions.FairnessPipeline` facade.

Quickstart::

    from repro import FairnessPipeline

    baseline = FairnessPipeline(intervention="none", learner="lr", dataset="meps", seed=7).run()
    treated = FairnessPipeline(intervention="confair", learner="lr", dataset="meps", seed=7).run()
    print(baseline.report.di_star, "->", treated.report.di_star,
          "at alpha_u =", treated.details["alpha_u"])

The pipeline loads the benchmark, splits it 70/15/15, fits the intervention
(auto-tuning its degree on the validation split), trains the final model
through the intervention's uniform ``make_model``, and evaluates the deploy
set into a :class:`~repro.fairness.FairnessReport`.  The underlying
estimators (``ConFair``, ``DiffFair``, the baselines) remain directly usable
for fine-grained control.

Serving quickstart::

    from repro import FairnessPipeline, save_artifact
    from repro.serving import FairnessMonitor, PredictionService

    result = FairnessPipeline("diffair", dataset="meps", seed=7).run()
    save_artifact(result, "artifacts/meps-diffair")

    monitor = FairnessMonitor(window_size=5000, profile=result.intervention.profile_)
    service = PredictionService.from_artifact(
        "artifacts/meps-diffair", batch_size=512, max_workers=4, monitor=monitor
    )
    predictions = service.predict(rows)          # group-blind, micro-batched
    print(monitor.windowed_summary()["di_star"], monitor.drift_status().alarm)

An artifact is a directory holding ``manifest.json`` (schema-versioned
structure: every estimator's constructor parameters plus its declared
``state_dict``) and ``payload.npz`` (the numeric state, stored losslessly).
Round trips are guaranteed bit-identical — ``load_artifact(save_artifact(m))``
predicts exactly what ``m`` predicts for every registered intervention ×
learner pair — and any mismatch (schema version, unknown learner class,
corrupted payload) raises :class:`~repro.exceptions.ArtifactError`.  The
``repro-serve`` console script (``python -m repro.serve``) wires the path end
to end: ``fit`` → ``save`` → ``serve``/``score``.

Simulation quickstart::

    from repro import FairnessPipeline, load_dataset, split_dataset
    from repro.serving import FairnessMonitor, PredictionService
    from repro.simulate import ReplayHarness, TrafficStream, make_scenario

    result = FairnessPipeline("confair", dataset="meps", seed=7).run()
    data = load_dataset("meps", size_factor=0.05, random_state=7)  # the pipeline's default scale
    split = split_dataset(data, random_state=7)
    monitor = FairnessMonitor(window_size=2000)
    monitor.set_baselines(group_fraction=split.train.group)
    service = PredictionService(result.model, monitor=monitor)

    stream = TrafficStream(split.deploy, make_scenario("group_shift"),
                           n_steps=40, batch_size=128, random_state=7)
    outcome = ReplayHarness(service).replay(stream)
    print(outcome.detected, outcome.detection_latency_steps, outcome.false_alarm_rate)

Detection closes into mitigation: wrap the service in a
:class:`~repro.serving.MitigationController` (or pass ``mitigate=True`` to
:meth:`~repro.simulate.SuiteRunner.replay_scenario`, or run
``repro-simulate run --mitigate``) and every alarm triggers refit →
shadow-score → promote on live traffic, with the replay reporting
time-to-recovery and fairness-regret and the controller's transition trail
persisting as a schema-versioned artifact
(:func:`~repro.serving.save_audit_trail`).  Monitor configuration travels
as first-class objects — :class:`~repro.serving.MonitorThresholds`
(derivable from a control replay at a target false-alarm rate via
:func:`~repro.serving.calibrate_thresholds`) and
:class:`~repro.serving.MonitorBaselines`.

The scenario engine (:mod:`repro.simulate`) generates the drifting, bursty,
group-shifting traffic the serving monitors exist to catch: registered,
composable, seed-deterministic scenarios (``@register_scenario`` /
``make_scenario``, mirroring the interventions registry), replayable
``TrafficBatch`` streams (same seed ⇒ bit-identical batches), and a
``ReplayHarness`` that scores detection latency, false-alarm rate, windowed
fairness degradation, and throughput per scenario.  The ``repro-simulate``
console script (``python -m repro.simulate``) runs a scenario or a whole
named suite end-to-end from a saved artifact and emits a JSON report.
The monitor itself is checkpointable (``state_dict`` / ``load_state_dict``
+ artifact registration), so long replays can pause and resume with
bit-identical windowed reports.

Fleet quickstart::

    from repro import FleetService, ProcessShardWorker

    workers = [
        ProcessShardWorker("artifacts/meps-confair", shard_id=i,
                           monitor_path="artifacts/meps-monitor", mmap_mode="r")
        for i in range(8)
    ]
    with FleetService(workers) as fleet:
        fleet.predict(rows, groups)
        print(fleet.fleet_report()["records_per_second"])
        print(fleet.monitor.windowed_summary()["di_star"])  # merged across shards

:mod:`repro.fleet` scales one monitored service out to N shards: worker
processes memory-map the same artifact (cold start is O(manifest), not
O(weights)), an asyncio front-end fans micro-batches out round-robin while
preserving row order, and the per-shard ``FairnessMonitor`` states are
**merged** — :meth:`FairnessMonitor.merge` is bit-identical to one monitor
having observed the union stream, so the fleet-level DI*/AOD*/drift view is
exact, not approximate.  ``repro-fleet replay --shards N`` proves it by
asserting a sharded drift replay matches the single-service replay
bit-for-bit.

Observability::

    from repro import telemetry

    telemetry.enable()
    with telemetry.span("audit.batch", dataset="meps"):
        service.predict(rows)
    print(telemetry.export()["histograms"]["serving.request_latency_seconds"]["quantiles"])
    print(telemetry.export_prometheus())

:mod:`repro.telemetry` is the process-wide metrics and tracing substrate:
counters and gauges, fixed-bucket latency/size **histograms whose merges
are exact** (observations are quantized to integers at record time, so
per-shard histograms fold into one fleet view bit-identically to a
histogram that observed the union stream — the same contract
``FairnessMonitor.merge`` makes), and nested tracing spans over the fit,
serve, shard, and replay hot paths.  It is off by default and
near-zero-overhead while off; every serving/simulation/fleet CLI takes
``--metrics-out PATH`` to enable it and write a JSON dump, and the
``repro-telemetry`` CLI summarizes and diffs those dumps.

Alongside the metrics sits the **flight recorder**
(:class:`~repro.telemetry.EventLog`): a bounded, sequence-stamped
structured event log — served requests, alarm edges, full
:meth:`~repro.serving.FairnessMonitor.alarm_report` channel attributions,
mitigation transitions, worker lifecycle — making the same exact-merge
promise (shard-local logs fold bit-identically into the union-stream log,
keyed by the monitor's sequence stamps).  The fleet front-end stamps each
request with a deterministic trace id that shard-side request spans carry,
so ``repro-telemetry trace --trace-id ...`` stitches the frontend and
per-shard views of one request back together, joined to its event-log
records by sequence.  Every serving/simulation/fleet CLI takes
``--events-out PATH``; ``repro-telemetry tail`` reads the dumps back.

Algorithm 3's density estimation runs on a batch-first engine
(:mod:`repro.density`): ``KernelDensity(algorithm=...)`` dispatches
``score_samples`` onto a brute-force, flat batch KD-tree, or grid-hash
backend (``"auto"`` picks per kernel/shape), each backend returns
log-densities bit-identical to its seed-implementation counterpart
(enforced against the frozen copy in :mod:`repro.density.reference`), and
fitted structures are cached across fits of the same partition.  See the
:mod:`repro.density` docstring for the selection rules and the exact
equivalence guarantees.
"""

from repro.baselines import (
    CapuchinRepair,
    KamiranReweighing,
    MultiModel,
    NoIntervention,
    OmniFairReweighing,
)
from repro.core import ConFair, DiffFair, density_filter, profile_partitions
from repro.datasets import (
    Dataset,
    available_datasets,
    load_dataset,
    make_classification,
    make_drifted_groups,
    split_dataset,
)
from repro.exceptions import (
    ArtifactError,
    ConstraintError,
    DatasetError,
    ExperimentError,
    FleetError,
    NotFittedError,
    ReproError,
    SimulationError,
    TelemetryError,
    ValidationError,
)
from repro.fairness import FairnessAccumulator, FairnessReport, evaluate_predictions
from repro.interventions import (
    DeployedModel,
    FairnessPipeline,
    Intervention,
    InterventionCapabilities,
    PipelineResult,
    available_interventions,
    describe_interventions,
    make_intervention,
    register_intervention,
)
from repro.learners import (
    GradientBoostingClassifier,
    LogisticRegressionClassifier,
    make_learner,
)
from repro.profiling import ConstraintSet, discover_constraints
from repro.telemetry import MetricsRegistry

# Also exposes the submodule itself as `repro.telemetry` for the
# Observability quickstart's `from repro import telemetry`.
from repro import telemetry

__version__ = "1.8.0"

# The serving subsystem consumes everything above (interventions, learners,
# datasets), the simulation subsystem consumes serving, and the fleet
# subsystem consumes both — so these three imports must come last, in this
# order.
from repro.serving import (
    FairnessMonitor,
    MitigationController,
    MonitorBaselines,
    MonitorThresholds,
    PredictionService,
    calibrate_thresholds,
    load_artifact,
    save_artifact,
)
from repro.simulate import (
    ReplayHarness,
    ReplayResult,
    Scenario,
    SuiteRunner,
    TrafficBatch,
    TrafficStream,
    available_scenarios,
    make_scenario,
    register_scenario,
)
from repro.fleet import FleetService, InlineShardWorker, ProcessShardWorker

__all__ = [
    "ArtifactError",
    "CapuchinRepair",
    "ConFair",
    "ConstraintError",
    "ConstraintSet",
    "Dataset",
    "DatasetError",
    "DeployedModel",
    "DiffFair",
    "ExperimentError",
    "FairnessAccumulator",
    "FairnessMonitor",
    "FairnessPipeline",
    "FairnessReport",
    "FleetError",
    "FleetService",
    "GradientBoostingClassifier",
    "InlineShardWorker",
    "Intervention",
    "InterventionCapabilities",
    "KamiranReweighing",
    "LogisticRegressionClassifier",
    "MetricsRegistry",
    "MitigationController",
    "MonitorBaselines",
    "MonitorThresholds",
    "MultiModel",
    "NoIntervention",
    "NotFittedError",
    "OmniFairReweighing",
    "PipelineResult",
    "PredictionService",
    "ProcessShardWorker",
    "ReplayHarness",
    "ReplayResult",
    "ReproError",
    "Scenario",
    "SimulationError",
    "SuiteRunner",
    "TelemetryError",
    "TrafficBatch",
    "TrafficStream",
    "ValidationError",
    "__version__",
    "available_datasets",
    "available_interventions",
    "available_scenarios",
    "calibrate_thresholds",
    "density_filter",
    "describe_interventions",
    "discover_constraints",
    "evaluate_predictions",
    "load_artifact",
    "load_dataset",
    "make_classification",
    "make_drifted_groups",
    "make_intervention",
    "make_learner",
    "make_scenario",
    "profile_partitions",
    "register_intervention",
    "register_scenario",
    "save_artifact",
    "split_dataset",
    "telemetry",
]
