"""repro — reproduction of "Non-Invasive Fairness in Learning Through the Lens of Data Drift" (ICDE 2024).

The package implements the paper's two non-invasive fairness interventions —
:class:`~repro.core.ConFair` (conformance-driven reweighing) and
:class:`~repro.core.DiffFair` (conformance-routed model splitting) — together
with every substrate they depend on: a from-scratch ML layer (logistic
regression, gradient-boosted trees, scalers, encoders), the Conformance
Constraints profiling primitive, kernel density estimation, fairness metrics,
benchmark dataset surrogates, the baselines the paper compares against, and
an experiment harness that regenerates every figure of the evaluation.

Quickstart::

    from repro import load_dataset, split_dataset, ConFair, evaluate_predictions

    data = load_dataset("meps", random_state=7)
    split = split_dataset(data, random_state=7)
    confair = ConFair(learner="lr").fit(split.train, validation=split.validation)
    model = confair.fit_learner()
    report = evaluate_predictions(split.deploy.y, model.predict(split.deploy.X), split.deploy.group)
    print(report.di_star, report.balanced_accuracy)
"""

from repro.baselines import (
    CapuchinRepair,
    KamiranReweighing,
    MultiModel,
    NoIntervention,
    OmniFairReweighing,
)
from repro.core import ConFair, DiffFair, density_filter, profile_partitions
from repro.datasets import (
    Dataset,
    available_datasets,
    load_dataset,
    make_classification,
    make_drifted_groups,
    split_dataset,
)
from repro.exceptions import (
    ConstraintError,
    DatasetError,
    ExperimentError,
    NotFittedError,
    ReproError,
    ValidationError,
)
from repro.fairness import FairnessReport, evaluate_predictions
from repro.learners import (
    GradientBoostingClassifier,
    LogisticRegressionClassifier,
    make_learner,
)
from repro.profiling import ConstraintSet, discover_constraints

__version__ = "1.0.0"

__all__ = [
    "CapuchinRepair",
    "ConFair",
    "ConstraintError",
    "ConstraintSet",
    "Dataset",
    "DatasetError",
    "DiffFair",
    "ExperimentError",
    "FairnessReport",
    "GradientBoostingClassifier",
    "KamiranReweighing",
    "LogisticRegressionClassifier",
    "MultiModel",
    "NoIntervention",
    "NotFittedError",
    "OmniFairReweighing",
    "ReproError",
    "ValidationError",
    "__version__",
    "available_datasets",
    "density_filter",
    "discover_constraints",
    "evaluate_predictions",
    "load_dataset",
    "make_classification",
    "make_drifted_groups",
    "make_learner",
    "profile_partitions",
    "split_dataset",
]
