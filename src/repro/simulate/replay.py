"""Replay simulated traffic through a service and score the monitors.

:class:`ReplayHarness` is the judge of the serving stack: it drives a
:class:`~repro.serving.PredictionService` (with its attached
:class:`~repro.serving.FairnessMonitor`) over a
:class:`~repro.simulate.stream.TrafficStream` and scores how the monitor's
alarm channels — conformance violation, density drift, group prevalence —
respond to the scenario's *declared* ground truth:

* **detection latency** — steps (and records) between the first drifted batch
  and the first alarm at or after it;
* **false-alarm rate** — alarms raised on clean batches *before any drift has
  been injected* (post-drift clean batches are excluded: a sliding window
  legitimately stays alarmed while drifted rows age out of it);
* **windowed fairness degradation** — how far the windowed DI* falls from its
  last pre-drift value once the drift is in effect;
* **throughput** — records/second through the service for this replay.

Every per-step observation is kept as a :class:`StepRecord`, so callers can
plot or assert on the full trajectory.

The harness also closes the loop: hand it a
:class:`~repro.serving.MitigationController` instead of a bare service and
the replay additionally scores the *response* — **time-to-recovery** (steps
and records from the first drifted batch until the alarms have cleared and
the windowed DI* sits back within ``recovery_tolerance`` of its pre-drift
baseline for the rest of the stream) and
**fairness regret** (the summed per-step shortfall of windowed DI* below
that baseline over the post-drift horizon) — and records the controller's
transition events (``alarm``/``refit``/``shadow_start``/``promote``/…) on
the step where each fired.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.serving.mitigation import summarize_transitions
from repro.serving.service import PredictionService
from repro.simulate.stream import TrafficStream
from repro.telemetry import get_event_log as _get_event_log
from repro.telemetry import get_registry as _get_telemetry_registry


@dataclass(frozen=True)
class StepRecord:
    """One replayed step: ground truth, alarm state, windowed fairness.

    ``mitigation`` lists the controller transition events (``"alarm"``,
    ``"refit"``, ``"shadow_start"``, ``"promote"``, …) that fired during
    this step; it stays empty when the replay drives a plain service.
    """

    step: int
    t: float
    n_rows: int
    drifted: bool
    alarm: bool
    channels: Tuple[str, ...]
    di_star: Optional[float]
    mitigation: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "t": round(self.t, 6),
            "n_rows": self.n_rows,
            "drifted": self.drifted,
            "alarm": self.alarm,
            "channels": list(self.channels),
            "di_star": self.di_star,
            "mitigation": list(self.mitigation),
        }


@dataclass
class ReplayResult:
    """Scored outcome of one scenario replay."""

    scenario: str
    dataset: str
    n_steps: int
    n_records: int
    n_drifted_steps: int
    first_drift_step: Optional[int]
    detected: bool
    detection_step: Optional[int]
    detection_latency_steps: Optional[int]
    detection_latency_records: Optional[int]
    n_clean_steps: int
    n_false_alarms: int
    false_alarm_rate: float
    baseline_di_star: Optional[float]
    min_drift_di_star: Optional[float]
    di_star_degradation: Optional[float]
    records_per_second: float
    channel_first_alarm: Dict[str, int] = field(default_factory=dict)
    steps: List[StepRecord] = field(default_factory=list)
    # Mitigation scoring (populated when the replay drives a
    # MitigationController; recovery fields stay None for plain services
    # or when the drift never pushed DI* below the recovery band).
    recovered: bool = False
    recovery_step: Optional[int] = None
    time_to_recovery_steps: Optional[int] = None
    time_to_recovery_records: Optional[int] = None
    fairness_regret: Optional[float] = None
    mitigation: Dict[str, object] = field(default_factory=dict)

    def to_dict(self, *, include_steps: bool = False) -> Dict[str, object]:
        """JSON-ready view; pass ``include_steps=True`` for the full trace."""
        out: Dict[str, object] = {
            "scenario": self.scenario,
            "dataset": self.dataset,
            "n_steps": self.n_steps,
            "n_records": self.n_records,
            "n_drifted_steps": self.n_drifted_steps,
            "first_drift_step": self.first_drift_step,
            "detected": self.detected,
            "detection_step": self.detection_step,
            "detection_latency_steps": self.detection_latency_steps,
            "detection_latency_records": self.detection_latency_records,
            "n_clean_steps": self.n_clean_steps,
            "n_false_alarms": self.n_false_alarms,
            "false_alarm_rate": round(self.false_alarm_rate, 6),
            "baseline_di_star": self.baseline_di_star,
            "min_drift_di_star": self.min_drift_di_star,
            "di_star_degradation": self.di_star_degradation,
            "records_per_second": round(self.records_per_second, 1),
            "channel_first_alarm": dict(self.channel_first_alarm),
            "recovered": self.recovered,
            "recovery_step": self.recovery_step,
            "time_to_recovery_steps": self.time_to_recovery_steps,
            "time_to_recovery_records": self.time_to_recovery_records,
            "fairness_regret": self.fairness_regret,
            "mitigation": dict(self.mitigation),
        }
        if include_steps:
            out["steps"] = [record.to_dict() for record in self.steps]
        return out


class ReplayHarness:
    """Drive a monitored service over traffic streams and score detection.

    Parameters
    ----------
    service:
        A :class:`~repro.serving.PredictionService` with a
        :class:`~repro.serving.FairnessMonitor` attached (the monitor is the
        thing under test; a replay without one raises
        :class:`~repro.exceptions.SimulationError`).  Anything speaking the
        same protocol works too — a :class:`~repro.fleet.FleetService` whose
        ``monitor`` property merges the shard windows replays identically,
        and a :class:`~repro.serving.MitigationController` closes the loop:
        its transition events land on the :class:`StepRecord` where they
        fired and the result gains time-to-recovery / fairness-regret
        scores.
    """

    def __init__(self, service: PredictionService) -> None:
        if service.monitor is None:
            raise SimulationError(
                "ReplayHarness needs a PredictionService with a FairnessMonitor "
                "attached; construct the service with monitor="
            )
        self.service = service

    @property
    def monitor(self):
        """The monitor under test (re-read per access: a fleet's merged
        monitor is rebuilt from the shard windows as traffic flows)."""
        return self.service.monitor

    # ----------------------------------------------------------- channels
    def _alarm_channels(self) -> Tuple[str, ...]:
        """Names of the monitor channels currently raising an alarm."""
        monitor = self.monitor
        channels = []
        if monitor.profile is not None and monitor.drift_status().alarm:
            channels.append("conformance")
        if monitor.density_estimator is not None and monitor.density_status().alarm:
            channels.append("density")
        if monitor.group_baseline_fraction is not None and monitor.group_status().alarm:
            channels.append("group")
        return tuple(channels)

    # ------------------------------------------------------------- replay
    def replay(
        self,
        stream: TrafficStream,
        *,
        label: Optional[str] = None,
        recovery_tolerance: float = 0.05,
    ) -> ReplayResult:
        """Serve every batch of ``stream`` and score the monitor's response.

        When telemetry is enabled, the replay leaves a span trace — one
        ``replay.scenario`` root with a ``replay.step`` child per batch
        (step, rows, drifted, alarm channels) — on the service's registry.
        Spans record wall-time only; nothing telemetry measures feeds the
        :class:`ReplayResult`, so sharded-vs-single bit-identity is
        unaffected by enabling it.

        When the flight recorder is enabled, every *alarm edge* — a step
        whose alarmed-channel set differs from the previous step's — emits
        an ``alarm_edge`` event plus a ``channel_snapshot`` carrying the
        monitor's full :meth:`~repro.serving.FairnessMonitor.alarm_report`
        attribution, both keyed by the merged monitor's latest sequence
        stamp.  Edges are detected here, where the merged (fleet-level)
        monitor is observed, so a sharded replay records the same edges as
        the single-service run.

        ``recovery_tolerance`` sets the recovery band: the stream has
        *recovered* at the earliest post-drift step from which the rest of
        the stream is alarm-free with every windowed DI* observation within
        ``recovery_tolerance`` of the last pre-drift value.
        """
        telemetry = getattr(self.service, "telemetry", None)
        telemetry = telemetry if telemetry is not None else _get_telemetry_registry()
        events = getattr(self.service, "events", None)
        events = events if events is not None else _get_event_log()
        # A MitigationController exposes its transition log; a plain
        # service does not (duck-typed so fleet services keep working).
        transitions = getattr(self.service, "transitions", None)
        transitions_start = len(transitions) if transitions is not None else 0
        transitions_seen = transitions_start
        records_before = self.service.stats.n_records
        start = time.perf_counter()

        steps: List[StepRecord] = []
        channel_first_alarm: Dict[str, int] = {}
        previous_channels: Tuple[str, ...] = ()
        with telemetry.span(
            "replay.scenario",
            scenario=label if label is not None else type(stream.scenario).__name__,
            dataset=stream.dataset.name,
        ):
            for batch in stream:
                with telemetry.span(
                    "replay.step", step=batch.step, rows=batch.n_rows, drifted=batch.drifted
                ) as step_span:
                    predictions = self.service.predict(batch.X, batch.group, y_true=batch.y)
                    stream.observe(batch, predictions)
                    channels = self._alarm_channels()
                    step_span.set(channels=list(channels))
                if channels != previous_channels and events.enabled:
                    # Edge detection happens here — the one place the merged
                    # (fleet-level) monitor is observed — keyed by its latest
                    # sequence stamp, so sharded and single-service replays
                    # record identical forensics.
                    monitor = self.monitor
                    sequence = int(monitor.last_sequence)
                    events.emit(
                        "alarm_edge",
                        sequence=sequence,
                        step=batch.step,
                        raised=[c for c in channels if c not in previous_channels],
                        cleared=[c for c in previous_channels if c not in channels],
                        channels=list(channels),
                    )
                    events.emit(
                        "channel_snapshot",
                        sequence=sequence,
                        trigger="alarm_edge",
                        step=batch.step,
                        report=monitor.alarm_report(),
                    )
                previous_channels = channels
                mitigation_events: Tuple[str, ...] = ()
                if transitions is not None:
                    mitigation_events = tuple(
                        record.event for record in transitions[transitions_seen:]
                    )
                    transitions_seen = len(transitions)
                for channel in channels:
                    channel_first_alarm.setdefault(channel, batch.step)
                steps.append(
                    StepRecord(
                        step=batch.step,
                        t=batch.t,
                        n_rows=batch.n_rows,
                        drifted=batch.drifted,
                        alarm=bool(channels),
                        channels=channels,
                        di_star=self.monitor.windowed_summary().get("di_star"),
                        mitigation=mitigation_events,
                    )
                )
        elapsed = time.perf_counter() - start
        n_records = self.service.stats.n_records - records_before

        return self._score(
            steps,
            scenario=label if label is not None else type(stream.scenario).__name__,
            dataset=stream.dataset.name,
            n_records=n_records,
            records_per_second=n_records / elapsed if elapsed > 0 else 0.0,
            channel_first_alarm=channel_first_alarm,
            recovery_tolerance=recovery_tolerance,
            mitigation=(
                summarize_transitions(transitions[transitions_start:])
                if transitions is not None
                else {}
            ),
        )

    # ------------------------------------------------------------ scoring
    @staticmethod
    def _score(
        steps: List[StepRecord],
        *,
        scenario: str,
        dataset: str,
        n_records: int,
        records_per_second: float,
        channel_first_alarm: Dict[str, int],
        recovery_tolerance: float = 0.05,
        mitigation: Optional[Dict[str, object]] = None,
    ) -> ReplayResult:
        drifted_steps = [record.step for record in steps if record.drifted]
        first_drift = drifted_steps[0] if drifted_steps else None

        detection_step: Optional[int] = None
        if first_drift is not None:
            for record in steps:
                if record.step >= first_drift and record.alarm:
                    detection_step = record.step
                    break
        latency_steps = (
            detection_step - first_drift if detection_step is not None else None
        )
        latency_records = (
            sum(
                record.n_rows
                for record in steps
                if first_drift <= record.step <= detection_step
            )
            if detection_step is not None
            else None
        )

        # Clean steps are the pre-drift prefix (the whole stream when no
        # drift is ever injected); alarms there are false by construction.
        clean = [
            record
            for record in steps
            if not record.drifted and (first_drift is None or record.step < first_drift)
        ]
        false_alarms = sum(1 for record in clean if record.alarm)

        pre_drift_di = [
            record.di_star
            for record in steps
            if record.di_star is not None
            and (first_drift is None or record.step < first_drift)
        ]
        drift_di = [
            record.di_star
            for record in steps
            if record.di_star is not None
            and first_drift is not None
            and record.step >= first_drift
        ]
        baseline_di = pre_drift_di[-1] if pre_drift_di else None
        min_drift_di = min(drift_di) if drift_di else None
        degradation = (
            baseline_di - min_drift_di
            if baseline_di is not None and min_drift_di is not None
            else None
        )

        # Recovery: a post-drift step is *disturbed* while an alarm is up or
        # the windowed DI* sits below the tolerance band around the
        # pre-drift baseline.  The stream has recovered at the first step
        # after the last disturbed one — i.e. once the remaining suffix is
        # alarm-quiet and fairness-healthy (a one-step blip back into the
        # band does not count).  A replay whose drift never disturbed
        # anything has nothing to recover from and reports None.
        recovery_step: Optional[int] = None
        regret: Optional[float] = None
        if first_drift is not None and baseline_di is not None:
            floor = baseline_di - recovery_tolerance
            post = [record for record in steps if record.step >= first_drift]
            regret = sum(
                baseline_di - record.di_star
                for record in post
                if record.di_star is not None and record.di_star < baseline_di
            )
            disturbed = [
                record.step
                for record in post
                if record.alarm
                or (record.di_star is not None and record.di_star < floor)
            ]
            if disturbed:
                last_disturbed = disturbed[-1]
                after = [record.step for record in post if record.step > last_disturbed]
                if after:
                    recovery_step = after[0]
        ttr_steps = recovery_step - first_drift if recovery_step is not None else None
        ttr_records = (
            sum(
                record.n_rows
                for record in steps
                if first_drift <= record.step <= recovery_step
            )
            if recovery_step is not None
            else None
        )

        return ReplayResult(
            scenario=scenario,
            dataset=dataset,
            n_steps=len(steps),
            n_records=n_records,
            n_drifted_steps=len(drifted_steps),
            first_drift_step=first_drift,
            detected=detection_step is not None,
            detection_step=detection_step,
            detection_latency_steps=latency_steps,
            detection_latency_records=latency_records,
            n_clean_steps=len(clean),
            n_false_alarms=false_alarms,
            false_alarm_rate=false_alarms / len(clean) if clean else 0.0,
            baseline_di_star=baseline_di,
            min_drift_di_star=min_drift_di,
            di_star_degradation=degradation,
            records_per_second=records_per_second,
            channel_first_alarm=channel_first_alarm,
            steps=steps,
            recovered=recovery_step is not None,
            recovery_step=recovery_step,
            time_to_recovery_steps=ttr_steps,
            time_to_recovery_records=ttr_records,
            fairness_regret=round(regret, 10) if regret is not None else None,
            mitigation=dict(mitigation) if mitigation else {},
        )
