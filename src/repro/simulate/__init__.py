"""Scenario engine: drift/traffic simulation and serving replay.

The paper's premise is that fairness interventions must stay fair *in
deployment*, where traffic drifts.  This subpackage generates exactly the
traffic the serving monitors exist to catch and scores how fast they catch
it:

* :mod:`repro.simulate.base` — the :class:`Scenario` protocol and the
  :class:`TrafficBatch` container (scenarios declare their own drift ground
  truth, stamped on every batch);
* :mod:`repro.simulate.registry` — ``@register_scenario`` /
  :func:`make_scenario`, mirroring the interventions registry;
* :mod:`repro.simulate.scenarios` — the built-in library: covariate / label /
  group-prevalence shifts, seasonal mixtures, burst and ramp arrival
  patterns, prediction feedback loops, and the :class:`Compose` /
  :class:`Schedule` combinators;
* :mod:`repro.simulate.stream` — :class:`TrafficStream`, turning any
  :class:`~repro.datasets.Dataset` into batched, seed-deterministic traffic
  (same integer seed ⇒ bit-identical batches, hypothesis-tested);
* :mod:`repro.simulate.replay` — :class:`ReplayHarness`, driving a
  :class:`~repro.serving.PredictionService` + monitor over a stream and
  scoring detection latency, false-alarm rate, windowed fairness
  degradation, and throughput;
* :mod:`repro.simulate.suites` — named scenario suites and the
  :class:`SuiteRunner` that replays them with shared baselines;
* :mod:`repro.simulate.cli` — the ``repro-simulate`` command
  (``list`` / ``run`` / ``suite`` / ``calibrate``), also
  ``python -m repro.simulate``.

Closing the loop
----------------
Detection is only half the story: replays can also drive the *response*.
Hand :class:`ReplayHarness` a
:class:`~repro.serving.MitigationController` (or call
:meth:`SuiteRunner.replay_scenario` with ``mitigate=True``, or
``repro-simulate run --mitigate``) and every alarm triggers the refit →
shadow-score → promote loop while the replay keeps scoring.  The
:class:`~repro.simulate.replay.ReplayResult` then reports
**time-to-recovery** (steps/records from drift onset until alarms clear and
windowed DI* is back within tolerance of its pre-drift level) and
**fairness regret** (summed per-step DI* shortfall over the post-drift
horizon) alongside the detection metrics, plus the controller's transition
summary; the full audit trail persists via
:func:`repro.serving.save_audit_trail`.  To place the alarm thresholds
themselves on a false-alarm budget, :meth:`SuiteRunner.calibrate` (or
``repro-simulate calibrate``) derives a
:class:`~repro.serving.MonitorThresholds` from a stationary control replay.

Quickstart::

    from repro import FairnessPipeline, load_dataset, split_dataset
    from repro.serving import FairnessMonitor, PredictionService
    from repro.simulate import ReplayHarness, TrafficStream, make_scenario

    result = FairnessPipeline("confair", dataset="meps", seed=7).run()
    data = load_dataset("meps", size_factor=0.05, random_state=7)
    split = split_dataset(data, random_state=7)

    monitor = FairnessMonitor(window_size=2000)
    monitor.set_baselines(group_fraction=split.train.group)
    service = PredictionService(result.model, monitor=monitor)

    stream = TrafficStream(split.deploy, make_scenario("group_shift"),
                           n_steps=40, batch_size=128, random_state=7)
    outcome = ReplayHarness(service).replay(stream)
    print(outcome.detected, outcome.detection_latency_steps,
          outcome.false_alarm_rate, outcome.records_per_second)
"""

from repro.simulate.base import Scenario, TrafficBatch, shift_intensity
from repro.simulate.registry import (
    available_scenarios,
    describe_scenarios,
    get_scenario_spec,
    make_scenario,
    register_scenario,
)
from repro.simulate.scenarios import (
    Burst,
    Compose,
    CovariateShift,
    FeedbackLoop,
    GroupPrevalenceShift,
    LabelShift,
    RampTraffic,
    Schedule,
    SeasonalMixture,
    StationaryTraffic,
)
from repro.simulate.stream import TrafficStream
from repro.simulate.replay import ReplayHarness, ReplayResult, StepRecord
from repro.simulate.suites import (
    SCENARIO_SUITES,
    SuiteRunner,
    available_suites,
    build_scenario,
    make_suite,
)

__all__ = [
    "Burst",
    "Compose",
    "CovariateShift",
    "FeedbackLoop",
    "GroupPrevalenceShift",
    "LabelShift",
    "RampTraffic",
    "ReplayHarness",
    "ReplayResult",
    "SCENARIO_SUITES",
    "Scenario",
    "Schedule",
    "SeasonalMixture",
    "StationaryTraffic",
    "StepRecord",
    "SuiteRunner",
    "TrafficBatch",
    "TrafficStream",
    "available_scenarios",
    "available_suites",
    "build_scenario",
    "describe_scenarios",
    "get_scenario_spec",
    "make_scenario",
    "make_suite",
    "register_scenario",
    "shift_intensity",
]
