"""Scenario engine: drift/traffic simulation and serving replay.

The paper's premise is that fairness interventions must stay fair *in
deployment*, where traffic drifts.  This subpackage generates exactly the
traffic the serving monitors exist to catch and scores how fast they catch
it:

* :mod:`repro.simulate.base` — the :class:`Scenario` protocol and the
  :class:`TrafficBatch` container (scenarios declare their own drift ground
  truth, stamped on every batch);
* :mod:`repro.simulate.registry` — ``@register_scenario`` /
  :func:`make_scenario`, mirroring the interventions registry;
* :mod:`repro.simulate.scenarios` — the built-in library: covariate / label /
  group-prevalence shifts, seasonal mixtures, burst and ramp arrival
  patterns, prediction feedback loops, and the :class:`Compose` /
  :class:`Schedule` combinators;
* :mod:`repro.simulate.stream` — :class:`TrafficStream`, turning any
  :class:`~repro.datasets.Dataset` into batched, seed-deterministic traffic
  (same integer seed ⇒ bit-identical batches, hypothesis-tested);
* :mod:`repro.simulate.replay` — :class:`ReplayHarness`, driving a
  :class:`~repro.serving.PredictionService` + monitor over a stream and
  scoring detection latency, false-alarm rate, windowed fairness
  degradation, and throughput;
* :mod:`repro.simulate.suites` — named scenario suites and the
  :class:`SuiteRunner` that replays them with shared baselines;
* :mod:`repro.simulate.cli` — the ``repro-simulate`` command
  (``list`` / ``run`` / ``suite``), also ``python -m repro.simulate``.

Quickstart::

    from repro import FairnessPipeline, load_dataset, split_dataset
    from repro.serving import FairnessMonitor, PredictionService
    from repro.simulate import ReplayHarness, TrafficStream, make_scenario

    result = FairnessPipeline("confair", dataset="meps", seed=7).run()
    data = load_dataset("meps", size_factor=0.05, random_state=7)
    split = split_dataset(data, random_state=7)

    monitor = FairnessMonitor(window_size=2000)
    monitor.set_group_baseline(split.train.group)
    service = PredictionService(result.model, monitor=monitor)

    stream = TrafficStream(split.deploy, make_scenario("group_shift"),
                           n_steps=40, batch_size=128, random_state=7)
    outcome = ReplayHarness(service).replay(stream)
    print(outcome.detected, outcome.detection_latency_steps,
          outcome.false_alarm_rate, outcome.records_per_second)
"""

from repro.simulate.base import Scenario, TrafficBatch, shift_intensity
from repro.simulate.registry import (
    available_scenarios,
    describe_scenarios,
    get_scenario_spec,
    make_scenario,
    register_scenario,
)
from repro.simulate.scenarios import (
    Burst,
    Compose,
    CovariateShift,
    FeedbackLoop,
    GroupPrevalenceShift,
    LabelShift,
    RampTraffic,
    Schedule,
    SeasonalMixture,
    StationaryTraffic,
)
from repro.simulate.stream import TrafficStream
from repro.simulate.replay import ReplayHarness, ReplayResult, StepRecord
from repro.simulate.suites import (
    SCENARIO_SUITES,
    SuiteRunner,
    available_suites,
    build_scenario,
    make_suite,
)

__all__ = [
    "Burst",
    "Compose",
    "CovariateShift",
    "FeedbackLoop",
    "GroupPrevalenceShift",
    "LabelShift",
    "RampTraffic",
    "ReplayHarness",
    "ReplayResult",
    "SCENARIO_SUITES",
    "Scenario",
    "Schedule",
    "SeasonalMixture",
    "StationaryTraffic",
    "StepRecord",
    "SuiteRunner",
    "TrafficBatch",
    "TrafficStream",
    "available_scenarios",
    "available_suites",
    "build_scenario",
    "describe_scenarios",
    "get_scenario_spec",
    "make_scenario",
    "make_suite",
    "register_scenario",
    "shift_intensity",
]
