"""``python -m repro.simulate`` — command-line entry to the scenario engine.

Thin alias for :mod:`repro.simulate.cli` (the ``repro-simulate`` console
script), mirroring ``python -m repro.serve``.
"""

from repro.simulate.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
