"""Turn any :class:`~repro.datasets.Dataset` into replayable traffic.

:class:`TrafficStream` walks a timeline in ``n_steps`` discrete steps.  At
each step it asks its scenario for the arrival volume, draws that many rows
from the source dataset (with replacement, under the scenario's sampling
weights), hands the drawn batch to the scenario's transform, and stamps the
scenario's drift ground truth onto the resulting :class:`TrafficBatch`.

**Determinism contract**: a stream constructed with an integer seed is
*replayable* — every iteration first resets the scenario's episode state and
reseeds a fresh generator, so two iterations of the same stream (or of two
streams built with equal parameters) yield bit-identical batches.  This is
hypothesis-tested across scenario compositions.  Passing a live
``numpy.random.Generator`` instead opts out of replayability (the generator's
state advances), which is occasionally useful for one-shot exploration.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import SimulationError
from repro.simulate.base import Scenario, TrafficBatch
from repro.simulate.scenarios import StationaryTraffic
from repro.utils.random import check_random_state


class TrafficStream:
    """Batched, seed-deterministic serving traffic drawn from a dataset.

    Parameters
    ----------
    dataset:
        Source pool of rows (typically a deploy split); every emitted tuple
        is one of its rows, possibly transformed by the scenario.
    scenario:
        A :class:`~repro.simulate.base.Scenario`; ``None`` means stationary
        control traffic.
    n_steps:
        Number of batches on the timeline; step ``i`` sits at
        ``t = i / (n_steps - 1)``.
    batch_size:
        Base rows per step, before the scenario's arrival-pattern scaling.
    random_state:
        Integer seed (replayable — see the module docstring) or a live
        generator (single-shot).
    """

    def __init__(
        self,
        dataset: Dataset,
        scenario: Optional[Scenario] = None,
        *,
        n_steps: int = 50,
        batch_size: int = 128,
        random_state=0,
    ) -> None:
        if n_steps < 1:
            raise SimulationError("n_steps must be at least 1")
        if batch_size < 1:
            raise SimulationError("batch_size must be at least 1")
        if scenario is not None and not isinstance(scenario, Scenario):
            raise SimulationError(
                f"scenario must be a Scenario instance, got {type(scenario).__name__}"
            )
        self.dataset = dataset
        self.scenario = scenario if scenario is not None else StationaryTraffic()
        self.n_steps = int(n_steps)
        self.batch_size = int(batch_size)
        self.random_state = random_state

    def _timeline(self, step: int) -> float:
        return step / (self.n_steps - 1) if self.n_steps > 1 else 0.0

    def __iter__(self) -> Iterator[TrafficBatch]:
        rng = check_random_state(self.random_state)
        dataset = self.dataset
        scenario = self.scenario
        scenario.reset()
        n_pool = dataset.n_samples
        for step in range(self.n_steps):
            t = self._timeline(step)
            rows = max(1, int(scenario.batch_rows(t, self.batch_size, rng)))
            weights = scenario.sample_weights(dataset, t)
            if weights is None:
                indices = rng.integers(0, n_pool, size=rows)
            else:
                weights = np.asarray(weights, dtype=np.float64)
                if weights.shape[0] != n_pool or np.any(weights < 0) or weights.sum() <= 0:
                    raise SimulationError(
                        f"{type(scenario).__name__}.sample_weights must return "
                        f"{n_pool} non-negative weights with a positive sum"
                    )
                indices = rng.choice(n_pool, size=rows, replace=True, p=weights / weights.sum())
            batch = TrafficBatch(
                X=dataset.X[indices],
                y=dataset.y[indices],
                group=dataset.group[indices],
                step=step,
                t=t,
                drifted=bool(scenario.is_drifted(t)),
                n_numeric_features=dataset.n_numeric_features,
            )
            yield scenario.transform_batch(batch, rng)

    def observe(self, batch: TrafficBatch, predictions: np.ndarray) -> None:
        """Feed served predictions back to the scenario (feedback loops)."""
        self.scenario.observe(batch, predictions)

    @property
    def expected_rows(self) -> int:
        """Base-volume row count (arrival patterns may emit more)."""
        return self.n_steps * self.batch_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TrafficStream({self.dataset.name!r}, {self.scenario!r}, "
            f"n_steps={self.n_steps}, batch_size={self.batch_size})"
        )
