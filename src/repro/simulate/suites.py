"""Named scenario suites and the engine that replays them.

A *suite* is an ordered set of labelled scenarios — always including a
stationary control — that exercises one serving stack from several drift
angles at once.  :class:`SuiteRunner` owns the shared setup (baselines are
computed once from the training split; every scenario gets a fresh monitor
and a fresh deterministic stream) so suite results are comparable across
scenarios and runs.

Suite entries are declarative: a scenario name, ``(name, params)``, or a
sequence of those (replayed as a :class:`~repro.simulate.scenarios.Compose`),
so suites can be listed/extended without touching the runner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.table import Dataset
from repro.density.kde import KernelDensity
from repro.exceptions import SimulationError, ValidationError
from repro.serving.mitigation import (
    MitigationController,
    ThresholdCalibration,
    calibrate_thresholds,
)
from repro.serving.monitor import FairnessMonitor, MonitorBaselines, MonitorThresholds
from repro.serving.service import PredictionService
from repro.simulate.base import Scenario
from repro.simulate.registry import make_scenario
from repro.simulate.replay import ReplayHarness, ReplayResult
from repro.simulate.scenarios import Compose
from repro.simulate.stream import TrafficStream

#: Declarative suite table: label -> scenario spec (see :func:`build_scenario`).
SCENARIO_SUITES: Dict[str, Tuple[Tuple[str, object], ...]] = {
    "default": (
        ("control", "none"),
        ("group_shift", "group_shift"),
        ("covariate_shift", "covariate_shift"),
        ("burst", "burst"),
    ),
    "drift": (
        ("control", "none"),
        ("covariate_shift", "covariate_shift"),
        ("gradual_covariate_shift", "gradual_covariate_shift"),
        ("label_shift", "label_shift"),
        ("group_shift", "group_shift"),
        ("gradual_group_shift", "gradual_group_shift"),
        ("seasonal", "seasonal"),
        ("feedback", "feedback"),
    ),
    "traffic": (
        ("control", "none"),
        ("burst", "burst"),
        ("flash_crowd", "flash_crowd"),
        ("ramp", "ramp"),
    ),
    "full": (
        ("control", "none"),
        ("covariate_shift", "covariate_shift"),
        ("label_shift", "label_shift"),
        ("group_shift", "group_shift"),
        ("seasonal", "seasonal"),
        ("feedback", "feedback"),
        ("burst", "burst"),
        ("ramp", "ramp"),
        ("burst_group_shift", (("burst", {}), ("group_shift", {}))),
    ),
}


def available_suites() -> List[str]:
    """Names accepted by :func:`make_suite` / ``repro-simulate suite``."""
    return list(SCENARIO_SUITES)


def build_scenario(spec) -> Scenario:
    """Build one scenario from a declarative spec.

    Accepts a registered name, a ``(name, params)`` pair, or a sequence of
    those (composed in order).
    """
    if isinstance(spec, str):
        return make_scenario(spec)
    if (
        isinstance(spec, Sequence)
        and len(spec) == 2
        and isinstance(spec[0], str)
        and isinstance(spec[1], dict)
    ):
        return make_scenario(spec[0], **spec[1])
    if isinstance(spec, Sequence) and spec:
        return Compose([build_scenario(item) for item in spec])
    raise SimulationError(f"Cannot build a scenario from spec {spec!r}")


def make_suite(name: str) -> List[Tuple[str, Scenario]]:
    """Materialize a named suite into ``(label, scenario)`` pairs."""
    key = name.strip().lower()
    if key not in SCENARIO_SUITES:
        raise SimulationError(
            f"Unknown suite {name!r}; available suites: {tuple(available_suites())}"
        )
    return [(label, build_scenario(spec)) for label, spec in SCENARIO_SUITES[key]]


class SuiteRunner:
    """Replay scenarios against one model with shared, precomputed baselines.

    Parameters
    ----------
    model:
        Anything :class:`PredictionService` serves (a loaded artifact, a
        :class:`~repro.interventions.DeployedModel`, a ``PipelineResult``).
    train:
        The training split: conformance/density/group baselines are fixed on
        it once and reused by every scenario's fresh monitor.
    profile:
        Optional :class:`~repro.core.partitions.PartitionProfile` enabling
        the conformance-drift channel.
    density_estimator:
        Optional *fitted* :class:`KernelDensity` enabling the density-drift
        channel (fit one on ``train.numeric_X`` to monitor the training
        distribution).
    calibration:
        Optional held-out split (typically validation) used to fix the
        *density* baseline.  A KDE scores its own training sample
        optimistically high — anchoring the baseline there makes every
        held-out batch look drifted — so clean held-out data is the honest
        reference level; conformance and group baselines are unbiased on the
        training split and stay there.
    window_size:
        Monitor window shared by every scenario.
    thresholds:
        Optional :class:`~repro.serving.MonitorThresholds` shared by every
        scenario's monitor (derive one with :meth:`calibrate`).
    group_tolerance, min_samples:
        Deprecated flat spelling of the corresponding ``thresholds`` fields;
        accepted for compatibility but mutually exclusive with
        ``thresholds``.
    service_batch_size, max_workers:
        Micro-batching of the underlying service.
    intervention, learner, intervention_params, fit_n_jobs:
        The refit recipe handed to :class:`~repro.serving.MitigationController`
        when a replay runs with ``mitigate=True`` (defaults mirror the
        runner's typical fit: ConFair over logistic regression).
    mitigation_params:
        Extra keyword arguments forwarded verbatim to
        :class:`~repro.serving.MitigationController` (``min_refit_rows``,
        ``min_shadow_steps``, ``di_tolerance``, …).
    """

    def __init__(
        self,
        model,
        train: Dataset,
        *,
        profile=None,
        density_estimator: Optional[KernelDensity] = None,
        calibration: Optional[Dataset] = None,
        window_size: int = 2000,
        thresholds: Optional[MonitorThresholds] = None,
        group_tolerance: Optional[float] = None,
        min_samples: Optional[int] = None,
        service_batch_size: int = 512,
        max_workers: Optional[int] = None,
        intervention: str = "confair",
        learner: str = "lr",
        intervention_params: Optional[Dict[str, object]] = None,
        fit_n_jobs: Optional[int] = None,
        mitigation_params: Optional[Dict[str, object]] = None,
    ) -> None:
        self.model = model
        self.train = train
        self.profile = profile
        self.density_estimator = density_estimator
        self.window_size = int(window_size)
        if thresholds is None:
            thresholds = MonitorThresholds(
                group_tolerance=0.15 if group_tolerance is None else float(group_tolerance),
                min_samples=50 if min_samples is None else int(min_samples),
            )
        elif group_tolerance is not None or min_samples is not None:
            raise ValidationError(
                "pass monitor configuration either as thresholds= or as the "
                "deprecated flat group_tolerance/min_samples, not both"
            )
        self.thresholds = thresholds
        self.service_batch_size = int(service_batch_size)
        self.max_workers = max_workers
        self.intervention = intervention
        self.learner = learner
        self.intervention_params = dict(intervention_params or {})
        self.fit_n_jobs = fit_n_jobs
        self.mitigation_params = dict(mitigation_params or {})

        probe = self._fresh_monitor()
        if profile is not None:
            probe.set_baselines(violation=train.X)
        if density_estimator is not None:
            density_reference = calibration if calibration is not None else train
            probe.set_baselines(log_density=density_reference.X)
        probe.set_baselines(group_fraction=float(train.minority_fraction))
        self._baselines = probe.baselines

    @property
    def baselines(self) -> MonitorBaselines:
        """The shared reference points every scenario's monitor starts from."""
        return self._baselines

    # Deprecated flat mirrors (pre-MonitorThresholds spelling).
    @property
    def group_tolerance(self) -> float:
        return self.thresholds.group_tolerance

    @property
    def min_samples(self) -> int:
        return self.thresholds.min_samples

    def _fresh_monitor(self) -> FairnessMonitor:
        return FairnessMonitor(
            window_size=self.window_size,
            profile=self.profile,
            density_estimator=self.density_estimator,
            thresholds=self.thresholds,
        )

    def make_monitor(self) -> FairnessMonitor:
        """A fresh monitor with the shared thresholds and baselines installed."""
        monitor = self._fresh_monitor()
        monitor.set_baselines(self._baselines)
        return monitor

    # Kept as an alias: fleet tooling and older scripts call the private name.
    _baseline_monitor = make_monitor

    def calibrate(
        self,
        deploy: Dataset,
        *,
        n_steps: int = 40,
        batch_size: int = 128,
        seed: int = 0,
        target_false_alarm_rate: float = 0.05,
        apply: bool = False,
    ) -> ThresholdCalibration:
        """Derive data-driven thresholds from a stationary control replay.

        Streams ``deploy`` through a drift-free :class:`TrafficStream` and
        hands the batches to
        :func:`repro.serving.calibrate_thresholds`, which sets each alarm
        cutoff just above what clean traffic reaches at the requested
        false-alarm budget.  With ``apply=True`` the runner adopts the
        calibrated :class:`~repro.serving.MonitorThresholds` for every
        subsequent monitor it builds.
        """
        stream = TrafficStream(
            deploy,
            make_scenario("none"),
            n_steps=n_steps,
            batch_size=batch_size,
            random_state=seed,
        )
        calibration = calibrate_thresholds(
            self.make_monitor(),
            list(stream),
            target_false_alarm_rate=target_false_alarm_rate,
        )
        if apply:
            self.thresholds = calibration.thresholds
        return calibration

    def make_service(
        self, *, shards: Optional[int] = None, mitigate: bool = False, seed: int = 7
    ):
        """A fresh monitored service with the shared baselines installed.

        With ``shards=N`` the returned service is a
        :class:`~repro.fleet.FleetService` over N in-process shard workers,
        each serving the same model with its own fresh baseline-installed
        monitor.  Round-robin dispatch plus the fleet's sequence stamping
        make its merged monitor — and therefore the replay verdict —
        bit-identical to the single-service run.

        With ``mitigate=True`` the single-shard service is wrapped in a
        :class:`~repro.serving.MitigationController` (refit recipe and knobs
        from the runner's constructor; ``seed`` fixes the refit split), so
        alarms trigger the refit → shadow → promote loop instead of only
        being scored.
        """
        if mitigate:
            if shards is not None and int(shards) > 1:
                raise SimulationError(
                    "mitigate=True drives a single-service controller; "
                    "sharded mitigation is not supported"
                )
            return MitigationController(
                PredictionService(
                    self.model,
                    batch_size=self.service_batch_size,
                    max_workers=self.max_workers,
                    monitor=self.make_monitor(),
                ),
                intervention=self.intervention,
                learner=self.learner,
                intervention_params=self.intervention_params,
                fit_n_jobs=self.fit_n_jobs,
                seed=seed,
                n_numeric_features=self.train.n_numeric_features,
                **self.mitigation_params,
            )
        if shards is None or int(shards) <= 1:
            return PredictionService(
                self.model,
                batch_size=self.service_batch_size,
                max_workers=self.max_workers,
                monitor=self.make_monitor(),
            )
        # Imported lazily: repro.fleet's replay helpers import this module.
        from repro.fleet.service import FleetService
        from repro.fleet.workers import InlineShardWorker
        from repro.telemetry import (
            EventLog,
            MetricsRegistry,
            events_enabled,
            telemetry_enabled,
        )

        # Each inline shard records into its own registry and event log
        # (inheriting the process-wide enabled flags): per-shard latency
        # histograms and request events then merge into the fleet view
        # without double counting.
        workers = [
            InlineShardWorker(
                PredictionService(
                    self.model,
                    batch_size=self.service_batch_size,
                    max_workers=self.max_workers,
                    monitor=self._baseline_monitor(),
                    telemetry=MetricsRegistry(enabled=telemetry_enabled()),
                    events=EventLog(enabled=events_enabled()),
                    shard_id=shard_id,
                ),
                shard_id=shard_id,
            )
            for shard_id in range(int(shards))
        ]
        return FleetService(workers)

    def replay_scenario(
        self,
        scenario: Scenario,
        deploy: Dataset,
        *,
        label: Optional[str] = None,
        n_steps: int = 40,
        batch_size: int = 128,
        seed: int = 0,
        shards: Optional[int] = None,
        mitigate: bool = False,
        recovery_tolerance: float = 0.05,
    ) -> ReplayResult:
        """Replay one scenario over ``deploy`` traffic with a fresh monitor.

        ``mitigate=True`` wraps the service in a
        :class:`~repro.serving.MitigationController` so the replay scores the
        closed loop — time-to-recovery and fairness-regret land on the
        :class:`~repro.simulate.replay.ReplayResult` alongside detection.
        """
        stream = TrafficStream(
            deploy, scenario, n_steps=n_steps, batch_size=batch_size, random_state=seed
        )
        with self.make_service(shards=shards, mitigate=mitigate, seed=seed) as service:
            return ReplayHarness(service).replay(
                stream, label=label, recovery_tolerance=recovery_tolerance
            )

    def run(
        self,
        suite: str,
        deploy: Dataset,
        *,
        n_steps: int = 40,
        batch_size: int = 128,
        seed: int = 0,
        shards: Optional[int] = None,
        mitigate: bool = False,
        recovery_tolerance: float = 0.05,
    ) -> List[Tuple[str, ReplayResult]]:
        """Replay every scenario of a named suite; returns ``(label, result)``."""
        return [
            (
                label,
                self.replay_scenario(
                    scenario,
                    deploy,
                    label=label,
                    n_steps=n_steps,
                    batch_size=batch_size,
                    seed=seed,
                    shards=shards,
                    mitigate=mitigate,
                    recovery_tolerance=recovery_tolerance,
                ),
            )
            for label, scenario in make_suite(suite)
        ]
