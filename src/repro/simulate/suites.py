"""Named scenario suites and the engine that replays them.

A *suite* is an ordered set of labelled scenarios — always including a
stationary control — that exercises one serving stack from several drift
angles at once.  :class:`SuiteRunner` owns the shared setup (baselines are
computed once from the training split; every scenario gets a fresh monitor
and a fresh deterministic stream) so suite results are comparable across
scenarios and runs.

Suite entries are declarative: a scenario name, ``(name, params)``, or a
sequence of those (replayed as a :class:`~repro.simulate.scenarios.Compose`),
so suites can be listed/extended without touching the runner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.table import Dataset
from repro.density.kde import KernelDensity
from repro.exceptions import SimulationError
from repro.serving.monitor import FairnessMonitor
from repro.serving.service import PredictionService
from repro.simulate.base import Scenario
from repro.simulate.registry import make_scenario
from repro.simulate.replay import ReplayHarness, ReplayResult
from repro.simulate.scenarios import Compose
from repro.simulate.stream import TrafficStream

#: Declarative suite table: label -> scenario spec (see :func:`build_scenario`).
SCENARIO_SUITES: Dict[str, Tuple[Tuple[str, object], ...]] = {
    "default": (
        ("control", "none"),
        ("group_shift", "group_shift"),
        ("covariate_shift", "covariate_shift"),
        ("burst", "burst"),
    ),
    "drift": (
        ("control", "none"),
        ("covariate_shift", "covariate_shift"),
        ("gradual_covariate_shift", "gradual_covariate_shift"),
        ("label_shift", "label_shift"),
        ("group_shift", "group_shift"),
        ("gradual_group_shift", "gradual_group_shift"),
        ("seasonal", "seasonal"),
        ("feedback", "feedback"),
    ),
    "traffic": (
        ("control", "none"),
        ("burst", "burst"),
        ("flash_crowd", "flash_crowd"),
        ("ramp", "ramp"),
    ),
    "full": (
        ("control", "none"),
        ("covariate_shift", "covariate_shift"),
        ("label_shift", "label_shift"),
        ("group_shift", "group_shift"),
        ("seasonal", "seasonal"),
        ("feedback", "feedback"),
        ("burst", "burst"),
        ("ramp", "ramp"),
        ("burst_group_shift", (("burst", {}), ("group_shift", {}))),
    ),
}


def available_suites() -> List[str]:
    """Names accepted by :func:`make_suite` / ``repro-simulate suite``."""
    return list(SCENARIO_SUITES)


def build_scenario(spec) -> Scenario:
    """Build one scenario from a declarative spec.

    Accepts a registered name, a ``(name, params)`` pair, or a sequence of
    those (composed in order).
    """
    if isinstance(spec, str):
        return make_scenario(spec)
    if (
        isinstance(spec, Sequence)
        and len(spec) == 2
        and isinstance(spec[0], str)
        and isinstance(spec[1], dict)
    ):
        return make_scenario(spec[0], **spec[1])
    if isinstance(spec, Sequence) and spec:
        return Compose([build_scenario(item) for item in spec])
    raise SimulationError(f"Cannot build a scenario from spec {spec!r}")


def make_suite(name: str) -> List[Tuple[str, Scenario]]:
    """Materialize a named suite into ``(label, scenario)`` pairs."""
    key = name.strip().lower()
    if key not in SCENARIO_SUITES:
        raise SimulationError(
            f"Unknown suite {name!r}; available suites: {tuple(available_suites())}"
        )
    return [(label, build_scenario(spec)) for label, spec in SCENARIO_SUITES[key]]


class SuiteRunner:
    """Replay scenarios against one model with shared, precomputed baselines.

    Parameters
    ----------
    model:
        Anything :class:`PredictionService` serves (a loaded artifact, a
        :class:`~repro.interventions.DeployedModel`, a ``PipelineResult``).
    train:
        The training split: conformance/density/group baselines are fixed on
        it once and reused by every scenario's fresh monitor.
    profile:
        Optional :class:`~repro.core.partitions.PartitionProfile` enabling
        the conformance-drift channel.
    density_estimator:
        Optional *fitted* :class:`KernelDensity` enabling the density-drift
        channel (fit one on ``train.numeric_X`` to monitor the training
        distribution).
    calibration:
        Optional held-out split (typically validation) used to fix the
        *density* baseline.  A KDE scores its own training sample
        optimistically high — anchoring the baseline there makes every
        held-out batch look drifted — so clean held-out data is the honest
        reference level; conformance and group baselines are unbiased on the
        training split and stay there.
    window_size, group_tolerance, min_samples:
        Monitor configuration shared by every scenario.
    service_batch_size, max_workers:
        Micro-batching of the underlying service.
    """

    def __init__(
        self,
        model,
        train: Dataset,
        *,
        profile=None,
        density_estimator: Optional[KernelDensity] = None,
        calibration: Optional[Dataset] = None,
        window_size: int = 2000,
        group_tolerance: float = 0.15,
        min_samples: int = 50,
        service_batch_size: int = 512,
        max_workers: Optional[int] = None,
    ) -> None:
        self.model = model
        self.train = train
        self.profile = profile
        self.density_estimator = density_estimator
        self.window_size = int(window_size)
        self.group_tolerance = float(group_tolerance)
        self.min_samples = int(min_samples)
        self.service_batch_size = int(service_batch_size)
        self.max_workers = max_workers

        probe = self._fresh_monitor()
        self._violation_baseline = (
            probe.set_drift_baseline(train.X) if profile is not None else None
        )
        density_reference = calibration if calibration is not None else train
        self._density_baseline = (
            probe.set_density_baseline(density_reference.X)
            if density_estimator is not None
            else None
        )
        self._group_baseline = float(train.minority_fraction)

    def _fresh_monitor(self) -> FairnessMonitor:
        return FairnessMonitor(
            window_size=self.window_size,
            profile=self.profile,
            density_estimator=self.density_estimator,
            min_samples=self.min_samples,
            group_tolerance=self.group_tolerance,
        )

    def _baseline_monitor(self) -> FairnessMonitor:
        monitor = self._fresh_monitor()
        if self._violation_baseline is not None:
            monitor.set_drift_baseline(self._violation_baseline)
        if self._density_baseline is not None:
            monitor.set_density_baseline(self._density_baseline)
        monitor.set_group_baseline(self._group_baseline)
        return monitor

    def make_service(self, *, shards: Optional[int] = None):
        """A fresh monitored service with the shared baselines installed.

        With ``shards=N`` the returned service is a
        :class:`~repro.fleet.FleetService` over N in-process shard workers,
        each serving the same model with its own fresh baseline-installed
        monitor.  Round-robin dispatch plus the fleet's sequence stamping
        make its merged monitor — and therefore the replay verdict —
        bit-identical to the single-service run.
        """
        if shards is None or int(shards) <= 1:
            return PredictionService(
                self.model,
                batch_size=self.service_batch_size,
                max_workers=self.max_workers,
                monitor=self._baseline_monitor(),
            )
        # Imported lazily: repro.fleet's replay helpers import this module.
        from repro.fleet.service import FleetService
        from repro.fleet.workers import InlineShardWorker
        from repro.telemetry import MetricsRegistry, telemetry_enabled

        # Each inline shard records into its own registry (inheriting the
        # process-wide enabled flag): per-shard latency histograms then
        # merge into the fleet view without double counting.
        workers = [
            InlineShardWorker(
                PredictionService(
                    self.model,
                    batch_size=self.service_batch_size,
                    max_workers=self.max_workers,
                    monitor=self._baseline_monitor(),
                    telemetry=MetricsRegistry(enabled=telemetry_enabled()),
                ),
                shard_id=shard_id,
            )
            for shard_id in range(int(shards))
        ]
        return FleetService(workers)

    def replay_scenario(
        self,
        scenario: Scenario,
        deploy: Dataset,
        *,
        label: Optional[str] = None,
        n_steps: int = 40,
        batch_size: int = 128,
        seed: int = 0,
        shards: Optional[int] = None,
    ) -> ReplayResult:
        """Replay one scenario over ``deploy`` traffic with a fresh monitor."""
        stream = TrafficStream(
            deploy, scenario, n_steps=n_steps, batch_size=batch_size, random_state=seed
        )
        with self.make_service(shards=shards) as service:
            return ReplayHarness(service).replay(stream, label=label)

    def run(
        self,
        suite: str,
        deploy: Dataset,
        *,
        n_steps: int = 40,
        batch_size: int = 128,
        seed: int = 0,
        shards: Optional[int] = None,
    ) -> List[Tuple[str, ReplayResult]]:
        """Replay every scenario of a named suite; returns ``(label, result)``."""
        return [
            (
                label,
                self.replay_scenario(
                    scenario,
                    deploy,
                    label=label,
                    n_steps=n_steps,
                    batch_size=batch_size,
                    seed=seed,
                    shards=shards,
                ),
            )
            for label, scenario in make_suite(suite)
        ]
