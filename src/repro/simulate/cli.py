"""Command-line front end: scenario simulation and serving replay.

Four subcommands wire the simulation subsystem end to end::

    repro-simulate list
    repro-simulate run       --scenario group_shift --dataset meps
    repro-simulate run       --scenario group_shift --mitigate --audit-out trail
    repro-simulate suite     --suite default --dataset meps
    repro-simulate calibrate --dataset meps --target-far 0.05

``run`` replays one named scenario against a monitored
:class:`~repro.serving.PredictionService` and emits the scored
:class:`~repro.simulate.replay.ReplayResult` as JSON (detection latency,
false-alarm rate, windowed fairness degradation, throughput); with
``--mitigate`` the service is wrapped in a
:class:`~repro.serving.MitigationController`, closing the loop — the result
additionally carries time-to-recovery, fairness-regret, and the controller's
transition summary, and ``--audit-out`` persists the full transition trail
as a schema-versioned artifact.  ``suite`` replays every scenario of a named
suite and emits one row per scenario.  ``calibrate`` replays a stationary
control stream and derives :class:`~repro.serving.MonitorThresholds` hitting
a target false-alarm rate.  All of them drive the service **from a saved
artifact**: pass ``--artifact`` to use one produced by ``repro-serve fit``,
or omit it and the command fits a pipeline, saves the artifact (to ``--out``
or a temporary directory), and loads it back before a single record is
served.

Also available as ``python -m repro.simulate``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from repro.datasets import available_datasets, load_dataset, split_dataset
from repro.density.kde import KernelDensity
from repro.exceptions import ReproError
from repro.interventions import FairnessPipeline, available_interventions
from repro.serving.artifacts import load_artifact, save_artifact
from repro.serving.cli import emit_json, find_profile, parse_params
from repro.serving.mitigation import save_audit_trail
from repro.simulate.registry import available_scenarios, describe_scenarios, make_scenario
from repro.simulate.replay import ReplayHarness
from repro.simulate.stream import TrafficStream
from repro.simulate.suites import SuiteRunner, available_suites
from repro.telemetry import (
    enable as enable_telemetry,
    get_event_log,
    write_events,
    write_metrics,
)


def _prepare(args) -> tuple:
    """Resolve (artifact path, loaded model, split) for a replay command.

    Without ``--artifact`` the pipeline is fitted here, saved, and *loaded
    back* — every replay is driven from a saved artifact, never from the
    in-memory fit.
    """
    if args.artifact:
        artifact = args.artifact
    else:
        target = args.out or tempfile.mkdtemp(prefix="repro-simulate-")
        result = FairnessPipeline(
            intervention=args.intervention,
            learner=args.learner,
            dataset=args.dataset,
            size_factor=args.size_factor,
            seed=args.seed,
            intervention_params=parse_params(args.param),
            fit_n_jobs=getattr(args, "n_jobs", None),
        ).run()
        artifact = str(
            save_artifact(
                result,
                target,
                metadata={
                    "command": "simulate",
                    "dataset": args.dataset,
                    "intervention": args.intervention,
                    "learner": args.learner,
                    "seed": args.seed,
                    "size_factor": args.size_factor,
                },
            )
        )
    loaded = load_artifact(artifact)
    dataset = load_dataset(args.dataset, size_factor=args.size_factor, random_state=args.seed)
    split = split_dataset(dataset, random_state=args.seed)
    return artifact, loaded, split


def _make_runner(args, loaded, split) -> SuiteRunner:
    density_estimator = None
    if args.density:
        density_estimator = KernelDensity(bandwidth="scott", kernel="gaussian").fit(
            split.train.numeric_X
        )
    mitigation_params = {}
    for knob, option in (
        ("min_refit_rows", "min_refit_rows"),
        ("min_shadow_steps", "min_shadow_steps"),
        ("max_shadow_steps", "max_shadow_steps"),
        ("cooldown_steps", "cooldown_steps"),
    ):
        value = getattr(args, option, None)
        if value is not None:
            mitigation_params[knob] = value
    return SuiteRunner(
        loaded,
        split.train,
        profile=find_profile(loaded),
        density_estimator=density_estimator,
        calibration=split.validation,
        window_size=args.window,
        group_tolerance=args.group_tolerance,
        service_batch_size=args.batch_size,
        max_workers=args.workers,
        intervention=args.intervention,
        learner=args.learner,
        intervention_params=parse_params(args.param),
        fit_n_jobs=getattr(args, "n_jobs", None),
        mitigation_params=mitigation_params,
    )


# ---------------------------------------------------------------- commands
def cmd_list(args) -> int:
    emit_json({"scenarios": describe_scenarios(), "suites": available_suites()})
    return 0


def cmd_run(args) -> int:
    if args.metrics_out:
        enable_telemetry()
    if args.events_out:
        get_event_log().enable()
    artifact, loaded, split = _prepare(args)
    runner = _make_runner(args, loaded, split)
    scenario = make_scenario(args.scenario, **parse_params(args.scenario_param))
    payload = {
        "artifact": artifact,
        "dataset": args.dataset,
        "scenario": repr(scenario),
    }
    if args.mitigate:
        # The controller outlives the replay so its full transition trail
        # (not just the summary riding on the result) can be persisted.
        stream = TrafficStream(
            split.deploy,
            scenario,
            n_steps=args.steps,
            batch_size=args.stream_batch,
            random_state=args.seed,
        )
        with runner.make_service(mitigate=True, seed=args.seed) as controller:
            result = ReplayHarness(controller).replay(
                stream,
                label=args.scenario,
                recovery_tolerance=args.recovery_tolerance,
            )
            if args.audit_out:
                payload["audit_out"] = str(
                    save_audit_trail(
                        controller,
                        args.audit_out,
                        metadata={
                            "command": "simulate",
                            "scenario": args.scenario,
                            "dataset": args.dataset,
                            "seed": args.seed,
                        },
                    )
                )
    else:
        result = runner.replay_scenario(
            scenario,
            split.deploy,
            label=args.scenario,
            n_steps=args.steps,
            batch_size=args.stream_batch,
            seed=args.seed,
            recovery_tolerance=args.recovery_tolerance,
        )
    payload["result"] = result.to_dict(include_steps=args.trace)
    if args.metrics_out:
        payload["metrics_out"] = write_metrics(args.metrics_out)
    if args.events_out:
        # The default log carries the replay's flight-recorder stream:
        # request events, alarm edges, channel attributions, and (with
        # --mitigate) mitigation transitions.
        payload["events_out"] = write_events(args.events_out)
    emit_json(payload)
    return 0


def cmd_calibrate(args) -> int:
    if args.metrics_out:
        enable_telemetry()
    if args.events_out:
        get_event_log().enable()
    artifact, loaded, split = _prepare(args)
    runner = _make_runner(args, loaded, split)
    calibration = runner.calibrate(
        split.deploy,
        n_steps=args.steps,
        batch_size=args.stream_batch,
        seed=args.seed,
        target_false_alarm_rate=args.target_far,
    )
    payload = {
        "artifact": artifact,
        "dataset": args.dataset,
        "calibration": calibration.to_dict(),
    }
    if args.metrics_out:
        payload["metrics_out"] = write_metrics(args.metrics_out)
    if args.events_out:
        payload["events_out"] = write_events(args.events_out)
    emit_json(payload)
    return 0


def cmd_suite(args) -> int:
    if args.metrics_out:
        enable_telemetry()
    if args.events_out:
        get_event_log().enable()
    artifact, loaded, split = _prepare(args)
    runner = _make_runner(args, loaded, split)
    results = runner.run(
        args.suite,
        split.deploy,
        n_steps=args.steps,
        batch_size=args.stream_batch,
        seed=args.seed,
    )
    payload = {
        "artifact": artifact,
        "dataset": args.dataset,
        "suite": args.suite,
        "results": {
            label: result.to_dict(include_steps=args.trace)
            for label, result in results
        },
    }
    if args.metrics_out:
        payload["metrics_out"] = write_metrics(args.metrics_out)
    if args.events_out:
        payload["events_out"] = write_events(args.events_out)
    emit_json(payload)
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Simulate drifting/bursty traffic and replay it through a monitored service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    listing = sub.add_parser("list", help="list registered scenarios and suites")
    listing.set_defaults(func=cmd_list)

    def add_replay_options(p) -> None:
        p.add_argument(
            "--dataset",
            default="meps",
            help=f"benchmark name (one of {', '.join(available_datasets())})",
        )
        p.add_argument("--seed", type=int, default=7, help="dataset/split/stream seed")
        p.add_argument(
            "--size-factor",
            type=float,
            default=0.05,
            help="fraction of the published dataset size to generate",
        )
        p.add_argument(
            "--artifact",
            help="artifact directory saved by repro-serve fit (omit to fit one now)",
        )
        p.add_argument(
            "--out",
            help="where to save the freshly fitted artifact (default: a temp directory)",
        )
        p.add_argument(
            "--intervention",
            default="confair",
            help=f"intervention to fit when no artifact is given "
            f"(one of {', '.join(available_interventions())})",
        )
        p.add_argument("--learner", default="lr", help="final-model learner name")
        p.add_argument(
            "--param",
            action="append",
            metavar="KEY=VALUE",
            help="extra intervention constructor parameter (repeatable; JSON value)",
        )
        p.add_argument(
            "--n-jobs",
            type=int,
            default=None,
            help="worker threads for profiling/tuning when fitting here "
            "(bit-identical to serial; -1 = all cores)",
        )
        p.add_argument("--steps", type=int, default=40, help="stream steps on the timeline")
        p.add_argument(
            "--stream-batch", type=int, default=128, help="base rows per stream step"
        )
        p.add_argument("--window", type=int, default=2000, help="monitor window size")
        p.add_argument(
            "--group-tolerance",
            type=float,
            default=0.15,
            help="group-prevalence alarm tolerance (absolute fraction)",
        )
        p.add_argument("--batch-size", type=int, default=512, help="service micro-batch size")
        p.add_argument("--workers", type=int, default=None, help="service thread-pool width")
        density = p.add_mutually_exclusive_group()
        density.add_argument(
            "--density",
            dest="density",
            action="store_true",
            default=True,
            help="enable the density-drift channel (default)",
        )
        density.add_argument(
            "--no-density",
            dest="density",
            action="store_false",
            help="disable the density-drift channel",
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="include the full per-step trace in the JSON report",
        )
        p.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="enable telemetry and write its JSON dump (summary + "
            "mergeable state, incl. replay spans) to PATH after the replay",
        )
        p.add_argument(
            "--events-out",
            default=None,
            metavar="PATH",
            help="enable the flight recorder and write its event-log dump "
            "(request events, alarm edges, channel attributions) to PATH",
        )

    run = sub.add_parser("run", help="replay one scenario and score the monitor")
    add_replay_options(run)
    run.add_argument(
        "--scenario",
        default="group_shift",
        help=f"scenario name (one of {', '.join(available_scenarios())})",
    )
    run.add_argument(
        "--scenario-param",
        action="append",
        metavar="KEY=VALUE",
        help="scenario constructor parameter (repeatable; value parsed as JSON)",
    )
    run.add_argument(
        "--mitigate",
        action="store_true",
        help="wrap the service in a MitigationController: on alarm, refit "
        "the intervention on the drifted window, shadow-score the candidate "
        "on live traffic, and promote when fairness recovers",
    )
    run.add_argument(
        "--audit-out",
        default=None,
        metavar="PATH",
        help="with --mitigate: persist the controller's transition trail as "
        "a schema-versioned artifact directory",
    )
    run.add_argument(
        "--min-refit-rows",
        type=int,
        default=None,
        help="with --mitigate: buffered post-alarm rows required before refitting",
    )
    run.add_argument(
        "--min-shadow-steps",
        type=int,
        default=None,
        help="with --mitigate: shadow observations required before a promote verdict",
    )
    run.add_argument(
        "--max-shadow-steps",
        type=int,
        default=None,
        help="with --mitigate: shadow observations before giving up (reject)",
    )
    run.add_argument(
        "--cooldown-steps",
        type=int,
        default=None,
        help="with --mitigate: steps to ignore alarms after a verdict",
    )
    run.add_argument(
        "--recovery-tolerance",
        type=float,
        default=0.05,
        help="DI* band around the pre-drift baseline that counts as recovered",
    )
    run.set_defaults(func=cmd_run)

    suite = sub.add_parser("suite", help="replay every scenario of a named suite")
    add_replay_options(suite)
    suite.add_argument(
        "--suite",
        default="default",
        help=f"suite name (one of {', '.join(available_suites())})",
    )
    suite.set_defaults(func=cmd_suite)

    calibrate = sub.add_parser(
        "calibrate",
        help="derive MonitorThresholds from a stationary control replay "
        "at a target false-alarm rate",
    )
    add_replay_options(calibrate)
    calibrate.add_argument(
        "--target-far",
        type=float,
        default=0.05,
        help="target false-alarm rate over eligible control steps "
        "(the achieved rate is at most this)",
    )
    calibrate.set_defaults(func=cmd_calibrate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``repro-simulate`` console script)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    raise SystemExit(main())
