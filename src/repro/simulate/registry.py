"""Decorator-driven registry of traffic scenarios.

Mirrors the interventions registry: scenarios register themselves by name::

    @register_scenario("group_shift", summary="minority prevalence shift")
    class GroupPrevalenceShift(Scenario):
        ...

and callers resolve names through :func:`make_scenario`, which validates
keyword arguments against the scenario's constructor signature and raises
:class:`~repro.exceptions.SimulationError` — naming the offending parameter
and listing the accepted ones — instead of silently dropping inapplicable
options.  One class may register under several names with different preset
defaults (that is how named scenario variants share an implementation).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.exceptions import SimulationError
from repro.simulate.base import Scenario

_REGISTRY: Dict[str, "ScenarioSpec"] = {}


@dataclass(frozen=True)
class ScenarioSpec:
    """One registry entry: the scenario class plus name-specific presets."""

    name: str
    cls: Type[Scenario]
    defaults: Mapping[str, object] = field(default_factory=dict)
    summary: str = ""

    def accepted_params(self) -> Tuple[str, ...]:
        """Constructor parameter names the scenario accepts."""
        signature = inspect.signature(self.cls.__init__)
        return tuple(
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind not in (param.VAR_POSITIONAL, param.VAR_KEYWORD)
        )


def register_scenario(
    name: str,
    *,
    defaults: Optional[Mapping[str, object]] = None,
    summary: str = "",
) -> Callable[[Type[Scenario]], Type[Scenario]]:
    """Class decorator registering a :class:`Scenario` under ``name``.

    Parameters
    ----------
    name:
        Public scenario identifier (lower-case; what :func:`make_scenario`
        resolves).
    defaults:
        Constructor presets applied for this name (user kwargs override
        them); used to register preset variants of a shared class.
    summary:
        One-line description shown by :func:`describe_scenarios`.
    """

    def decorator(cls: Type[Scenario]) -> Type[Scenario]:
        key = name.strip().lower()
        if key in _REGISTRY:
            raise SimulationError(f"Scenario {key!r} is already registered")
        if not issubclass(cls, Scenario):
            raise SimulationError(
                f"@register_scenario target {cls.__name__} must subclass Scenario"
            )
        _REGISTRY[key] = ScenarioSpec(
            name=key, cls=cls, defaults=dict(defaults or {}), summary=summary
        )
        return cls

    return decorator


def available_scenarios() -> List[str]:
    """Registered scenario names, in registration order."""
    return list(_REGISTRY)


def describe_scenarios() -> Dict[str, str]:
    """Mapping of registered name to its one-line summary."""
    return {name: spec.summary for name, spec in _REGISTRY.items()}


def get_scenario_spec(name: str) -> ScenarioSpec:
    """Resolve ``name`` (case-insensitive) to its registry entry."""
    key = name.strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise SimulationError(
            f"Unknown scenario {name!r}; available scenarios: "
            f"{tuple(available_scenarios())}"
        ) from None


def make_scenario(name: str, **kwargs) -> Scenario:
    """Instantiate a registered scenario by name.

    Keyword arguments are validated against the scenario's constructor:
    unknown parameters raise :class:`~repro.exceptions.SimulationError`
    naming the rejected option and the accepted ones.
    """
    spec = get_scenario_spec(name)
    accepted = spec.accepted_params()
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        raise SimulationError(
            f"Scenario {spec.name!r} does not accept parameter(s) "
            f"{', '.join(repr(p) for p in unknown)}; accepted parameters: {accepted}"
        )
    params = dict(spec.defaults)
    params.update(kwargs)
    return spec.cls(**params)
