"""The built-in scenario library: shifts, arrival patterns, combinators.

Distribution shifts (drift the monitors exist to catch):

* :class:`CovariateShift` — ``P(X)`` moves: a constant offset is added to the
  numeric features after an onset (optionally ramped);
* :class:`LabelShift` — ``P(y)`` moves: traffic is resampled toward a target
  positive-label rate;
* :class:`GroupPrevalenceShift` — ``P(group)`` moves: traffic is resampled
  toward a target minority fraction (the paper's core drift axis: the group
  mix of serving traffic slides away from the training mix);
* :class:`SeasonalMixture` — the group mix oscillates sinusoidally;
* :class:`FeedbackLoop` — served predictions feed back into arrivals: a
  selection-rate gap between groups compounds into a drifting group mix.

Arrival patterns (load, not distribution — false-alarm probes):

* :class:`Burst` — a transient traffic spike;
* :class:`RampTraffic` — linearly growing volume.

Combinators:

* :class:`Compose` — run several scenarios at once (sizes chained, sampling
  weights multiplied, transforms applied in order);
* :class:`Schedule` — sequence scenarios over the timeline, each seeing its
  own rescaled local clock.

Prevalence shifts share their weighting math with
:func:`repro.datasets.synthetic.resample_dataset` through
:func:`~repro.datasets.synthetic.prevalence_weights`, so the streaming and
offline shift primitives cannot drift apart.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import prevalence_weights
from repro.datasets.table import Dataset
from repro.exceptions import SimulationError
from repro.simulate.base import Scenario, TrafficBatch, shift_intensity
from repro.simulate.registry import register_scenario


@register_scenario("none", summary="stationary control traffic (no drift)")
class StationaryTraffic(Scenario):
    """Uniform resampling of the source dataset: the no-shift control."""

    def __init__(self) -> None:
        pass


@register_scenario("covariate_shift", summary="numeric features shift by a constant offset")
@register_scenario(
    "gradual_covariate_shift",
    defaults={"onset": 0.3, "ramp": 0.5},
    summary="covariate shift ramping in over half the timeline",
)
class CovariateShift(Scenario):
    """Add ``magnitude`` to numeric features once the shift is in effect.

    Parameters
    ----------
    magnitude:
        Offset added at full intensity (features are typically min-max scaled
        to [0, 1], so 0.5 is a drastic shift).
    onset, ramp:
        Envelope of the shift (see
        :func:`~repro.simulate.base.shift_intensity`).
    feature:
        Index of the single numeric column to shift; ``None`` shifts every
        numeric column.
    """

    def __init__(
        self,
        magnitude: float = 0.5,
        onset: float = 0.5,
        ramp: float = 0.0,
        feature: Optional[int] = None,
    ) -> None:
        self.magnitude = float(magnitude)
        self.onset = self._check_unit_interval("onset", onset)
        self.ramp = self._check_unit_interval("ramp", ramp)
        self.feature = feature

    def transform_batch(self, batch: TrafficBatch, rng: np.random.Generator) -> TrafficBatch:
        intensity = shift_intensity(batch.t, self.onset, self.ramp)
        if intensity == 0.0 or self.magnitude == 0.0:
            return batch
        X = batch.X.copy()
        if self.feature is None:
            X[:, : batch.n_numeric_features] += self.magnitude * intensity
        else:
            if not 0 <= int(self.feature) < batch.n_numeric_features:
                raise SimulationError(
                    f"feature index {self.feature!r} is outside the "
                    f"{batch.n_numeric_features} numeric columns"
                )
            X[:, int(self.feature)] += self.magnitude * intensity
        return batch.replace(X=X)

    def is_drifted(self, t: float) -> bool:
        return self.magnitude != 0.0 and shift_intensity(t, self.onset, self.ramp) > 0.0


@register_scenario("label_shift", summary="traffic resampled toward a target positive rate")
class LabelShift(Scenario):
    """Resample traffic so ``P(y = 1)`` moves toward ``target_positive_rate``."""

    _MIN_EFFECTIVE_SHIFT = 1e-9
    """Below this absolute prevalence change the traffic is declared clean."""

    def __init__(
        self,
        target_positive_rate: float = 0.85,
        onset: float = 0.5,
        ramp: float = 0.0,
    ) -> None:
        self.target_positive_rate = self._check_unit_interval(
            "target_positive_rate", target_positive_rate
        )
        self.onset = self._check_unit_interval("onset", onset)
        self.ramp = self._check_unit_interval("ramp", ramp)
        self._base_rate: Optional[float] = None

    def reset(self) -> None:
        self._base_rate = None

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        current = dataset.positive_rate
        self._base_rate = current
        intensity = shift_intensity(t, self.onset, self.ramp)
        if intensity == 0.0:
            return None
        target = current + (self.target_positive_rate - current) * intensity
        return prevalence_weights(dataset.y, target)

    def is_drifted(self, t: float) -> bool:
        """Drifted once the envelope is active *and* a real shift is injected.

        A target equal to the pool's own rate injects nothing (the weights
        degenerate to uniform), so such configurations stay clean; the pool
        rate is learned from the last ``sample_weights`` call and the
        envelope alone decides before any pool has been seen.
        """
        intensity = shift_intensity(t, self.onset, self.ramp)
        if intensity == 0.0:
            return False
        if self._base_rate is None:
            return True
        shift = abs(self.target_positive_rate - self._base_rate) * intensity
        return shift > self._MIN_EFFECTIVE_SHIFT


@register_scenario("group_shift", summary="traffic resampled toward a target minority fraction")
@register_scenario(
    "gradual_group_shift",
    defaults={"onset": 0.3, "ramp": 0.5},
    summary="group-prevalence shift ramping in over half the timeline",
)
class GroupPrevalenceShift(Scenario):
    """Resample traffic so the minority fraction moves toward a target.

    This is the paper's deployment hazard in its purest form: every tuple is
    a genuine tuple of the source distribution, only the group *mix* drifts —
    so per-tuple conformance stays clean and a monitor must watch the mix
    itself (the serving monitor's group-prevalence channel) to notice.
    """

    _MIN_EFFECTIVE_SHIFT = 1e-9
    """Below this absolute prevalence change the traffic is declared clean."""

    def __init__(
        self,
        target_minority_fraction: float = 0.9,
        onset: float = 0.5,
        ramp: float = 0.0,
    ) -> None:
        self.target_minority_fraction = self._check_unit_interval(
            "target_minority_fraction", target_minority_fraction
        )
        self.onset = self._check_unit_interval("onset", onset)
        self.ramp = self._check_unit_interval("ramp", ramp)
        self._base_fraction: Optional[float] = None

    def reset(self) -> None:
        self._base_fraction = None

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        current = dataset.minority_fraction
        self._base_fraction = current
        intensity = shift_intensity(t, self.onset, self.ramp)
        if intensity == 0.0:
            return None
        target = current + (self.target_minority_fraction - current) * intensity
        return prevalence_weights(dataset.group, target)

    def is_drifted(self, t: float) -> bool:
        """Drifted once the envelope is active *and* a real shift is injected.

        See :meth:`LabelShift.is_drifted`: a target equal to the pool's own
        minority fraction injects nothing and stays clean.
        """
        intensity = shift_intensity(t, self.onset, self.ramp)
        if intensity == 0.0:
            return False
        if self._base_fraction is None:
            return True
        shift = abs(self.target_minority_fraction - self._base_fraction) * intensity
        return shift > self._MIN_EFFECTIVE_SHIFT


@register_scenario("seasonal", summary="minority fraction oscillates sinusoidally")
class SeasonalMixture(Scenario):
    """Sinusoidal oscillation of the minority fraction around its base value.

    The fraction at time ``t`` is ``base + amplitude * sin(2π t / period)``
    (clipped into (0, 1)).  Ground truth marks the peaks: a step counts as
    drifted while the deviation exceeds half the amplitude.
    """

    _FRACTION_FLOOR = 0.02
    _FRACTION_CEIL = 0.98

    def __init__(self, amplitude: float = 0.2, period: float = 0.5) -> None:
        self.amplitude = self._check_unit_interval("amplitude", amplitude)
        if period <= 0:
            raise SimulationError("period must be positive")
        self.period = float(period)
        self._base_fraction: Optional[float] = None

    def reset(self) -> None:
        self._base_fraction = None

    def _offset(self, t: float) -> float:
        return self.amplitude * math.sin(2.0 * math.pi * t / self.period)

    def _effective_offset(self, t: float) -> float:
        """The prevalence change actually injected, after the (0, 1) clamp.

        On pools near the prevalence boundary the clamped target moves less
        than the raw sinusoid; ground truth must score what was injected,
        not what was asked for.  The pool fraction is learned from the last
        ``sample_weights`` call; before any pool is seen the raw offset
        stands in.
        """
        offset = self._offset(t)
        base = self._base_fraction
        if base is None:
            return offset
        target = min(max(base + offset, self._FRACTION_FLOOR), self._FRACTION_CEIL)
        return target - base

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        self._base_fraction = dataset.minority_fraction
        offset = self._effective_offset(t)
        if offset == 0.0:
            return None
        return prevalence_weights(dataset.group, self._base_fraction + offset)

    def is_drifted(self, t: float) -> bool:
        return (
            self.amplitude > 0.0
            and abs(self._effective_offset(t)) > 0.5 * self.amplitude
        )


@register_scenario("burst", summary="transient traffic spike (load, not drift)")
@register_scenario(
    "flash_crowd",
    defaults={"factor": 8.0, "width": 0.1},
    summary="short extreme burst: 8x volume for a tenth of the timeline",
)
class Burst(Scenario):
    """Multiply the batch size by ``factor`` during ``[onset, onset + width)``."""

    def __init__(self, factor: float = 4.0, onset: float = 0.5, width: float = 0.25) -> None:
        if factor < 1.0:
            raise SimulationError("factor must be at least 1")
        self.factor = float(factor)
        self.onset = self._check_unit_interval("onset", onset)
        self.width = self._check_unit_interval("width", width)

    def batch_rows(self, t: float, base_rows: int, rng: np.random.Generator) -> int:
        if self.onset <= t < self.onset + self.width:
            return int(round(base_rows * self.factor))
        return int(base_rows)


@register_scenario("ramp", summary="linearly growing traffic volume (load, not drift)")
class RampTraffic(Scenario):
    """Grow the batch size linearly from the base to ``factor`` times it."""

    def __init__(self, factor: float = 3.0) -> None:
        if factor < 1.0:
            raise SimulationError("factor must be at least 1")
        self.factor = float(factor)

    def batch_rows(self, t: float, base_rows: int, rng: np.random.Generator) -> int:
        return int(round(base_rows * (1.0 + (self.factor - 1.0) * t)))


@register_scenario("feedback", summary="selection-rate gaps feed back into the group mix")
class FeedbackLoop(Scenario):
    """Served decisions reshape future arrivals.

    After every observed batch the minority arrival bias is multiplied by
    ``exp(strength * (sr_minority - sr_majority))``: a model that selects the
    minority less sends minority traffic away (and vice versa), compounding
    step by step — the classic unfairness feedback loop.  The bias is episode
    state: :meth:`reset` restores 1.0, and a stream drives ``reset`` before
    every replay so identical seeds still yield identical streams.
    """

    _BIAS_FLOOR = 0.05
    _BIAS_CEIL = 20.0

    def __init__(self, strength: float = 1.0, drift_ratio: float = 1.5) -> None:
        if strength < 0:
            raise SimulationError("strength must be non-negative")
        if drift_ratio <= 1.0:
            raise SimulationError("drift_ratio must exceed 1")
        self.strength = float(strength)
        self.drift_ratio = float(drift_ratio)
        self._minority_bias = 1.0

    def reset(self) -> None:
        self._minority_bias = 1.0

    def observe(self, batch: TrafficBatch, predictions: np.ndarray) -> None:
        predictions = np.asarray(predictions).ravel()
        group = np.asarray(batch.group).ravel()
        minority = group == 1
        if not minority.any() or minority.all():
            return
        gap = float(np.mean(predictions[minority])) - float(np.mean(predictions[~minority]))
        bias = self._minority_bias * math.exp(self.strength * gap)
        self._minority_bias = min(max(bias, self._BIAS_FLOOR), self._BIAS_CEIL)

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        if self._minority_bias == 1.0:
            return None
        weights = np.ones(dataset.n_samples, dtype=np.float64)
        weights[dataset.group == 1] = self._minority_bias
        return weights

    def is_drifted(self, t: float) -> bool:
        bias = self._minority_bias
        return bias >= self.drift_ratio or bias <= 1.0 / self.drift_ratio


class Compose(Scenario):
    """Run several scenarios simultaneously.

    Batch sizes are chained through every scenario in order, sampling weights
    are multiplied, transforms are applied in order, and the ground truth is
    the disjunction (any component drifted ⇒ the batch is drifted).
    """

    def __init__(self, scenarios: Sequence[Scenario] = ()) -> None:
        scenarios = tuple(scenarios)
        if not scenarios:
            raise SimulationError("Compose needs at least one scenario")
        for scenario in scenarios:
            if not isinstance(scenario, Scenario):
                raise SimulationError(
                    f"Compose accepts Scenario instances, got {type(scenario).__name__}"
                )
        self.scenarios = scenarios

    def batch_rows(self, t: float, base_rows: int, rng: np.random.Generator) -> int:
        rows = int(base_rows)
        for scenario in self.scenarios:
            rows = scenario.batch_rows(t, rows, rng)
        return rows

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        combined: Optional[np.ndarray] = None
        for scenario in self.scenarios:
            weights = scenario.sample_weights(dataset, t)
            if weights is None:
                continue
            combined = weights.copy() if combined is None else combined * weights
        return combined

    def transform_batch(self, batch: TrafficBatch, rng: np.random.Generator) -> TrafficBatch:
        for scenario in self.scenarios:
            batch = scenario.transform_batch(batch, rng)
        return batch

    def is_drifted(self, t: float) -> bool:
        return any(scenario.is_drifted(t) for scenario in self.scenarios)

    def reset(self) -> None:
        for scenario in self.scenarios:
            scenario.reset()

    def observe(self, batch: TrafficBatch, predictions: np.ndarray) -> None:
        for scenario in self.scenarios:
            scenario.observe(batch, predictions)


class Schedule(Scenario):
    """Sequence scenarios over the timeline.

    ``stages`` is a sequence of ``(scenario, duration)`` pairs; durations are
    normalized into timeline fractions and each stage sees a *local* clock
    running from 0 to 1 across its window, so a stage's ``onset`` semantics
    are unchanged by where the schedule places it.
    """

    def __init__(self, stages: Sequence[Tuple[Scenario, float]] = ()) -> None:
        stages = tuple((scenario, float(duration)) for scenario, duration in stages)
        if not stages:
            raise SimulationError("Schedule needs at least one (scenario, duration) stage")
        for scenario, duration in stages:
            if not isinstance(scenario, Scenario):
                raise SimulationError(
                    f"Schedule accepts Scenario instances, got {type(scenario).__name__}"
                )
            if duration <= 0:
                raise SimulationError("stage durations must be positive")
        self.stages = stages

    def _active(self, t: float) -> Tuple[Scenario, float]:
        """Return the stage covering ``t`` and the stage-local clock value."""
        total = sum(duration for _, duration in self.stages)
        start = 0.0
        last = len(self.stages) - 1
        for index, (scenario, duration) in enumerate(self.stages):
            width = duration / total
            if t < start + width or index == last:
                local = (t - start) / width if width > 0 else 0.0
                return scenario, min(max(local, 0.0), 1.0)
            start += width
        raise AssertionError("unreachable: the last stage absorbs t == 1")

    def batch_rows(self, t: float, base_rows: int, rng: np.random.Generator) -> int:
        scenario, local = self._active(t)
        return scenario.batch_rows(local, base_rows, rng)

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        scenario, local = self._active(t)
        return scenario.sample_weights(dataset, local)

    def transform_batch(self, batch: TrafficBatch, rng: np.random.Generator) -> TrafficBatch:
        scenario, local = self._active(batch.t)
        return scenario.transform_batch(batch.replace(t=local), rng).replace(t=batch.t)

    def is_drifted(self, t: float) -> bool:
        scenario, local = self._active(t)
        return scenario.is_drifted(local)

    def reset(self) -> None:
        for scenario, _ in self.stages:
            scenario.reset()

    def observe(self, batch: TrafficBatch, predictions: np.ndarray) -> None:
        scenario, _ = self._active(batch.t)
        scenario.observe(batch, predictions)
