"""The ``Scenario`` protocol and the :class:`TrafficBatch` container.

A *scenario* is a composable, seed-deterministic transformation of serving
traffic.  The stream generator (:mod:`repro.simulate.stream`) walks a
timeline ``t ∈ [0, 1]`` in discrete steps and, at every step, asks the
scenario three questions:

1. **how much traffic arrives** — :meth:`Scenario.batch_rows` scales the base
   batch size (burst and ramp arrival patterns live here);
2. **which tuples arrive** — :meth:`Scenario.sample_weights` biases the draw
   from the source dataset (prevalence shifts: group mix, label mix,
   seasonal mixtures, feedback loops);
3. **what happens to the tuples** — :meth:`Scenario.transform_batch` edits the
   drawn rows (covariate shift).

Scenarios additionally *declare their own ground truth*:
:meth:`Scenario.is_drifted` says whether the traffic at time ``t`` deviates
from the training distribution, and the stream stamps that verdict onto every
:class:`TrafficBatch` — which is what lets the replay harness score detection
latency and false alarms without a second source of truth.

Scenarios are :class:`~repro.learners.base.BaseEstimator` subclasses, so
``get_params`` / ``set_params`` / ``clone`` / ``repr`` follow the same
conventions as interventions and learners, and the registry
(:mod:`repro.simulate.registry`) mirrors the interventions registry.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.datasets.table import Dataset
from repro.exceptions import SimulationError
from repro.learners.base import BaseEstimator, clone as clone_estimator


@dataclass(frozen=True)
class TrafficBatch:
    """One step of simulated serving traffic.

    Attributes
    ----------
    X, y, group:
        The served rows — features, (delayed) ground-truth labels, and audit
        group membership.  ``y`` and ``group`` are simulation-side
        information: a group-blind service never shows them to the model,
        the replay harness feeds them to the monitor.
    step:
        0-based step index within the stream.
    t:
        Timeline position in ``[0, 1]``.
    drifted:
        Scenario-declared ground truth: whether this batch was drawn from a
        distribution that deviates from the training one.  Detection-latency
        and false-alarm scoring compare monitor alarms against this flag.
    n_numeric_features:
        How many leading feature columns are numeric (inherited from the
        source dataset; what covariate-shift transforms may edit).
    """

    X: np.ndarray
    y: np.ndarray
    group: np.ndarray
    step: int
    t: float
    drifted: bool
    n_numeric_features: int

    @property
    def n_rows(self) -> int:
        return int(self.X.shape[0])

    def replace(self, **changes) -> "TrafficBatch":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def shift_intensity(t: float, onset: float, ramp: float) -> float:
    """Shared onset/ramp envelope: 0 before ``onset``, 1 after ``onset + ramp``.

    Between the two the intensity rises linearly, so scenarios can model both
    abrupt shifts (``ramp == 0``) and gradual ones with one convention.
    """
    if t < onset:
        return 0.0
    if ramp <= 0.0 or t >= onset + ramp:
        return 1.0
    return (t - onset) / ramp


class Scenario(BaseEstimator):
    """Abstract base for traffic scenarios.

    Subclasses override any subset of the four hooks below; the defaults are
    all identity, so the base class itself is the stationary control
    scenario.  Construction follows the estimator convention (keyword
    hyper-parameters stored verbatim on ``self``), which is what makes
    ``get_params`` / ``set_params`` / :meth:`clone` / ``repr`` work without
    per-class code.

    Scenarios carrying *episode state* (the feedback loop) keep it in
    underscore-prefixed attributes and reset it in :meth:`reset`; the stream
    generator calls ``reset`` at the start of every iteration, which is what
    makes replays of the same seed bit-identical.
    """

    # ------------------------------------------------------------- hooks
    def batch_rows(self, t: float, base_rows: int, rng: np.random.Generator) -> int:
        """Rows arriving at time ``t`` given the stream's base batch size."""
        return int(base_rows)

    def sample_weights(self, dataset: Dataset, t: float) -> Optional[np.ndarray]:
        """Per-row sampling weights over the source dataset (``None`` = uniform)."""
        return None

    def transform_batch(self, batch: TrafficBatch, rng: np.random.Generator) -> TrafficBatch:
        """Edit the drawn rows (covariate transforms); identity by default."""
        return batch

    def is_drifted(self, t: float) -> bool:
        """Ground truth: does traffic at ``t`` deviate from the training data?"""
        return False

    # ------------------------------------------------------ episode state
    def reset(self) -> None:
        """Clear episode state before a (re)play; identity for stateless scenarios."""

    def observe(self, batch: TrafficBatch, predictions: np.ndarray) -> None:
        """Feed served predictions back into the scenario (feedback loops)."""

    # ----------------------------------------------------------- plumbing
    def clone(self) -> "Scenario":
        """Return a fresh copy with identical hyper-parameters and no episode state."""
        duplicate = clone_estimator(self)
        duplicate.reset()
        return duplicate

    @staticmethod
    def _check_unit_interval(name: str, value: float, *, allow_one: bool = True) -> float:
        value = float(value)
        upper_ok = value <= 1.0 if allow_one else value < 1.0
        if not (0.0 <= value and upper_ok):
            raise SimulationError(
                f"{name} must be in [0, 1{']' if allow_one else ')'}; got {value!r}"
            )
        return value
