"""Equivalence, batch-query, and property tests for the batch density engine.

The central contract: every backend (``brute``, ``kd_tree``, ``grid``)
returns log-densities and density ranks **bit-identical** to the frozen seed
implementation in :mod:`repro.density.reference`, and the batch KD-tree /
grid queries are exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.density import (
    GridIndex,
    KDTree,
    KernelDensity,
    backend_cache_size,
    clear_backend_cache,
    resolve_algorithm,
)
from repro.density.reference import ReferenceKDTree, ReferenceKernelDensity
from repro.exceptions import ValidationError


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


# ---------------------------------------------------------------------------
# frozen equivalence: the engine reproduces the seed bit-for-bit
# ---------------------------------------------------------------------------


class TestFrozenEquivalence:
    @pytest.mark.parametrize("kernel", ["tophat", "epanechnikov"])
    @pytest.mark.parametrize("n_dims", [1, 2, 4])
    @pytest.mark.parametrize("bandwidth", [0.6, "scott"])
    def test_kd_tree_bit_identical_to_seed(self, rng, kernel, n_dims, bandwidth):
        X = rng.normal(size=(500, n_dims))
        queries = rng.normal(size=(80, n_dims))
        seed = ReferenceKernelDensity(
            kernel=kernel, bandwidth=bandwidth, algorithm="kd_tree"
        ).fit(X)
        new = KernelDensity(kernel=kernel, bandwidth=bandwidth, algorithm="kd_tree").fit(X)
        for target in (X, queries):
            np.testing.assert_array_equal(
                new.score_samples(target), seed.score_samples(target)
            )
            np.testing.assert_array_equal(new.density_rank(target), seed.density_rank(target))

    @pytest.mark.parametrize("kernel", ["tophat", "epanechnikov"])
    @pytest.mark.parametrize("n_dims", [1, 2, 3])
    def test_grid_bit_identical_to_seed(self, rng, kernel, n_dims):
        X = rng.normal(size=(450, n_dims))
        queries = rng.normal(size=(70, n_dims))
        seed = ReferenceKernelDensity(kernel=kernel, bandwidth=0.5, algorithm="kd_tree").fit(X)
        new = KernelDensity(kernel=kernel, bandwidth=0.5, algorithm="grid").fit(X)
        assert new.algorithm_ == "grid"
        for target in (X, queries):
            np.testing.assert_array_equal(
                new.score_samples(target), seed.score_samples(target)
            )

    @pytest.mark.parametrize("kernel", ["gaussian", "tophat", "epanechnikov"])
    def test_brute_bit_identical_to_seed(self, rng, kernel):
        X = rng.normal(size=(300, 3))
        queries = rng.normal(size=(60, 3))
        seed = ReferenceKernelDensity(kernel=kernel, bandwidth=0.8, algorithm="brute").fit(X)
        new = KernelDensity(kernel=kernel, bandwidth=0.8, algorithm="brute").fit(X)
        np.testing.assert_array_equal(
            new.score_samples(queries), seed.score_samples(queries)
        )

    @pytest.mark.parametrize("kernel", ["gaussian", "tophat", "epanechnikov"])
    @pytest.mark.parametrize("n_rows", [40, 400])
    def test_auto_bit_identical_to_seed_auto(self, rng, kernel, n_rows):
        # auto may now resolve to the grid backend where the seed picked the
        # tree, but the scores must stay bit-identical regardless.
        X = rng.normal(size=(n_rows, 2))
        queries = rng.normal(size=(50, 2))
        seed = ReferenceKernelDensity(kernel=kernel, algorithm="auto").fit(X)
        new = KernelDensity(kernel=kernel, algorithm="auto").fit(X)
        np.testing.assert_array_equal(
            new.score_samples(queries), seed.score_samples(queries)
        )

    def test_zero_density_rows_score_negative_infinity(self, rng):
        X = rng.normal(size=(200, 2))
        far = np.full((3, 2), 50.0)
        for algorithm in ("brute", "kd_tree", "grid"):
            kde = KernelDensity(kernel="tophat", bandwidth=0.5, algorithm=algorithm).fit(X)
            assert np.all(np.isneginf(kde.score_samples(far)))


# ---------------------------------------------------------------------------
# batch queries are exact
# ---------------------------------------------------------------------------


class TestBatchQueries:
    def test_query_radius_batch_matches_brute_force(self, rng):
        X = rng.normal(size=(400, 3))
        queries = rng.normal(size=(50, 3))
        tree = KDTree(X, leaf_size=8)
        neighbours = tree.query_radius_batch(queries, 0.9)
        assert len(neighbours) == len(queries)
        for i, query in enumerate(queries):
            brute = np.flatnonzero(np.linalg.norm(X - query, axis=1) <= 0.9)
            np.testing.assert_array_equal(neighbours[i], brute)

    def test_query_radius_batch_matches_seed_tree(self, rng):
        X = rng.normal(size=(300, 2))
        queries = rng.normal(size=(40, 2))
        tree = KDTree(X, leaf_size=8)
        seed = ReferenceKDTree(X, leaf_size=8)
        neighbours = tree.query_radius_batch(queries, 0.7)
        for i, query in enumerate(queries):
            np.testing.assert_array_equal(neighbours[i], seed.query_radius(query, 0.7))

    def test_query_radius_csr_layout(self, rng):
        X = rng.normal(size=(200, 2))
        queries = rng.normal(size=(30, 2))
        tree = KDTree(X, leaf_size=8)
        points, distances, indptr = tree.query_radius_csr(queries, 0.8)
        assert indptr[0] == 0 and indptr[-1] == points.size == distances.size
        assert np.all(np.diff(indptr) >= 0)
        for i in range(len(queries)):
            segment = points[indptr[i] : indptr[i + 1]]
            assert np.all(np.diff(segment) > 0)  # strictly ascending indices
        assert np.all(distances <= 0.8)

    def test_query_batch_matches_brute_force_knn(self, rng):
        X = rng.normal(size=(350, 3))
        queries = rng.normal(size=(40, 3))
        tree = KDTree(X, leaf_size=8)
        distances, indices = tree.query_batch(queries, k=7)
        assert distances.shape == indices.shape == (40, 7)
        for i, query in enumerate(queries):
            all_dist = np.linalg.norm(X - query, axis=1)
            expected = set(np.argsort(all_dist, kind="stable")[:7].tolist())
            assert set(indices[i].tolist()) == expected
            assert np.all(np.diff(distances[i]) >= 0)

    def test_query_batch_k_equals_n(self, rng):
        X = rng.normal(size=(25, 2))
        distances, indices = KDTree(X, leaf_size=4).query_batch(rng.normal(size=(5, 2)), k=25)
        for row in indices:
            assert sorted(row.tolist()) == list(range(25))
        assert np.all(np.diff(distances, axis=1) >= 0)

    def test_empty_query_batches(self, rng):
        X = rng.normal(size=(60, 2))
        tree = KDTree(X, leaf_size=8)
        grid = GridIndex(X, cell_size=0.5)
        empty = np.empty((0, 2))
        assert tree.query_radius_batch(empty, 0.5) == []
        assert grid.query_radius_batch(empty, 0.5) == []
        points, distances, indptr = tree.query_radius_csr(empty, 0.5)
        assert points.size == distances.size == 0 and indptr.tolist() == [0]
        knn_dist, knn_idx = tree.query_batch(empty, k=3)
        assert knn_dist.shape == knn_idx.shape == (0, 3)
        kde = KernelDensity(kernel="tophat", bandwidth=0.5, algorithm="kd_tree").fit(X)
        with pytest.raises(ValidationError):
            kde.score_samples(empty)  # check_array rejects empty matrices

    def test_batch_validation(self, rng):
        tree = KDTree(rng.normal(size=(50, 3)))
        with pytest.raises(ValidationError):
            tree.query_radius_batch(np.zeros((4, 2)), 1.0)
        with pytest.raises(ValidationError):
            tree.query_radius_batch(np.zeros((4, 3)), -1.0)
        with pytest.raises(ValidationError):
            tree.query_batch(np.full((4, 3), np.nan), k=1)
        with pytest.raises(ValidationError):
            tree.query_batch(np.zeros((4, 3)), k=0)


class TestGridIndex:
    def test_matches_brute_force(self, rng):
        X = rng.normal(size=(400, 2))
        queries = rng.normal(size=(60, 2))
        grid = GridIndex(X, cell_size=0.6)
        neighbours = grid.query_radius_batch(queries, 0.6)
        for i, query in enumerate(queries):
            brute = np.flatnonzero(np.linalg.norm(X - query, axis=1) <= 0.6)
            np.testing.assert_array_equal(neighbours[i], brute)

    def test_radius_above_cell_size_rejected(self, rng):
        grid = GridIndex(rng.normal(size=(50, 2)), cell_size=0.5)
        with pytest.raises(ValidationError):
            grid.query_radius_batch(np.zeros((2, 2)), 0.75)

    def test_far_and_extreme_queries_have_no_neighbours(self, rng):
        grid = GridIndex(rng.normal(size=(100, 2)), cell_size=0.5)
        far = np.array([[25.0, -40.0], [1e250, -1e250]])
        neighbours = grid.query_radius_batch(far, 0.5)
        assert all(found.size == 0 for found in neighbours)

    def test_duplicate_points_supported(self):
        grid = GridIndex(np.zeros((30, 2)), cell_size=1.0)
        found = grid.query_radius_batch(np.zeros((1, 2)), 0.5)[0]
        np.testing.assert_array_equal(found, np.arange(30))

    def test_invalid_cell_size(self, rng):
        with pytest.raises(ValidationError):
            GridIndex(rng.normal(size=(10, 2)), cell_size=0.0)

    def test_unsuitable_data_rejected(self):
        # Two points an astronomical distance apart: the cell box cannot be
        # flattened into int64 keys.
        points = np.array([[0.0, 0.0], [1e18, 1e18]])
        assert not GridIndex.is_suitable(points, 1e-3)
        with pytest.raises(ValidationError):
            GridIndex(points, cell_size=1e-3)


# ---------------------------------------------------------------------------
# dispatch policy and the backend cache
# ---------------------------------------------------------------------------


class TestBackendDispatch:
    def test_gaussian_always_scores_brute(self, rng):
        X = rng.normal(size=(400, 2))
        for algorithm in ("auto", "kd_tree", "brute"):
            kde = KernelDensity(kernel="gaussian", algorithm=algorithm).fit(X)
            assert kde.algorithm_ == "brute"

    def test_grid_requires_compact_kernel(self, rng):
        with pytest.raises(ValidationError):
            KernelDensity(kernel="gaussian", algorithm="grid").fit(rng.normal(size=(200, 2)))

    def test_auto_picks_grid_tree_and_brute(self, rng):
        small = rng.normal(size=(40, 2))
        low_dim = rng.normal(size=(400, 2))
        high_dim = rng.normal(size=(400, 6))
        assert KernelDensity(kernel="tophat", algorithm="auto").fit(small).algorithm_ == "brute"
        assert KernelDensity(kernel="tophat", algorithm="auto").fit(low_dim).algorithm_ == "grid"
        assert (
            KernelDensity(kernel="tophat", algorithm="auto").fit(high_dim).algorithm_
            == "kd_tree"
        )

    def test_unknown_algorithm_rejected(self, rng):
        with pytest.raises(ValidationError):
            KernelDensity(algorithm="quantum").fit(rng.normal(size=(10, 2)))

    def test_resolve_algorithm_explicit_grid_unsuitable(self):
        points = np.array([[0.0, 0.0], [1e18, 1e18]])
        with pytest.raises(ValidationError):
            resolve_algorithm("grid", "tophat", points, leaf_size=32, bandwidth=1e-3)


class TestBackendCache:
    def test_refits_share_the_structure(self, rng):
        clear_backend_cache()
        X = rng.normal(size=(300, 2))
        first = KernelDensity(kernel="tophat", bandwidth=0.5, algorithm="kd_tree").fit(X)
        second = KernelDensity(kernel="tophat", bandwidth=0.5, algorithm="kd_tree").fit(
            X.copy()
        )
        assert first._backend is second._backend
        assert backend_cache_size() == 1

    def test_different_parameters_build_different_structures(self, rng):
        clear_backend_cache()
        X = rng.normal(size=(300, 2))
        first = KernelDensity(
            kernel="tophat", bandwidth=0.5, algorithm="kd_tree", leaf_size=16
        ).fit(X)
        second = KernelDensity(
            kernel="tophat", bandwidth=0.5, algorithm="kd_tree", leaf_size=64
        ).fit(X)
        assert first._backend is not second._backend
        assert backend_cache_size() == 2

    def test_different_data_builds_different_structures(self, rng):
        clear_backend_cache()
        kde = KernelDensity(kernel="tophat", bandwidth=0.5, algorithm="kd_tree")
        first = kde.fit(rng.normal(size=(200, 2)))._backend
        second = kde.fit(rng.normal(size=(200, 2)))._backend
        assert first is not second


# ---------------------------------------------------------------------------
# analytic regression pin and backend-invariance properties
# ---------------------------------------------------------------------------


class TestAnalyticRegression:
    def test_score_samples_pinned_on_analytic_1d_gaussian_grid(self):
        """Pin score_samples against the closed-form 1-D Gaussian KDE."""
        train = np.array([[-1.5], [-0.5], [0.0], [0.25], [2.0]])
        bandwidth = 0.5
        grid = np.linspace(-3.0, 3.0, 41).reshape(-1, 1)
        kde = KernelDensity(kernel="gaussian", bandwidth=bandwidth).fit(train)

        diffs = (grid - train.T) / bandwidth  # (41, 5)
        expected = np.log(
            np.mean(np.exp(-0.5 * diffs**2), axis=1)
            / (np.sqrt(2.0 * np.pi) * bandwidth)
        )
        np.testing.assert_allclose(kde.score_samples(grid), expected, rtol=1e-12, atol=0)


# Discrete coordinates force duplicate rows (exact ties) while the 0.7
# bandwidth sits far (>= 0.007) from every attainable inter-point distance,
# so no backend can disagree on neighbourhood membership at the boundary.
_TIED_COORDS = st.sampled_from([-1.0, -0.5, 0.0, 0.5, 1.0])


class TestBackendInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        n_rows=st.integers(min_value=8, max_value=40),
        n_dims=st.integers(min_value=1, max_value=3),
    )
    def test_density_rank_invariant_across_all_backends_tophat(self, data, n_rows, n_dims):
        rows = data.draw(
            st.lists(
                st.lists(_TIED_COORDS, min_size=n_dims, max_size=n_dims),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
        X = np.asarray(rows, dtype=np.float64)
        ranks = [
            KernelDensity(kernel="tophat", bandwidth=0.7, algorithm=algorithm)
            .fit(X)
            .density_rank(X)
            for algorithm in ("brute", "kd_tree", "grid")
        ]
        np.testing.assert_array_equal(ranks[0], ranks[1])
        np.testing.assert_array_equal(ranks[0], ranks[2])

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        n_rows=st.integers(min_value=8, max_value=40),
        n_dims=st.integers(min_value=1, max_value=3),
    )
    def test_density_rank_identical_between_tree_and_grid_epanechnikov(
        self, data, n_rows, n_dims
    ):
        rows = data.draw(
            st.lists(
                st.lists(_TIED_COORDS, min_size=n_dims, max_size=n_dims),
                min_size=n_rows,
                max_size=n_rows,
            )
        )
        X = np.asarray(rows, dtype=np.float64)
        tree = KernelDensity(kernel="epanechnikov", bandwidth=0.7, algorithm="kd_tree").fit(X)
        grid = KernelDensity(kernel="epanechnikov", bandwidth=0.7, algorithm="grid").fit(X)
        np.testing.assert_array_equal(tree.score_samples(X), grid.score_samples(X))
        np.testing.assert_array_equal(tree.density_rank(X), grid.density_rank(X))

    def test_density_rank_consistent_on_continuous_data(self, rng):
        # kd_tree and grid share the exact same arithmetic, so their ranks are
        # identical even through ties; brute computes distances via a different
        # (ulp-divergent) expansion, so it is compared up to tied groups.
        X = rng.normal(size=(250, 2))
        fitted = {
            algorithm: KernelDensity(
                kernel="epanechnikov", bandwidth=0.6, algorithm=algorithm
            ).fit(X)
            for algorithm in ("brute", "kd_tree", "grid")
        }
        np.testing.assert_array_equal(
            fitted["kd_tree"].density_rank(X), fitted["grid"].density_rank(X)
        )
        scores_brute = fitted["brute"].score_samples(X)
        scores_tree = fitted["kd_tree"].score_samples(X)
        np.testing.assert_allclose(scores_brute, scores_tree, rtol=1e-12)
        # Ranks agree wherever the density is not tied with another row.
        unique_scores, counts = np.unique(scores_tree, return_counts=True)
        untied = np.isin(scores_tree, unique_scores[counts == 1])
        np.testing.assert_array_equal(
            fitted["brute"].density_rank(X)[untied],
            fitted["kd_tree"].density_rank(X)[untied],
        )
