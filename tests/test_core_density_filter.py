"""Unit tests for Algorithm 3 (density filtering) and partition profiling."""

import numpy as np
import pytest

from repro.core import density_filter, density_filter_indices, profile_partitions
from repro.core.density_filter import partition_density_ranks
from repro.exceptions import ConstraintError, ValidationError


class TestDensityFilterIndices:
    def test_keeps_requested_fraction(self, rng):
        X = rng.normal(size=(200, 3))
        kept = density_filter_indices(X, density_fraction=0.2)
        assert len(kept) == 40

    def test_keeps_dense_core_not_outliers(self, rng):
        core = rng.normal(0, 0.3, size=(180, 2))
        outliers = rng.normal(0, 8.0, size=(20, 2))
        X = np.vstack([core, outliers])
        kept = density_filter_indices(X, density_fraction=0.5)
        # Outlier rows (indices >= 180) should almost never survive.
        assert np.mean(kept >= 180) < 0.1

    def test_min_keep_floor(self, rng):
        X = rng.normal(size=(20, 2))
        kept = density_filter_indices(X, density_fraction=0.1, min_keep=10)
        assert len(kept) == 10

    def test_fraction_one_keeps_everything(self, rng):
        X = rng.normal(size=(30, 2))
        assert len(density_filter_indices(X, density_fraction=1.0)) == 30

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValidationError):
            density_filter_indices(rng.normal(size=(10, 2)), density_fraction=0.0)

    def test_indices_are_sorted_and_unique(self, rng):
        kept = density_filter_indices(rng.normal(size=(100, 2)), density_fraction=0.3)
        assert np.array_equal(kept, np.unique(kept))


class TestDensityFilterDataset:
    def test_filters_each_partition(self, drifted_dataset):
        filtered = density_filter(drifted_dataset, density_fraction=0.2)
        assert filtered.n_samples < drifted_dataset.n_samples
        # Every (group, label) partition must still be present.
        assert set(filtered.partition_sizes().values()) != {0}
        for key, size in filtered.partition_sizes().items():
            assert size > 0, key

    def test_original_not_modified(self, drifted_dataset):
        before = drifted_dataset.n_samples
        density_filter(drifted_dataset, density_fraction=0.2)
        assert drifted_dataset.n_samples == before

    def test_partition_density_ranks_shapes(self, drifted_dataset):
        ranks = partition_density_ranks(drifted_dataset)
        sizes = drifted_dataset.partition_sizes()
        for key, rank in ranks.items():
            assert len(rank) == sizes[key]
            assert set(rank.tolist()) == set(range(sizes[key]))


class TestProfilePartitions:
    def test_four_constraint_sets(self, drifted_dataset):
        profile = profile_partitions(drifted_dataset)
        assert set(profile.keys()) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_profiled_sizes_smaller_with_filter(self, drifted_dataset):
        with_filter = profile_partitions(drifted_dataset, use_density_filter=True)
        without = profile_partitions(drifted_dataset, use_density_filter=False)
        for key in with_filter.keys():
            assert with_filter.profiled_sizes[key] <= without.profiled_sizes[key]

    def test_own_partition_violation_lower_than_other_group(self, drifted_dataset):
        profile = profile_partitions(drifted_dataset)
        minority_positive = drifted_dataset.partition(group_value=1, label=1)
        own = profile.min_violation_for_group(1, minority_positive.numeric_X).mean()
        other = profile.min_violation_for_group(0, minority_positive.numeric_X).mean()
        assert own < other

    def test_unknown_partition_violation_raises(self, drifted_dataset):
        profile = profile_partitions(drifted_dataset)
        with pytest.raises(ConstraintError):
            profile.violation((2, 0), drifted_dataset.numeric_X)

    def test_small_partitions_are_skipped(self):
        from repro.datasets import Dataset

        X = np.random.default_rng(0).normal(size=(40, 3))
        y = np.array([1] * 39 + [0])  # a single (·, 0) tuple
        group = np.array([0] * 20 + [1] * 20)
        data = Dataset(X=X, y=y, group=group)
        profile = profile_partitions(data, min_partition_size=2)
        assert (1, 0) not in profile.constraint_sets or (0, 0) not in profile.constraint_sets
