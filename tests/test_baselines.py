"""Unit tests for the baseline interventions (none, MultiModel, KAM, OMN, CAP)."""

import numpy as np
import pytest

from repro.baselines import (
    CapuchinRepair,
    KamiranReweighing,
    MultiModel,
    NoIntervention,
    OmniFairReweighing,
)
from repro.exceptions import NotFittedError, ValidationError
from repro.fairness import evaluate_predictions


class TestNoIntervention:
    def test_fit_predict(self, drifted_split):
        model = NoIntervention(learner="lr").fit(drifted_split.train)
        predictions = model.predict(drifted_split.deploy.X)
        assert predictions.shape[0] == drifted_split.deploy.n_samples
        assert set(np.unique(predictions)) <= {0, 1}

    def test_predict_proba(self, drifted_split):
        model = NoIntervention(learner="lr").fit(drifted_split.train)
        proba = model.predict_proba(drifted_split.deploy.X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            NoIntervention().predict(np.zeros((2, 3)))


class TestMultiModel:
    def test_requires_group_at_prediction(self, drifted_split):
        model = MultiModel(learner="lr").fit(drifted_split.train)
        predictions = model.predict(drifted_split.deploy.X, drifted_split.deploy.group)
        assert predictions.shape[0] == drifted_split.deploy.n_samples

    def test_group_length_mismatch(self, drifted_split):
        model = MultiModel(learner="lr").fit(drifted_split.train)
        with pytest.raises(ValidationError):
            model.predict(drifted_split.deploy.X, drifted_split.deploy.group[:-3])

    def test_improves_fairness_under_drift(self, drifted_split):
        split = drifted_split
        baseline = NoIntervention(learner="lr").fit(split.train)
        base_report = evaluate_predictions(
            split.deploy.y, baseline.predict(split.deploy.X), split.deploy.group
        )
        multimodel = MultiModel(learner="lr").fit(split.train)
        report = evaluate_predictions(
            split.deploy.y,
            multimodel.predict(split.deploy.X, split.deploy.group),
            split.deploy.group,
        )
        assert report.di_star > base_report.di_star
        assert report.balanced_accuracy > base_report.balanced_accuracy - 0.1

    def test_requires_both_groups(self, drifted_split):
        with pytest.raises(ValidationError):
            MultiModel(learner="lr").fit(drifted_split.train.partition(group_value=1))


class TestKamiran:
    def test_cell_weights_restore_independence(self, lsac_split):
        train = lsac_split.train
        kam = KamiranReweighing().fit(train)
        weights = kam.weights_
        # Under the weights, the weighted joint distribution of (group, label)
        # factorizes into its marginals.
        total = weights.sum()
        for group_value in (0, 1):
            for label in (0, 1):
                cell = (train.group == group_value) & (train.y == label)
                if not cell.any():
                    continue
                weighted_joint = weights[cell].sum() / total
                weighted_group = weights[train.group == group_value].sum() / total
                weighted_label = weights[train.y == label].sum() / total
                assert weighted_joint == pytest.approx(weighted_group * weighted_label, abs=1e-6)

    def test_identical_weights_within_cells(self, lsac_split):
        kam = KamiranReweighing().fit(lsac_split.train)
        train = lsac_split.train
        for group_value in (0, 1):
            for label in (0, 1):
                cell = (train.group == group_value) & (train.y == label)
                if cell.any():
                    assert np.unique(kam.weights_[cell]).size == 1

    def test_fit_learner_improves_fairness(self, lsac_split):
        split = lsac_split
        baseline = NoIntervention(learner="lr").fit(split.train)
        base_report = evaluate_predictions(
            split.deploy.y, baseline.predict(split.deploy.X), split.deploy.group
        )
        kam_model = KamiranReweighing(learner="lr").fit(split.train).fit_learner()
        report = evaluate_predictions(
            split.deploy.y, kam_model.predict(split.deploy.X), split.deploy.group
        )
        assert report.di_star >= base_report.di_star - 0.05

    def test_fit_learner_before_fit(self):
        with pytest.raises(NotFittedError):
            KamiranReweighing().fit_learner()

    def test_not_fitted_behavior_is_uniform(self):
        """Every baseline raises NotFittedError before fit (not ValidationError)."""
        cases = (
            lambda: NoIntervention().predict(np.zeros((2, 3))),
            lambda: MultiModel().predict(np.zeros((2, 3)), np.zeros(2, dtype=int)),
            lambda: KamiranReweighing().fit_learner(),
            lambda: OmniFairReweighing(lam=0.5).fit_learner(),
            lambda: CapuchinRepair().fit_learner(),
        )
        for invoke in cases:
            with pytest.raises(NotFittedError):
                invoke()

    def test_reprs_show_constructor_params(self):
        assert "learner='lr'" in repr(NoIntervention(learner="lr"))
        assert "repair_strength=0.5" in repr(CapuchinRepair(repair_strength=0.5))
        assert "lam=1.0" in repr(OmniFairReweighing(lam=1.0))


class TestOmniFair:
    def test_lambda_zero_gives_unit_weights(self, lsac_split):
        omn = OmniFairReweighing(lam=0.0, learner="lr").fit(lsac_split.train)
        assert np.allclose(omn.weights_, 1.0)

    def test_uniform_weights_within_cells(self, lsac_split):
        omn = OmniFairReweighing(lam=1.0, learner="lr").fit(lsac_split.train)
        train = lsac_split.train
        for group_value in (0, 1):
            for label in (0, 1):
                cell = (train.group == group_value) & (train.y == label)
                if cell.any():
                    assert np.unique(np.round(omn.weights_[cell], 9)).size == 1

    def test_lambda_search_requires_validation(self, lsac_split):
        with pytest.raises(ValidationError):
            OmniFairReweighing(learner="lr").fit(lsac_split.train)

    def test_lambda_search_picks_from_grid(self, lsac_split):
        omn = OmniFairReweighing(learner="lr", lam_grid=(0.0, 0.5)).fit(
            lsac_split.train, validation=lsac_split.validation
        )
        assert omn.lam_ in (0.0, 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            OmniFairReweighing(lam=-1.0)
        with pytest.raises(ValidationError):
            OmniFairReweighing(n_calibration_rounds=0)
        with pytest.raises(ValidationError):
            OmniFairReweighing(fairness_target="accuracy")


class TestCapuchin:
    def test_repair_moves_cells_toward_independence(self, lsac_split):
        train = lsac_split.train
        cap = CapuchinRepair(random_state=0).fit(train)
        repaired = cap.repaired_
        n = repaired.n_samples

        def dependence(dataset):
            total = dataset.n_samples
            gap = 0.0
            for group_value in (0, 1):
                for label in (0, 1):
                    joint = np.mean((dataset.group == group_value) & (dataset.y == label))
                    independent = np.mean(dataset.group == group_value) * np.mean(dataset.y == label)
                    gap += abs(joint - independent)
            return gap

        assert dependence(repaired) < dependence(train) + 1e-9
        assert n > 0

    def test_repair_strength_zero_keeps_cell_counts(self, lsac_split):
        cap = CapuchinRepair(repair_strength=0.0, random_state=0).fit(lsac_split.train)
        assert cap.repaired_.partition_sizes() == lsac_split.train.partition_sizes()

    def test_original_dataset_untouched(self, lsac_split):
        sizes_before = lsac_split.train.partition_sizes()
        CapuchinRepair(random_state=0).fit(lsac_split.train)
        assert lsac_split.train.partition_sizes() == sizes_before

    def test_fit_learner_produces_usable_model(self, lsac_split):
        cap = CapuchinRepair(learner="lr", random_state=0).fit(lsac_split.train)
        model = cap.fit_learner()
        predictions = model.predict(lsac_split.deploy.X)
        assert predictions.shape[0] == lsac_split.deploy.n_samples

    def test_invalid_strength(self):
        with pytest.raises(ValidationError):
            CapuchinRepair(repair_strength=1.5)
