"""Sharded-replay equivalence — the fleet's acceptance criterion.

An 8-way sharded drift replay (round-robin dispatch, sequence-stamped
batches, monitors merged per step) must be **bit-identical** to the
single-service replay of the same stream: same alarms at the same steps,
same detection latency, same windowed DI* trajectory, same scored verdict —
everything in ``ReplayResult.to_dict(include_steps=True)`` except wall-clock
throughput.
"""

from __future__ import annotations

import pytest

from repro.datasets import make_drifted_groups, split_dataset
from repro.fleet import compare_sharded_replay, diff_replay_results
from repro.fleet.service import FleetService
from repro.interventions import FairnessPipeline
from repro.serving import PredictionService
from repro.serving.cli import find_profile
from repro.simulate import SuiteRunner, make_scenario
from repro.simulate.replay import ReplayHarness
from repro.simulate.stream import TrafficStream
from repro.telemetry import get_event_log

SPLIT = split_dataset(
    make_drifted_groups(
        n_majority=900, n_minority=380, n_features=4, name="fleet-replay", random_state=33
    ),
    random_state=33,
)


@pytest.fixture(scope="module")
def runner():
    result = FairnessPipeline(
        "confair", dataset=SPLIT, intervention_params={"alpha_u": 1.0}, seed=33
    ).run()
    return SuiteRunner(
        result.model,
        SPLIT.train,
        profile=find_profile(result),
        calibration=SPLIT.validation,
        window_size=900,
        min_samples=40,
    )


class TestShardedReplayEquivalence:
    def test_eight_shard_drift_replay_is_bit_identical(self, runner):
        """The acceptance criterion: 8 shards, drift scenario, exact match."""
        comparison = compare_sharded_replay(
            runner,
            make_scenario("group_shift"),
            SPLIT.deploy,
            shards=8,
            label="group_shift",
            n_steps=24,
            batch_size=90,
            seed=33,
        )
        assert comparison.differences == []
        assert comparison.matches
        # The replay must be a meaningful one: drift injected and detected.
        assert comparison.single.detected and comparison.fleet.detected
        assert comparison.single.n_steps == 24
        assert comparison.fleet.steps == comparison.single.steps

    def test_control_scenario_also_matches(self, runner):
        comparison = compare_sharded_replay(
            runner,
            make_scenario("none"),
            SPLIT.deploy,
            shards=4,
            label="control",
            n_steps=12,
            batch_size=80,
            seed=33,
        )
        assert comparison.matches
        assert not comparison.fleet.detected
        assert comparison.fleet.n_false_alarms == comparison.single.n_false_alarms

    def test_covariate_shift_matches_across_shard_counts(self, runner):
        for shards in (2, 5):
            comparison = compare_sharded_replay(
                runner,
                make_scenario("covariate_shift"),
                SPLIT.deploy,
                shards=shards,
                n_steps=14,
                batch_size=80,
                seed=33,
            )
            assert comparison.matches, comparison.differences

    def test_runner_builds_a_fleet_for_sharded_replays(self, runner):
        service = runner.make_service(shards=3)
        try:
            assert isinstance(service, FleetService)
            assert len(service.workers) == 3
        finally:
            service.close()
        assert isinstance(runner.make_service(), PredictionService)
        assert isinstance(runner.make_service(shards=1), PredictionService)

    def test_diff_reports_where_results_diverge(self, runner):
        scenario = make_scenario("none")
        a = runner.replay_scenario(scenario, SPLIT.deploy, n_steps=6, batch_size=50, seed=33)
        b = runner.replay_scenario(scenario, SPLIT.deploy, n_steps=8, batch_size=50, seed=33)
        differences = diff_replay_results(a, b)
        assert differences
        assert any("n_steps" in d for d in differences)
        assert diff_replay_results(a, a) == []

    def test_comparison_to_dict_shape(self, runner):
        comparison = compare_sharded_replay(
            runner,
            make_scenario("none"),
            SPLIT.deploy,
            shards=2,
            n_steps=6,
            batch_size=50,
            seed=33,
        )
        payload = comparison.to_dict()
        assert payload["matches"] is True
        assert payload["shards"] == 2
        assert payload["single"]["n_steps"] == payload["fleet"]["n_steps"] == 6


class TestFlightRecorderEquivalence:
    """The event-log acceptance criterion: sharding is invisible to forensics."""

    def _stream(self):
        return TrafficStream(
            SPLIT.deploy,
            make_scenario("group_shift"),
            n_steps=24,
            batch_size=90,
            random_state=33,
        )

    def test_eight_shard_event_log_merges_bit_identically(self, runner):
        """8-shard drift replay: merged event log == single-service event log.

        Request events land in shard-private logs, alarm edges and channel
        snapshots in the frontend log (the merged monitor is only observed
        there); ``events_report()`` folds them back into exactly the stream
        one process would have recorded.
        """
        log = get_event_log()
        saved = log.enabled
        log.reset().enable()
        try:
            fleet = runner.make_service(shards=8)
            with fleet:
                fleet_result = ReplayHarness(fleet).replay(
                    self._stream(), label="group_shift"
                )
                # Snapshotted inside the `with`: shard logs die with the fleet.
                fleet_state = fleet.events_report()["merged"]["state"]

            log.reset()
            single_result = ReplayHarness(runner.make_service()).replay(
                self._stream(), label="group_shift"
            )
            single_state = log.state_dict()
        finally:
            log.reset()
            log.enabled = saved

        # A meaningful replay: the drift fired and forensics recorded it.
        assert fleet_result.detected and single_result.detected
        kinds = {record["kind"] for record in single_state["records"]}
        assert {"request", "alarm_edge", "channel_snapshot"} <= kinds
        assert fleet_state["records"] == single_state["records"]
        assert fleet_state["n_emitted"] == single_state["n_emitted"]
        assert fleet_state["evicted_through"] is None

    def test_channel_snapshot_attributes_the_drifted_channel(self, runner):
        log = get_event_log()
        saved = log.enabled
        log.reset().enable()
        try:
            ReplayHarness(runner.make_service()).replay(
                self._stream(), label="group_shift"
            )
            snapshots = log.records(kind="channel_snapshot")
        finally:
            log.reset()
            log.enabled = saved
        assert snapshots
        report = snapshots[0]["attributes"]["report"]
        assert "group" in report["alarmed"]
        channel = report["channels"]["group"]
        assert channel["alarm"] is True
        assert channel["statistic"] is not None and channel["threshold"] is not None
