"""Unit tests for splitting and hyper-parameter search."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learners import GridSearch, LogisticRegressionClassifier, train_test_split
from repro.learners.model_selection import three_way_split


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.25, random_state=0)
        assert len(X_test) == 25
        assert len(X_train) == 75

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(50).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.3, random_state=1)
        combined = np.sort(np.concatenate([X_train.ravel(), X_test.ravel()]))
        assert np.array_equal(combined, np.arange(50))

    def test_multiple_arrays_stay_aligned(self):
        X = np.arange(40).reshape(-1, 1)
        y = np.arange(40) * 10
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25, random_state=2)
        assert np.array_equal(X_train.ravel() * 10, y_train)
        assert np.array_equal(X_test.ravel() * 10, y_test)

    def test_stratified_preserves_class_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.arange(100).reshape(-1, 1)
        _, _, _, y_test = train_test_split(X, y, test_size=0.25, random_state=3, stratify=y)
        assert abs(y_test.mean() - 0.2) < 0.05

    def test_reproducible(self):
        X = np.arange(30).reshape(-1, 1)
        a = train_test_split(X, test_size=0.2, random_state=5)[1]
        b = train_test_split(X, test_size=0.2, random_state=5)[1]
        assert np.array_equal(a, b)

    def test_invalid_test_size(self):
        with pytest.raises(ValidationError):
            train_test_split(np.arange(10), test_size=1.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            train_test_split(np.arange(10), np.arange(9), test_size=0.2)

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            train_test_split(np.array([1]), test_size=0.5)


class TestGridSearch:
    def test_picks_best_configuration(self, linear_data):
        X, y = linear_data
        X_train, X_val = X[:300], X[300:]
        y_train, y_val = y[:300], y[300:]
        search = GridSearch(
            estimator=LogisticRegressionClassifier(max_iter=100),
            param_grid={"l2": [1e-4, 100.0]},
        ).fit(X_train, y_train, X_val, y_val)
        # Heavy regularization destroys accuracy, so the small l2 must win.
        assert search.best_params_["l2"] == pytest.approx(1e-4)
        assert search.best_score_ > 0.7
        assert len(search.results_) == 2

    def test_empty_grid_still_fits_default(self, linear_data):
        X, y = linear_data
        search = GridSearch(estimator=LogisticRegressionClassifier(), param_grid={}).fit(
            X[:300], y[:300], X[300:], y[300:]
        )
        assert search.best_params_ == {}
        assert hasattr(search, "best_estimator_")

    def test_predict_delegates_to_best(self, linear_data):
        X, y = linear_data
        search = GridSearch(estimator=LogisticRegressionClassifier(), param_grid={"l2": [1e-3]}).fit(
            X[:300], y[:300], X[300:], y[300:]
        )
        assert search.predict(X[300:]).shape == (100,)

    def test_predict_before_fit(self):
        search = GridSearch(estimator=LogisticRegressionClassifier(), param_grid={})
        with pytest.raises(ValidationError):
            search.predict(np.zeros((2, 2)))


class TestThreeWaySplit:
    def test_proportions(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(1000, 3))
        y = rng.integers(0, 2, size=1000)
        group = rng.integers(0, 2, size=1000)
        parts = three_way_split(X, y, group, validation_size=0.15, test_size=0.15, random_state=0)
        X_tr, X_va, X_te = parts[0], parts[1], parts[2]
        assert abs(len(X_tr) - 700) < 40
        assert abs(len(X_va) - 150) < 40
        assert abs(len(X_te) - 150) < 40

    def test_invalid_sizes(self):
        X = np.zeros((10, 1))
        y = np.zeros(10, dtype=int)
        with pytest.raises(ValidationError):
            three_way_split(X, y, y, validation_size=0.6, test_size=0.5)
