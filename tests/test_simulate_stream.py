"""Property-based tests of the traffic stream's determinism contract.

The contract under test: a :class:`~repro.simulate.TrafficStream` built with
an integer seed is *replayable* — iterating it twice, or iterating two
streams built from equal parameters (including a cloned scenario), yields
bit-identical batches across arbitrary scenario compositions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import make_drifted_groups
from repro.exceptions import SimulationError
from repro.simulate import (
    Burst,
    Compose,
    CovariateShift,
    GroupPrevalenceShift,
    LabelShift,
    RampTraffic,
    Scenario,
    Schedule,
    SeasonalMixture,
    TrafficStream,
    make_scenario,
)

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

DATASET = make_drifted_groups(
    n_majority=260, n_minority=100, n_features=4, name="stream-syn", random_state=11
)

unit = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


def leaf_scenarios():
    """Strategy producing one concrete (leaf) scenario with random parameters."""
    return st.one_of(
        st.just(make_scenario("none")),
        st.builds(
            CovariateShift,
            magnitude=st.floats(-1.0, 1.0, allow_nan=False),
            onset=unit,
            ramp=unit,
        ),
        st.builds(
            GroupPrevalenceShift,
            target_minority_fraction=st.floats(0.05, 0.95),
            onset=unit,
            ramp=unit,
        ),
        st.builds(
            LabelShift,
            target_positive_rate=st.floats(0.05, 0.95),
            onset=unit,
            ramp=unit,
        ),
        st.builds(
            SeasonalMixture,
            amplitude=st.floats(0.0, 0.4),
            period=st.floats(0.1, 2.0),
        ),
        st.builds(
            Burst,
            factor=st.floats(1.0, 5.0),
            onset=unit,
            width=unit,
        ),
        st.builds(RampTraffic, factor=st.floats(1.0, 4.0)),
    )


def scenarios():
    """Leaves plus Compose/Schedule combinations of them."""
    leaves = leaf_scenarios()
    return st.one_of(
        leaves,
        st.lists(leaves, min_size=1, max_size=3).map(Compose),
        st.lists(
            st.tuples(leaves, st.floats(0.2, 3.0)), min_size=1, max_size=3
        ).map(Schedule),
    )


def batches_bit_identical(a, b) -> bool:
    return (
        a.step == b.step
        and a.t == b.t
        and a.drifted == b.drifted
        and a.n_numeric_features == b.n_numeric_features
        and a.X.tobytes() == b.X.tobytes()
        and a.y.tobytes() == b.y.tobytes()
        and a.group.tobytes() == b.group.tobytes()
        and a.X.shape == b.X.shape
    )


class TestStreamDeterminism:
    @SETTINGS
    @given(
        scenario=scenarios(),
        n_steps=st.integers(1, 12),
        batch_size=st.integers(1, 40),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_equal_seeds_yield_bit_identical_streams(
        self, scenario, n_steps, batch_size, seed
    ):
        first = TrafficStream(
            DATASET, scenario, n_steps=n_steps, batch_size=batch_size, random_state=seed
        )
        second = TrafficStream(
            DATASET,
            scenario.clone(),
            n_steps=n_steps,
            batch_size=batch_size,
            random_state=seed,
        )
        batches_a = list(first)
        batches_b = list(second)
        assert len(batches_a) == len(batches_b) == n_steps
        assert all(batches_bit_identical(a, b) for a, b in zip(batches_a, batches_b))
        # Re-iterating the same stream object replays it bit-identically too.
        assert all(
            batches_bit_identical(a, b) for a, b in zip(batches_a, list(first))
        )

    @SETTINGS
    @given(scenario=scenarios())
    def test_get_params_clone_round_trip(self, scenario):
        duplicate = scenario.clone()
        assert type(duplicate) is type(scenario)
        assert repr(duplicate) == repr(scenario)
        assert set(duplicate.get_params()) == set(scenario.get_params())

    @SETTINGS
    @given(
        scenario=scenarios(),
        n_steps=st.integers(1, 10),
        batch_size=st.integers(1, 30),
    )
    def test_stream_invariants(self, scenario, n_steps, batch_size):
        stream = TrafficStream(
            DATASET, scenario, n_steps=n_steps, batch_size=batch_size, random_state=3
        )
        batches = list(stream)
        assert [batch.step for batch in batches] == list(range(n_steps))
        assert all(0.0 <= batch.t <= 1.0 for batch in batches)
        assert all(batch.n_rows >= 1 for batch in batches)
        assert all(batch.drifted == stream.scenario.is_drifted(batch.t) for batch in batches)


class TestStreamValidation:
    def test_bad_construction(self):
        with pytest.raises(SimulationError):
            TrafficStream(DATASET, n_steps=0)
        with pytest.raises(SimulationError):
            TrafficStream(DATASET, batch_size=0)
        with pytest.raises(SimulationError, match="Scenario instance"):
            TrafficStream(DATASET, "group_shift")

    def test_default_scenario_is_stationary(self):
        stream = TrafficStream(DATASET, n_steps=3, batch_size=5, random_state=0)
        assert not any(batch.drifted for batch in stream)
        assert stream.expected_rows == 15

    def test_bad_sample_weights_rejected(self):
        class Broken(Scenario):
            def sample_weights(self, dataset, t):
                return np.ones(3)

        with pytest.raises(SimulationError, match="sample_weights"):
            list(TrafficStream(DATASET, Broken(), n_steps=2, batch_size=4))

    def test_single_step_timeline_is_t_zero(self):
        (batch,) = list(TrafficStream(DATASET, n_steps=1, batch_size=4, random_state=0))
        assert batch.t == 0.0
