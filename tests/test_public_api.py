"""Tests for the top-level public API surface."""

import pytest

import repro


class TestPublicSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_classes_exported(self):
        assert repro.ConFair is not None
        assert repro.DiffFair is not None
        assert repro.KamiranReweighing is not None
        assert repro.OmniFairReweighing is not None
        assert repro.CapuchinRepair is not None

    def test_exception_hierarchy(self):
        assert issubclass(repro.DatasetError, repro.ReproError)
        assert issubclass(repro.ConstraintError, repro.ReproError)
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.ValidationError, ValueError)
        assert issubclass(repro.NotFittedError, repro.ReproError)

    def test_quickstart_from_docstring_runs(self):
        """The module docstring's quickstart must actually work."""
        baseline = repro.FairnessPipeline(
            intervention="none", learner="lr", dataset="lsac", size_factor=0.03, seed=7
        ).run()
        treated = repro.FairnessPipeline(
            intervention="confair",
            learner="lr",
            dataset="lsac",
            size_factor=0.03,
            seed=7,
            intervention_params={"tuning_grid": (0.0, 1.0)},
        ).run()
        assert 0.0 <= baseline.report.di_star <= 1.0
        assert 0.0 <= treated.report.di_star <= 1.0
        assert "alpha_u" in treated.details

    def test_legacy_estimator_surface_still_works(self):
        """The pre-redesign estimator-level workflow remains supported."""
        data = repro.load_dataset("lsac", size_factor=0.03, random_state=7)
        split = repro.split_dataset(data, random_state=7)
        confair = repro.ConFair(learner="lr", tuning_grid=(0.0, 1.0)).fit(
            split.train, validation=split.validation
        )
        model = confair.fit_learner()
        report = repro.evaluate_predictions(
            split.deploy.y, model.predict(split.deploy.X), split.deploy.group
        )
        assert 0.0 <= report.di_star <= 1.0

    def test_intervention_surface_exported(self):
        assert "confair" in repro.available_interventions()
        assert repro.make_intervention("kam") is not None
        assert issubclass(repro.FairnessPipeline, object)

    def test_available_datasets_contains_paper_benchmarks(self):
        names = repro.available_datasets()
        for expected in ("meps", "lsac", "credit", "acsp", "acsh", "acse", "acsi", "syn1"):
            assert expected in names

    def test_make_learner_accessible(self):
        assert repro.make_learner("lr") is not None

    def test_dataset_error_raised_for_unknown(self):
        with pytest.raises(repro.DatasetError):
            repro.load_dataset("does-not-exist")
