"""Unit tests for the scenario registry and the built-in scenario library."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_drifted_groups
from repro.exceptions import SimulationError
from repro.simulate import (
    Burst,
    Compose,
    CovariateShift,
    FeedbackLoop,
    GroupPrevalenceShift,
    LabelShift,
    RampTraffic,
    Scenario,
    Schedule,
    SeasonalMixture,
    TrafficBatch,
    available_scenarios,
    describe_scenarios,
    get_scenario_spec,
    make_scenario,
    register_scenario,
    shift_intensity,
)

DATASET = make_drifted_groups(
    n_majority=300, n_minority=120, n_features=4, name="scen-syn", random_state=5
)


def make_batch(t=0.0, n=20, drifted=False):
    rng = np.random.default_rng(0)
    return TrafficBatch(
        X=rng.normal(size=(n, 4)),
        y=rng.integers(0, 2, n),
        group=rng.integers(0, 2, n),
        step=0,
        t=t,
        drifted=drifted,
        n_numeric_features=4,
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_scenarios()
        for name in (
            "none",
            "covariate_shift",
            "label_shift",
            "group_shift",
            "seasonal",
            "burst",
            "ramp",
            "feedback",
        ):
            assert name in names

    def test_describe_has_a_summary_per_name(self):
        summaries = describe_scenarios()
        assert set(summaries) == set(available_scenarios())
        assert all(summaries.values())

    def test_unknown_name_raises(self):
        with pytest.raises(SimulationError, match="Unknown scenario"):
            make_scenario("nope")

    def test_unknown_parameter_raises_naming_accepted(self):
        with pytest.raises(SimulationError, match="does not accept"):
            make_scenario("group_shift", volume=3)
        with pytest.raises(SimulationError, match="target_minority_fraction"):
            make_scenario("group_shift", volume=3)

    def test_preset_defaults_applied_and_overridable(self):
        gradual = make_scenario("gradual_group_shift")
        assert isinstance(gradual, GroupPrevalenceShift)
        assert (gradual.onset, gradual.ramp) == (0.3, 0.5)
        overridden = make_scenario("gradual_group_shift", ramp=0.2)
        assert overridden.ramp == 0.2

    def test_spec_accepted_params(self):
        spec = get_scenario_spec("covariate_shift")
        assert set(spec.accepted_params()) == {"magnitude", "onset", "ramp", "feature"}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SimulationError, match="already registered"):
            register_scenario("none")(CovariateShift)

    def test_non_scenario_registration_rejected(self):
        with pytest.raises(SimulationError, match="must subclass Scenario"):
            register_scenario("not-a-scenario")(dict)


class TestParamsAndClone:
    @pytest.mark.parametrize("name", sorted(set(available_scenarios())))
    def test_get_params_clone_round_trip(self, name):
        scenario = make_scenario(name)
        duplicate = scenario.clone()
        assert type(duplicate) is type(scenario)
        assert duplicate.get_params() == scenario.get_params()
        assert repr(duplicate) == repr(scenario)

    def test_combinators_round_trip(self):
        composite = Compose([Burst(factor=2.0), GroupPrevalenceShift(onset=0.2)])
        schedule = Schedule([(CovariateShift(), 1.0), (LabelShift(), 2.0)])
        for scenario in (composite, schedule):
            duplicate = scenario.clone()
            assert repr(duplicate) == repr(scenario)

    def test_clone_resets_episode_state(self):
        loop = FeedbackLoop(strength=2.0)
        loop._minority_bias = 7.0
        assert loop.clone()._minority_bias == 1.0


class TestShiftIntensity:
    def test_envelope(self):
        assert shift_intensity(0.49, 0.5, 0.0) == 0.0
        assert shift_intensity(0.5, 0.5, 0.0) == 1.0
        assert shift_intensity(0.5, 0.5, 0.4) == 0.0
        assert shift_intensity(0.7, 0.5, 0.4) == pytest.approx(0.5)
        assert shift_intensity(0.95, 0.5, 0.4) == 1.0


class TestCovariateShift:
    def test_shifts_numeric_columns_after_onset(self):
        scenario = CovariateShift(magnitude=0.5, onset=0.5)
        rng = np.random.default_rng(1)
        before = make_batch(t=0.25)
        assert scenario.transform_batch(before, rng) is before
        assert not scenario.is_drifted(0.25)
        after = make_batch(t=0.75)
        shifted = scenario.transform_batch(after, rng)
        np.testing.assert_allclose(shifted.X, after.X + 0.5)
        assert scenario.is_drifted(0.75)

    def test_single_feature_mode(self):
        scenario = CovariateShift(magnitude=1.0, onset=0.0, feature=2)
        batch = make_batch(t=1.0)
        shifted = scenario.transform_batch(batch, np.random.default_rng(0))
        np.testing.assert_allclose(shifted.X[:, 2], batch.X[:, 2] + 1.0)
        np.testing.assert_allclose(shifted.X[:, 0], batch.X[:, 0])

    def test_feature_out_of_range_raises(self):
        scenario = CovariateShift(onset=0.0, feature=9)
        with pytest.raises(SimulationError, match="numeric columns"):
            scenario.transform_batch(make_batch(t=1.0), np.random.default_rng(0))

    def test_invalid_onset_rejected(self):
        with pytest.raises(SimulationError, match="onset"):
            CovariateShift(onset=1.5)


class TestPrevalenceShifts:
    def test_group_shift_weights_move_toward_target(self):
        scenario = GroupPrevalenceShift(target_minority_fraction=0.9, onset=0.0)
        weights = scenario.sample_weights(DATASET, 1.0)
        probabilities = weights / weights.sum()
        expected = float(probabilities[DATASET.group == 1].sum())
        assert expected == pytest.approx(0.9)

    def test_label_shift_weights_move_toward_target(self):
        scenario = LabelShift(target_positive_rate=0.8, onset=0.0)
        weights = scenario.sample_weights(DATASET, 1.0)
        probabilities = weights / weights.sum()
        assert float(probabilities[DATASET.y == 1].sum()) == pytest.approx(0.8)

    def test_no_weights_before_onset(self):
        scenario = GroupPrevalenceShift(onset=0.6)
        assert scenario.sample_weights(DATASET, 0.5) is None
        assert not scenario.is_drifted(0.5)
        assert scenario.is_drifted(0.6)

    def test_target_equal_to_pool_rate_is_not_drift(self):
        # Regression: a prevalence "shift" to the pool's own rate injects
        # nothing, so ground truth must stay clean once the pool is known.
        scenario = GroupPrevalenceShift(
            target_minority_fraction=DATASET.minority_fraction, onset=0.0
        )
        assert scenario.is_drifted(0.5)  # pool unseen: envelope decides
        scenario.sample_weights(DATASET, 0.5)
        assert not scenario.is_drifted(0.5)
        label = LabelShift(target_positive_rate=DATASET.positive_rate, onset=0.0)
        label.sample_weights(DATASET, 0.5)
        assert not label.is_drifted(0.5)
        # A real target drifts as before.
        real = GroupPrevalenceShift(target_minority_fraction=0.9, onset=0.0)
        real.sample_weights(DATASET, 0.5)
        assert real.is_drifted(0.5)

    def test_ramp_interpolates(self):
        scenario = GroupPrevalenceShift(
            target_minority_fraction=0.9, onset=0.0, ramp=1.0
        )
        weights = scenario.sample_weights(DATASET, 0.5)
        probabilities = weights / weights.sum()
        base = DATASET.minority_fraction
        expected = base + (0.9 - base) * 0.5
        assert float(probabilities[DATASET.group == 1].sum()) == pytest.approx(expected)


class TestSeasonal:
    def test_oscillation_and_ground_truth(self):
        scenario = SeasonalMixture(amplitude=0.2, period=1.0)
        assert scenario.sample_weights(DATASET, 0.0) is None
        assert not scenario.is_drifted(0.0)
        assert scenario.is_drifted(0.25)  # sin peak
        weights = scenario.sample_weights(DATASET, 0.25)
        probabilities = weights / weights.sum()
        target = min(max(DATASET.minority_fraction + 0.2, 0.02), 0.98)
        assert float(probabilities[DATASET.group == 1].sum()) == pytest.approx(target)

    def test_invalid_period(self):
        with pytest.raises(SimulationError, match="period"):
            SeasonalMixture(period=0.0)

    def test_ground_truth_respects_the_prevalence_clamp(self):
        # Regression: on a pool already near the prevalence ceiling the
        # clamped oscillation injects far less than the raw sinusoid, and
        # ground truth must score the injected shift, not the requested one.
        high = make_drifted_groups(
            n_majority=30, n_minority=370, n_features=3, random_state=2
        )
        assert high.minority_fraction > 0.9
        scenario = SeasonalMixture(amplitude=0.2, period=1.0)
        scenario.sample_weights(high, 0.25)  # learn the pool fraction
        assert not scenario.is_drifted(0.25)  # clamp eats the upward peak
        assert scenario.is_drifted(0.75)  # the downward peak still injects


class TestArrivalPatterns:
    def test_burst_window(self):
        scenario = Burst(factor=4.0, onset=0.5, width=0.2)
        rng = np.random.default_rng(0)
        assert scenario.batch_rows(0.4, 100, rng) == 100
        assert scenario.batch_rows(0.5, 100, rng) == 400
        assert scenario.batch_rows(0.69, 100, rng) == 400
        assert scenario.batch_rows(0.7, 100, rng) == 100
        assert not scenario.is_drifted(0.6)

    def test_ramp_growth(self):
        scenario = RampTraffic(factor=3.0)
        rng = np.random.default_rng(0)
        assert scenario.batch_rows(0.0, 100, rng) == 100
        assert scenario.batch_rows(1.0, 100, rng) == 300

    def test_factor_below_one_rejected(self):
        with pytest.raises(SimulationError):
            Burst(factor=0.5)
        with pytest.raises(SimulationError):
            RampTraffic(factor=0.0)


class TestFeedbackLoop:
    def test_bias_compounds_and_resets(self):
        loop = FeedbackLoop(strength=2.0, drift_ratio=1.5)
        batch = make_batch(n=40)
        # Predictions favor the majority: minority arrivals should shrink.
        predictions = (batch.group == 0).astype(int)
        assert loop.sample_weights(DATASET, 0.0) is None
        for _ in range(5):
            loop.observe(batch, predictions)
        assert loop._minority_bias < 1.0
        weights = loop.sample_weights(DATASET, 0.5)
        assert weights is not None
        assert weights[DATASET.group == 1].max() < weights[DATASET.group == 0].min()
        assert loop.is_drifted(0.5)
        loop.reset()
        assert loop._minority_bias == 1.0
        assert not loop.is_drifted(0.5)

    def test_single_group_batches_are_ignored(self):
        loop = FeedbackLoop()
        batch = make_batch(n=10).replace(group=np.zeros(10, dtype=np.int64))
        loop.observe(batch, np.ones(10, dtype=np.int64))
        assert loop._minority_bias == 1.0


class TestCombinators:
    def test_compose_multiplies_weights_and_or_drift(self):
        composite = Compose(
            [Burst(factor=2.0, onset=0.0, width=1.0), GroupPrevalenceShift(onset=0.5)]
        )
        rng = np.random.default_rng(0)
        assert composite.batch_rows(0.1, 100, rng) == 200
        assert composite.sample_weights(DATASET, 0.1) is None
        assert composite.sample_weights(DATASET, 0.9) is not None
        assert not composite.is_drifted(0.1)
        assert composite.is_drifted(0.9)

    def test_compose_validation(self):
        with pytest.raises(SimulationError, match="at least one"):
            Compose([])
        with pytest.raises(SimulationError, match="Scenario instances"):
            Compose(["group_shift"])

    def test_schedule_local_clock(self):
        schedule = Schedule(
            [(CovariateShift(magnitude=1.0, onset=0.5), 1.0), (LabelShift(onset=0.5), 1.0)]
        )
        # Global t=0.25 is local t=0.5 of stage 1 -> covariate drift active.
        assert schedule.is_drifted(0.25)
        # Global t=0.6 is local t=0.2 of stage 2 -> label shift not yet active.
        assert not schedule.is_drifted(0.6)
        assert schedule.is_drifted(0.8)
        assert schedule.sample_weights(DATASET, 0.8) is not None
        assert schedule.sample_weights(DATASET, 0.25) is None

    def test_schedule_transform_uses_local_clock_but_keeps_global_t(self):
        schedule = Schedule([(CovariateShift(magnitude=1.0, onset=0.5), 1.0)])
        batch = make_batch(t=0.75)
        shifted = schedule.transform_batch(batch, np.random.default_rng(0))
        assert shifted.t == 0.75
        np.testing.assert_allclose(shifted.X, batch.X + 1.0)

    def test_schedule_with_repeated_stage_objects(self):
        # Regression: the middle stage must stay reachable when the first and
        # last stages are the very same (scenario, duration) pair.
        burst = Burst(factor=2.0, onset=0.0, width=1.0)
        schedule = Schedule([(burst, 1.0), (make_scenario("none"), 1.0), (burst, 1.0)])
        rng = np.random.default_rng(0)
        assert schedule.batch_rows(0.1, 100, rng) == 200  # first burst stage
        assert schedule.batch_rows(0.5, 100, rng) == 100  # calm middle stage
        assert schedule.batch_rows(0.9, 100, rng) == 200  # last burst stage

    def test_schedule_validation(self):
        with pytest.raises(SimulationError, match="at least one"):
            Schedule([])
        with pytest.raises(SimulationError, match="positive"):
            Schedule([(CovariateShift(), 0.0)])

    def test_base_scenario_is_identity(self):
        scenario = Scenario()
        batch = make_batch()
        assert scenario.batch_rows(0.5, 64, np.random.default_rng(0)) == 64
        assert scenario.sample_weights(DATASET, 0.5) is None
        assert scenario.transform_batch(batch, np.random.default_rng(0)) is batch
        assert not scenario.is_drifted(0.5)
