"""Unit tests for the decision-tree learners."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.learners import DecisionTreeClassifier, DecisionTreeRegressor


class TestRegressor:
    def test_fits_piecewise_constant_function(self):
        X = np.linspace(0, 1, 200).reshape(-1, 1)
        y = np.where(X[:, 0] < 0.5, 1.0, 3.0)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = tree.predict(X)
        assert np.allclose(predictions[X[:, 0] < 0.5], 1.0, atol=0.05)
        assert np.allclose(predictions[X[:, 0] >= 0.5], 3.0, atol=0.05)

    def test_respects_max_depth(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 3))
        y = rng.normal(size=300)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert tree.depth_ <= 2

    def test_constant_target_yields_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        tree = DecisionTreeRegressor(max_depth=4).fit(X, np.full(50, 2.5))
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 2.5)

    def test_min_samples_leaf_respected(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X[:, 0] > 15).astype(float)
        tree = DecisionTreeRegressor(max_depth=5, min_samples_leaf=8).fit(X, y)

        def smallest_leaf(node):
            if node.is_leaf:
                return node.n_samples
            return min(smallest_leaf(node.left), smallest_leaf(node.right))

        assert smallest_leaf(tree.root_) >= 8

    def test_sample_weights_steer_split(self):
        # Two candidate splits; weights make the second one dominant.
        X = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] * 25, dtype=float)
        y = X[:, 1]  # feature 1 is the true signal
        weights = np.ones(len(y))
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y, sample_weight=weights)
        assert tree.root_.feature == 1

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_feature_mismatch_raises(self):
        X = np.random.default_rng(0).normal(size=(30, 3))
        tree = DecisionTreeRegressor().fit(X, X[:, 0])
        with pytest.raises(ValueError):
            tree.predict(X[:, :2])

    def test_weighted_mean_prediction_at_root(self):
        X = np.ones((10, 1))
        y = np.arange(10, dtype=float)
        weights = np.zeros(10)
        weights[-1] = 1.0
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y, sample_weight=weights)
        assert tree.predict([[1.0]])[0] == pytest.approx(9.0)


class TestClassifier:
    def test_separable_problem(self, linear_data):
        X, y = linear_data
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.85

    def test_proba_matches_leaf_positive_rate(self):
        X = np.array([[0.0], [0.0], [0.0], [1.0], [1.0], [1.0]])
        y = np.array([0, 0, 1, 1, 1, 1])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        proba = model.predict_proba(np.array([[0.0], [1.0]]))
        assert proba[0, 1] == pytest.approx(1.0 / 3.0)
        assert proba[1, 1] == pytest.approx(1.0)

    def test_rejects_non_binary_labels(self):
        with pytest.raises(Exception):
            DecisionTreeClassifier().fit([[1.0], [2.0]], [1, 2])
