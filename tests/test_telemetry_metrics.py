"""Unit and property-based tests for ``repro.telemetry`` primitives.

The load-bearing contract is **exact histogram merging**: observations are
quantized to integers at record time, so per-shard histograms fold into one
view bit-identically to a histogram that observed the union stream,
independent of shard split and merge order (hypothesis-tested below over
random values and random 4-way shard assignments — the fleet's shape).
Around it: counter/gauge semantics, name-collision and layout-mismatch
rejection, span nesting, collectors, and the Prometheus/JSON exports.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import TelemetryError
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

latencies = st.lists(
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=120,
)


def enabled_registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        counter = enabled_registry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_decrease(self):
        counter = enabled_registry().counter("c")
        with pytest.raises(TelemetryError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = enabled_registry().gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_create_or_get_returns_same_object(self):
        registry = enabled_registry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.histogram("h") is registry.histogram("h")

    def test_cross_kind_name_collision_rejected(self):
        registry = enabled_registry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="already registered as a counter"):
            registry.gauge("x")
        with pytest.raises(TelemetryError, match="already registered as a counter"):
            registry.histogram("x")


class TestHistogram:
    def test_basic_statistics(self):
        hist = enabled_registry().histogram("h")
        for value in (0.001, 0.002, 0.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.503)
        assert hist.mean == pytest.approx(0.503 / 3)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.5)

    def test_bucket_bounds_are_upper_inclusive(self):
        hist = enabled_registry().histogram("h", buckets=(1.0, 2.0), resolution=1.0)
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        counts = hist.state_dict()["counts"]
        assert counts == [1, 1, 1]  # 1.0 -> le=1, 2.0 -> le=2, 3.0 -> +Inf

    def test_quantiles_clamp_to_observed_max(self):
        hist = enabled_registry().histogram("h", buckets=(1.0, 10.0), resolution=1.0)
        for value in (1, 1, 1, 3):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        # p99 lands in the le=10 bucket but nothing above 3 was observed.
        assert hist.quantile(0.99) == 3.0
        assert hist.quantile(1.0) == 3.0

    def test_empty_histogram_reports_none(self):
        hist = enabled_registry().histogram("h")
        assert hist.quantile(0.5) is None
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["quantiles"]["p99"] is None

    def test_invalid_layouts_rejected(self):
        registry = enabled_registry()
        with pytest.raises(TelemetryError, match="at least one bucket"):
            registry.histogram("a", buckets=())
        with pytest.raises(TelemetryError, match="strictly increasing"):
            registry.histogram("b", buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError, match="resolution must be positive"):
            registry.histogram("c", resolution=0.0)
        with pytest.raises(TelemetryError, match="quantile fraction"):
            registry.histogram("d").quantile(1.5)

    def test_reregistration_with_other_layout_rejected(self):
        registry = enabled_registry()
        registry.histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
        with pytest.raises(TelemetryError, match="different"):
            registry.histogram("h", buckets=DEFAULT_SIZE_BUCKETS, resolution=1.0)

    def test_merge_rejects_layout_mismatch(self):
        a = enabled_registry().histogram("h", buckets=(1.0, 2.0), resolution=1.0)
        b = enabled_registry().histogram("h", buckets=(1.0, 3.0), resolution=1.0)
        with pytest.raises(TelemetryError, match="layout mismatch"):
            a.merge_state(b.state_dict())

    @SETTINGS
    @given(
        values=latencies,
        assignment=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=120),
    )
    def test_four_way_shard_merge_is_exact(self, values, assignment):
        """Random 4-shard splits merge bit-identically to the union stream."""
        union = enabled_registry().histogram("h")
        shards = [enabled_registry().histogram("h") for _ in range(4)]
        for i, value in enumerate(values):
            union.observe(value)
            shards[assignment[i % len(assignment)]].observe(value)
        merged = enabled_registry().histogram("h")
        for shard in shards:
            merged.merge_state(shard.state_dict())
        assert merged.state_dict() == union.state_dict()

    @SETTINGS
    @given(values=latencies, seed=st.integers(min_value=0, max_value=2**16))
    def test_merge_is_order_invariant_and_associative(self, values, seed):
        import random

        shards = [enabled_registry().histogram("h") for _ in range(3)]
        rng = random.Random(seed)
        for value in values:
            shards[rng.randrange(3)].observe(value)
        states = [s.state_dict() for s in shards]

        forward = enabled_registry().histogram("h")
        for state in states:
            forward.merge_state(state)
        backward = enabled_registry().histogram("h")
        for state in reversed(states):
            backward.merge_state(state)
        assert forward.state_dict() == backward.state_dict()

        # ((a + b) + c) == (a + (b + c)) via registry-level merges.
        left = MetricsRegistry.merge_state_dicts(
            [
                MetricsRegistry.merge_state_dicts(
                    [{"histograms": {"h": states[0]}}, {"histograms": {"h": states[1]}}]
                ),
                {"histograms": {"h": states[2]}},
            ]
        )
        right = MetricsRegistry.merge_state_dicts(
            [
                {"histograms": {"h": states[0]}},
                MetricsRegistry.merge_state_dicts(
                    [{"histograms": {"h": states[1]}}, {"histograms": {"h": states[2]}}]
                ),
            ]
        )
        assert left == right


class TestRegistryState:
    def test_state_round_trip(self):
        registry = enabled_registry()
        registry.counter("requests").inc(7)
        registry.gauge("cache").set(2.0)
        registry.histogram("lat").observe(0.25)
        clone = MetricsRegistry().load_state_dict(registry.state_dict())
        assert clone.state_dict() == registry.state_dict()

    def test_merge_state_dicts_sums_counters_and_gauges(self):
        a, b = enabled_registry(), enabled_registry()
        a.counter("requests").inc(3)
        b.counter("requests").inc(4)
        a.gauge("hits").set(1.0)
        b.gauge("hits").set(2.5)
        merged = MetricsRegistry.merge_state_dicts([a.state_dict(), b.state_dict()])
        assert merged["counters"]["requests"] == 7
        assert merged["gauges"]["hits"] == 3.5

    def test_malformed_state_rejected(self):
        with pytest.raises(TelemetryError, match="must be a dict"):
            MetricsRegistry().load_state_dict(["not", "a", "dict"])
        with pytest.raises(TelemetryError, match="must be a dict"):
            MetricsRegistry.merge_state_dicts([{"counters": [1, 2]}])

    def test_export_state_summarizes_without_live_registry(self):
        registry = enabled_registry()
        registry.histogram("lat").observe(0.01)
        export = MetricsRegistry.export_state(registry.state_dict())
        assert export["histograms"]["lat"]["count"] == 1
        assert "spans" not in export

    def test_collectors_publish_at_export_and_survive_reset(self):
        registry = enabled_registry()
        calls = []

        def collector(r):
            calls.append(1)
            r.gauge("external.stat").set(len(calls))

        registry.add_collector(collector)
        registry.add_collector(collector)  # deduplicated
        assert registry.export()["gauges"]["external.stat"] == 1.0
        registry.reset()
        assert registry.state_dict()["gauges"]["external.stat"] == 2.0
        registry.reset(clear_collectors=True)
        assert "external.stat" not in registry.export()["gauges"]


class TestSpans:
    def test_nesting_links_parent_ids(self):
        registry = enabled_registry()
        with registry.span("outer", stage="fit") as outer:
            with registry.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        trace = registry.trace()
        assert [record["name"] for record in trace] == ["inner", "outer"]
        assert trace[0]["parent_id"] == trace[1]["span_id"]
        assert trace[1]["parent_id"] is None
        assert trace[1]["attributes"] == {"stage": "fit"}
        assert all(record["duration_seconds"] >= 0 for record in trace)

    def test_span_attributes_settable_inside(self):
        registry = enabled_registry()
        with registry.span("work") as handle:
            handle.set(rows=12)
        assert registry.trace()[0]["attributes"] == {"rows": 12}

    def test_exception_marks_span_errored(self):
        registry = enabled_registry()
        with pytest.raises(RuntimeError):
            with registry.span("boom"):
                raise RuntimeError("nope")
        assert registry.trace()[0]["status"] == "error"

    def test_span_durations_feed_histograms(self):
        registry = enabled_registry()
        with registry.span("work"):
            pass
        assert registry.export()["histograms"]["span.work.seconds"]["count"] == 1

    def test_disabled_registry_spans_are_noops(self):
        registry = MetricsRegistry()
        with registry.span("ignored") as handle:
            handle.set(rows=1)  # chainable no-op
        assert registry.trace() == []
        assert registry.span("a") is registry.span("b")  # shared singleton

    def test_per_thread_stacks_trace_independently(self):
        registry = enabled_registry()
        barrier = threading.Barrier(2)

        def work(tag):
            with registry.span("outer", tag=tag):
                barrier.wait(timeout=10)
                with registry.span("inner", tag=tag):
                    pass

        threads = [threading.Thread(target=work, args=(t,)) for t in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trace = registry.trace()
        by_id = {record["span_id"]: record for record in trace}
        for record in trace:
            if record["name"] == "inner":
                parent = by_id[record["parent_id"]]
                assert parent["attributes"]["tag"] == record["attributes"]["tag"]


class TestExports:
    def test_prometheus_exposition_shape(self):
        registry = enabled_registry()
        registry.counter("serving.requests_total").inc(2)
        registry.gauge("cache.hits").set(1.0)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
        text = registry.export_prometheus()
        assert "# TYPE serving_requests_total counter" in text
        assert "serving_requests_total 2" in text
        assert "# TYPE cache_hits gauge" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_dump_is_json_serializable_and_versioned(self):
        registry = enabled_registry()
        registry.histogram("lat").observe(0.01)
        with registry.span("work"):
            pass
        payload = registry.dump()
        assert payload["telemetry_version"] == 1
        round_tripped = json.loads(json.dumps(payload))
        assert round_tripped["state"]["histograms"]["lat"]["counts"] == (
            payload["state"]["histograms"]["lat"]["counts"]
        )

    def test_export_orders_names_deterministically(self):
        registry = enabled_registry()
        for name in ("b", "a", "c"):
            registry.counter(name).inc()
        assert list(registry.export()["counters"]) == ["a", "b", "c"]
