"""Checkpointing tests for the serving monitor (plus the CLI shim dedupe).

The guarantee under test: a :class:`FairnessMonitor` paused mid-stream via
``state_dict`` (directly or through a saved artifact) and resumed into a
fresh instance behaves **bit-identically** to the uninterrupted monitor —
same windowed reports, same drift/density/group statuses, same eviction
decisions — for the remainder of the stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import profile_partitions
from repro.datasets import make_drifted_groups, split_dataset
from repro.density import KernelDensity
from repro.exceptions import ValidationError
from repro.learners.base import clone
from repro.serving import (
    FairnessMonitor,
    GroupShiftStatus,
    MonitorThresholds,
    load_artifact,
    save_artifact,
)

SPLIT = split_dataset(
    make_drifted_groups(
        n_majority=500, n_minority=200, n_features=4, name="mon-syn", random_state=9
    ),
    random_state=9,
)


def make_monitor(window_size=300) -> FairnessMonitor:
    train = SPLIT.train
    monitor = FairnessMonitor(
        window_size=window_size,
        profile=profile_partitions(train),
        density_estimator=KernelDensity(bandwidth="scott").fit(train.numeric_X),
        thresholds=MonitorThresholds(min_samples=40),
    )
    monitor.set_baselines(
        violation=train.X,
        log_density=SPLIT.validation.X,
        group_fraction=train.group,
    )
    return monitor


def traffic_batches(n_batches, *, start=0, size=70):
    rng = np.random.default_rng(77)
    deploy = SPLIT.deploy
    batches = []
    for index in range(start + n_batches):
        rows = rng.integers(0, deploy.n_samples, size)
        predictions = rng.integers(0, 2, size)
        batches.append(
            (predictions, deploy.group[rows], deploy.y[rows], deploy.X[rows])
        )
    return batches[start:]


def feed(monitor, batches) -> None:
    for predictions, group, y_true, X in batches:
        monitor.update(predictions, group, y_true=y_true, X=X)


def assert_same_state(a: FairnessMonitor, b: FairnessMonitor) -> None:
    assert a.windowed_summary() == b.windowed_summary()
    assert a.windowed_report().to_dict() == b.windowed_report().to_dict()
    assert a.drift_status() == b.drift_status()
    assert a.density_status() == b.density_status()
    assert a.group_status() == b.group_status()
    assert a.n_window == b.n_window and a.n_seen == b.n_seen


class TestCheckpointResume:
    def test_state_dict_round_trip_is_bit_identical(self):
        uninterrupted = make_monitor()
        feed(uninterrupted, traffic_batches(6))

        paused = make_monitor()
        feed(paused, traffic_batches(3))
        resumed = clone(paused)
        resumed.load_state_dict(paused.state_dict())
        # The remainder of the stream hits both monitors; window eviction
        # fires along the way, exercising the restored chunk deque.
        feed(resumed, traffic_batches(3, start=3))
        assert_same_state(uninterrupted, resumed)

    def test_artifact_round_trip_resumes_bit_identically(self, tmp_path):
        uninterrupted = make_monitor()
        feed(uninterrupted, traffic_batches(6))

        paused = make_monitor()
        feed(paused, traffic_batches(3))
        save_artifact(paused, tmp_path / "monitor")
        resumed = load_artifact(tmp_path / "monitor")
        assert isinstance(resumed, FairnessMonitor)
        feed(resumed, traffic_batches(3, start=3))
        assert_same_state(uninterrupted, resumed)

    def test_fresh_monitor_state_round_trips(self):
        monitor = FairnessMonitor(window_size=10)
        restored = FairnessMonitor(window_size=10)
        restored.load_state_dict(monitor.state_dict())
        assert restored.n_window == 0 and restored.n_seen == 0
        assert restored.group_status() == GroupShiftStatus(0, 0.0, None, None, False)

    def test_unknown_state_key_rejected(self):
        monitor = FairnessMonitor(window_size=10)
        state = monitor.state_dict()
        state["bogus_"] = 1
        with pytest.raises(ValidationError, match="bogus_"):
            FairnessMonitor(window_size=10).load_state_dict(state)

    def test_missing_state_key_rejected(self):
        monitor = FairnessMonitor(window_size=10)
        state = monitor.state_dict()
        state.pop("n_seen_")
        with pytest.raises(ValidationError, match="n_seen_"):
            FairnessMonitor(window_size=10).load_state_dict(state)

    def test_mismatched_chunk_arrays_rejected(self):
        monitor = make_monitor()
        feed(monitor, traffic_batches(2))
        state = monitor.state_dict()
        state["chunk_rows_"] = state["chunk_rows_"][:1]
        with pytest.raises(ValidationError, match="chunk"):
            make_monitor().load_state_dict(state)


class TestGroupChannel:
    def test_no_baseline_means_no_alarm(self):
        monitor = FairnessMonitor(window_size=100, min_samples=10)
        monitor.update(np.ones(20, dtype=int), np.ones(20, dtype=int))
        status = monitor.group_status()
        assert status.baseline_fraction is None and not status.alarm
        assert monitor.group_baseline_fraction is None
        assert "group" not in monitor.windowed_summary()

    def test_alarm_fires_on_shifted_mix(self):
        monitor = FairnessMonitor(window_size=100, min_samples=10, group_tolerance=0.2)
        monitor.set_group_baseline(0.3)
        group = np.ones(50, dtype=int)
        group[:5] = 0  # 90% minority vs 30% baseline
        monitor.update(np.ones(50, dtype=int), group)
        status = monitor.group_status()
        assert status.alarm and status.shift == pytest.approx(0.6)
        assert monitor.windowed_summary()["group"]["alarm"] is True

    def test_min_samples_guards_the_alarm(self):
        monitor = FairnessMonitor(window_size=100, min_samples=30, group_tolerance=0.1)
        monitor.set_group_baseline(0.2)
        monitor.update(np.ones(10, dtype=int), np.ones(10, dtype=int))
        assert not monitor.group_status().alarm

    def test_baseline_from_array_and_scalar_agree(self):
        group = np.array([0, 1, 1, 0, 1])
        a = FairnessMonitor(window_size=10)
        b = FairnessMonitor(window_size=10)
        assert a.set_group_baseline(group) == b.set_group_baseline(0.6)

    def test_invalid_baseline_rejected(self):
        monitor = FairnessMonitor(window_size=10)
        with pytest.raises(ValidationError):
            monitor.set_group_baseline(1.5)
        with pytest.raises(ValidationError):
            monitor.set_group_baseline(np.array([]))

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValidationError, match="group_tolerance"):
            FairnessMonitor(group_tolerance=0.0)

    def test_scalar_conformance_and_density_baselines(self):
        monitor = make_monitor()
        assert monitor.set_drift_baseline(0.125) == 0.125
        assert monitor.set_density_baseline(-3.5) == -3.5
        assert monitor.drift_status().baseline_violation == 0.125
        assert monitor.density_status().baseline_log_density == -3.5


class TestServeShimDedupe:
    def test_serve_module_reexports_the_cli(self):
        import repro.serve as shim
        import repro.serving.cli as cli

        assert shim.main is cli.main
        assert shim.build_parser is cli.build_parser
        assert set(shim.__all__) == {"build_parser", "main"}

    def test_single_parser_source_of_truth(self, capsys):
        import repro.serve as shim

        with pytest.raises(SystemExit):
            shim.build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "repro-serve" in out
        for command in ("fit", "save", "score", "serve"):
            assert command in out
