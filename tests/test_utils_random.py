"""Unit tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.random import check_random_state, resolve_seed, spawn_seeds


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = check_random_state(42).integers(0, 1000, size=5)
        b = check_random_state(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).integers(0, 10**6, size=8)
        b = check_random_state(2).integers(0, 10**6, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_numpy_integer_accepted(self):
        assert isinstance(check_random_state(np.int64(3)), np.random.Generator)

    def test_rejects_negative_seed(self):
        with pytest.raises(TypeError):
            check_random_state(-1)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestSpawnSeeds:
    def test_count_and_reproducibility(self):
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)
        assert len(spawn_seeds(7, 4)) == 4

    def test_zero_seeds(self):
        assert spawn_seeds(7, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(7, -1)

    def test_seeds_are_distinct_in_practice(self):
        seeds = spawn_seeds(11, 10)
        assert len(set(seeds)) == 10


class TestResolveSeed:
    def test_none_stays_none(self):
        assert resolve_seed(None) is None

    def test_int_offset(self):
        assert resolve_seed(10, offset=5) == 15

    def test_generator_draws_an_int(self):
        value = resolve_seed(np.random.default_rng(0))
        assert isinstance(value, int)
