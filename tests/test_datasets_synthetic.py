"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets import (
    joint_prevalence_weights,
    make_classification,
    make_drifted_groups,
    prevalence_weights,
    resample_dataset,
)
from repro.exceptions import DatasetError
from repro.learners import LogisticRegressionClassifier
from repro.learners.metrics import accuracy_score


class TestMakeClassification:
    def test_shapes_and_labels(self):
        X, y = make_classification(n_samples=300, n_features=6, random_state=0)
        assert X.shape == (300, 6)
        assert set(np.unique(y)) <= {0, 1}

    def test_classes_are_learnable(self):
        X, y = make_classification(
            n_samples=500, n_features=5, n_informative=3, class_sep=2.0, flip_y=0.0, random_state=1
        )
        model = LogisticRegressionClassifier(max_iter=200).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_class_weights_respected(self):
        _, y = make_classification(n_samples=1000, weights=(0.8, 0.2), random_state=2)
        assert abs(y.mean() - 0.2) < 0.05

    def test_reproducibility(self):
        a = make_classification(n_samples=100, random_state=3)
        b = make_classification(n_samples=100, random_state=3)
        assert np.allclose(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_flip_y_adds_noise(self):
        X, clean = make_classification(n_samples=2000, flip_y=0.0, random_state=4)
        _, noisy = make_classification(n_samples=2000, flip_y=0.3, random_state=4)
        assert (clean != noisy).mean() > 0.1

    def test_invalid_feature_budget(self):
        with pytest.raises(DatasetError):
            make_classification(n_features=3, n_informative=3, n_redundant=2)

    def test_invalid_weights(self):
        with pytest.raises(DatasetError):
            make_classification(weights=(0.9, 0.2))


class TestMakeDriftedGroups:
    def test_group_sizes_and_rates(self):
        data = make_drifted_groups(n_majority=400, n_minority=100, random_state=0)
        assert data.n_samples == 500
        assert abs(data.minority_fraction - 0.2) < 0.01
        assert 0.4 < data.group_positive_rate(1) < 0.6

    def test_metadata_records_generator(self):
        data = make_drifted_groups(n_majority=50, n_minority=20, random_state=0)
        assert data.metadata["generator"] == "make_drifted_groups"

    def test_groups_have_shifted_means(self):
        data = make_drifted_groups(
            n_majority=800, n_minority=300, group_shift=3.0, random_state=1
        )
        majority_mean = data.X[data.group == 0, 0].mean()
        minority_mean = data.X[data.group == 1, 0].mean()
        assert majority_mean - minority_mean > 2.0

    def test_pooled_model_is_unfair(self):
        """The headline property: a single model under-selects the minority."""
        from repro.datasets import split_dataset
        from repro.fairness import evaluate_predictions

        data = make_drifted_groups(
            n_majority=900, n_minority=350, drift_angle=85, group_shift=3.0, random_state=2
        )
        split = split_dataset(data, random_state=2)
        model = LogisticRegressionClassifier(max_iter=200).fit(split.train.X, split.train.y)
        report = evaluate_predictions(
            split.deploy.y, model.predict(split.deploy.X), split.deploy.group
        )
        assert report.di_star < 0.8
        assert report.selection_rate_minority < report.selection_rate_majority

    def test_per_group_models_are_accurate(self):
        data = make_drifted_groups(n_majority=800, n_minority=400, drift_angle=85, random_state=3)
        for group_value in (0, 1):
            part = data.partition(group_value=group_value)
            model = LogisticRegressionClassifier(max_iter=200).fit(part.X, part.y)
            assert accuracy_score(part.y, model.predict(part.X)) > 0.8

    def test_reproducible(self):
        a = make_drifted_groups(n_majority=60, n_minority=30, random_state=5)
        b = make_drifted_groups(n_majority=60, n_minority=30, random_state=5)
        assert np.allclose(a.X, b.X)

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            make_drifted_groups(n_features=1)
        with pytest.raises(DatasetError):
            make_drifted_groups(n_majority=2)
        with pytest.raises(DatasetError):
            make_drifted_groups(group_shift=-1.0)


class TestPrevalenceWeights:
    def test_expected_prevalence_is_exact(self):
        indicator = np.array([1] * 30 + [0] * 70)
        weights = prevalence_weights(indicator, 0.8)
        probabilities = weights / weights.sum()
        assert float(probabilities[indicator == 1].sum()) == pytest.approx(0.8)

    def test_unreachable_targets_raise(self):
        with pytest.raises(DatasetError, match="raise prevalence"):
            prevalence_weights(np.zeros(10), 0.5)
        with pytest.raises(DatasetError, match="lower prevalence"):
            prevalence_weights(np.ones(10), 0.5)
        with pytest.raises(DatasetError, match="target_rate"):
            prevalence_weights(np.array([0, 1]), 1.5)

    def test_joint_weights_hit_both_marginals_on_correlated_pool(self):
        # group and y correlate strongly: naive per-axis weight products
        # would overshoot both marginals; the joint (IPF) solution may not.
        rng = np.random.default_rng(0)
        group = rng.integers(0, 2, 400)
        y = np.where(rng.random(400) < 0.85, group, 1 - group)
        weights = joint_prevalence_weights(group, y, 0.7, 0.3)
        probabilities = weights / weights.sum()
        assert float(probabilities[group == 1].sum()) == pytest.approx(0.7, abs=1e-6)
        assert float(probabilities[y == 1].sum()) == pytest.approx(0.3, abs=1e-6)

    def test_jointly_infeasible_targets_raise(self):
        group = np.array([0] * 50 + [1] * 50)
        y = group.copy()  # group == y row-for-row: marginals must coincide
        with pytest.raises(DatasetError, match="jointly"):
            joint_prevalence_weights(group, y, 0.7, 0.2)

    def test_degenerate_pool_named_in_error(self):
        with pytest.raises(DatasetError, match="group == 1"):
            joint_prevalence_weights(np.zeros(10), np.ones(10), 0.5, 1.0)


class TestResampleDataset:
    POOL = make_drifted_groups(
        n_majority=400, n_minority=150, n_features=4, random_state=21
    )

    def test_single_target_minority_fraction(self):
        shifted = resample_dataset(self.POOL, minority_fraction=0.8, random_state=3)
        assert shifted.n_samples == self.POOL.n_samples
        assert shifted.minority_fraction == pytest.approx(0.8, abs=0.06)
        assert shifted.metadata["target_minority_fraction"] == 0.8
        assert shifted.metadata["resampled_from"] == self.POOL.name

    def test_joint_targets_on_correlated_pool(self):
        shifted = resample_dataset(
            self.POOL, minority_fraction=0.6, positive_rate=0.3,
            n_samples=4000, random_state=3,
        )
        assert shifted.minority_fraction == pytest.approx(0.6, abs=0.04)
        assert shifted.positive_rate == pytest.approx(0.3, abs=0.04)

    def test_reproducible_and_validated(self):
        a = resample_dataset(self.POOL, positive_rate=0.7, random_state=5)
        b = resample_dataset(self.POOL, positive_rate=0.7, random_state=5)
        assert np.array_equal(a.X, b.X)
        with pytest.raises(DatasetError, match="needs"):
            resample_dataset(self.POOL)
        with pytest.raises(DatasetError, match="n_samples"):
            resample_dataset(self.POOL, minority_fraction=0.5, n_samples=0)
