"""Unit tests for the group-fairness metrics and reports."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.fairness import (
    GroupMapping,
    average_odds_difference,
    average_odds_star,
    disparate_impact,
    disparate_impact_star,
    equalized_odds_difference,
    evaluate_predictions,
    group_from_column,
    group_from_threshold,
    group_rates,
)
from repro.fairness.metrics import favors_minority, statistical_parity_difference

# Hand-crafted evaluation: majority (group 0) has SR=0.75, minority SR=0.25.
Y_TRUE = [1, 1, 0, 0, 1, 1, 0, 0]
Y_PRED = [1, 1, 1, 0, 1, 0, 0, 0]
GROUP = [0, 0, 0, 0, 1, 1, 1, 1]


class TestGroupRates:
    def test_per_group_selection_rates(self):
        rates = group_rates(Y_TRUE, Y_PRED, GROUP)
        assert rates["majority"].selection_rate == pytest.approx(0.75)
        assert rates["minority"].selection_rate == pytest.approx(0.25)
        assert rates["majority"].n_samples == 4

    def test_tpr_fpr_fnr(self):
        rates = group_rates(Y_TRUE, Y_PRED, GROUP)
        assert rates["majority"].tpr == pytest.approx(1.0)
        assert rates["majority"].fpr == pytest.approx(0.5)
        assert rates["minority"].tpr == pytest.approx(0.5)
        assert rates["minority"].fnr == pytest.approx(0.5)

    def test_missing_group_rejected(self):
        with pytest.raises(ValidationError):
            group_rates([0, 1], [0, 1], [0, 0])


class TestDisparateImpact:
    def test_raw_ratio(self):
        assert disparate_impact(Y_TRUE, Y_PRED, GROUP) == pytest.approx(0.25 / 0.75)

    def test_star_folds_above_one(self):
        # Swap groups: the minority is now favored; DI* must fold back below 1.
        swapped = [1 - g for g in GROUP]
        di_star = disparate_impact_star(Y_TRUE, Y_PRED, swapped)
        assert di_star == pytest.approx(1.0 / 3.0)

    def test_parity_gives_one(self):
        assert disparate_impact_star([1, 0, 1, 0], [1, 0, 1, 0], [0, 0, 1, 1]) == pytest.approx(1.0)

    def test_zero_minority_selection_gives_zero(self):
        assert disparate_impact_star([1, 1, 1, 1], [1, 1, 0, 0], [0, 0, 1, 1]) == 0.0

    def test_zero_majority_selection_gives_zero_star(self):
        assert disparate_impact_star([1, 1, 1, 1], [0, 0, 1, 1], [0, 0, 1, 1]) == 0.0

    def test_favors_minority_flag(self):
        assert not favors_minority(Y_TRUE, Y_PRED, GROUP)
        assert favors_minority(Y_TRUE, Y_PRED, [1 - g for g in GROUP])

    def test_statistical_parity_difference_sign(self):
        assert statistical_parity_difference(Y_TRUE, Y_PRED, GROUP) == pytest.approx(-0.5)


class TestAverageOdds:
    def test_signed_value(self):
        expected = ((0.0 - 0.5) + (0.5 - 1.0)) / 2.0
        assert average_odds_difference(Y_TRUE, Y_PRED, GROUP) == pytest.approx(expected)

    def test_star_reporting(self):
        assert average_odds_star(Y_TRUE, Y_PRED, GROUP) == pytest.approx(1.0 - 0.5)

    def test_equal_treatment_scores_one(self):
        y_true = [1, 0, 1, 0]
        y_pred = [1, 0, 1, 0]
        assert average_odds_star(y_true, y_pred, [0, 0, 1, 1]) == pytest.approx(1.0)


class TestEqualizedOdds:
    def test_fnr_gap(self):
        assert equalized_odds_difference(Y_TRUE, Y_PRED, GROUP, rate="fnr") == pytest.approx(0.5)

    def test_fpr_gap(self):
        assert equalized_odds_difference(Y_TRUE, Y_PRED, GROUP, rate="fpr") == pytest.approx(0.5)

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            equalized_odds_difference(Y_TRUE, Y_PRED, GROUP, rate="tnr")


class TestFairnessReport:
    def test_report_fields_consistent(self):
        report = evaluate_predictions(Y_TRUE, Y_PRED, GROUP)
        assert report.di_star == pytest.approx(disparate_impact_star(Y_TRUE, Y_PRED, GROUP))
        assert report.selection_rate_majority == pytest.approx(0.75)
        assert not report.degenerate
        assert 0.0 <= report.balanced_accuracy <= 1.0

    def test_degenerate_flag_for_single_class_predictions(self):
        report = evaluate_predictions([0, 1, 0, 1], [0, 0, 0, 0], [0, 0, 1, 1])
        assert report.degenerate

    def test_to_dict_round_trip(self):
        report = evaluate_predictions(Y_TRUE, Y_PRED, GROUP)
        as_dict = report.to_dict()
        assert as_dict["di_star"] == report.di_star
        assert "aod_star" in as_dict


class TestGroupMappings:
    def test_group_from_column(self):
        mapping = group_from_column(0, minority_values=["b"])
        X = np.array([["a", 1], ["b", 2], ["b", 3]], dtype=object)
        assert mapping(X).tolist() == [0, 1, 1]

    def test_group_from_threshold(self):
        mapping = group_from_threshold(1, threshold=35.0)
        X = np.array([[0.0, 20.0], [0.0, 50.0]])
        assert mapping(X).tolist() == [1, 0]

    def test_threshold_above_is_minority(self):
        mapping = group_from_threshold(0, threshold=10.0, below_is_minority=False)
        assert mapping(np.array([[5.0], [15.0]])).tolist() == [0, 1]

    def test_mapping_must_return_binary(self):
        bad = GroupMapping(lambda X: np.full(len(X), 7))
        with pytest.raises(ValidationError):
            bad(np.zeros((3, 1)))

    def test_empty_minority_values_rejected(self):
        with pytest.raises(ValidationError):
            group_from_column(0, minority_values=[])
