"""Replay-harness and CLI tests — including the PR's acceptance criterion:

an injected group-prevalence shift must be flagged by the monitor while a
no-shift control replay raises no alarm, end-to-end from a saved artifact,
with detection latency / false-alarm rate / throughput reported as JSON.
"""

from __future__ import annotations

import json

import pytest

from repro import FairnessPipeline
from repro.datasets import load_dataset, split_dataset
from repro.density import KernelDensity
from repro.exceptions import SimulationError
from repro.serving import PredictionService, save_artifact
from repro.serving.cli import find_profile
from repro.simulate import (
    ReplayHarness,
    SuiteRunner,
    TrafficStream,
    make_scenario,
    make_suite,
)
from repro.simulate.cli import main as simulate_main

SIZE_FACTOR = 0.03
SEED = 11


@pytest.fixture(scope="module")
def fitted(tmp_path_factory):
    """A ConFair fit on MEPS, persisted as an artifact, plus its split."""
    result = FairnessPipeline(
        "confair", learner="lr", dataset="meps", size_factor=SIZE_FACTOR, seed=SEED
    ).run()
    artifact = save_artifact(
        result, tmp_path_factory.mktemp("artifact") / "meps-confair"
    )
    data = load_dataset("meps", size_factor=SIZE_FACTOR, random_state=SEED)
    split = split_dataset(data, random_state=SEED)
    return result, artifact, split


@pytest.fixture(scope="module")
def runner(fitted):
    result, _, split = fitted
    kde = KernelDensity(bandwidth="scott", kernel="gaussian").fit(split.train.numeric_X)
    return SuiteRunner(
        result.model,
        split.train,
        profile=find_profile(result),
        density_estimator=kde,
        calibration=split.validation,
        window_size=1500,
    )


class TestReplayHarness:
    def test_group_shift_is_flagged(self, fitted, runner):
        _, _, split = fitted
        outcome = runner.replay_scenario(
            make_scenario("group_shift"),
            split.deploy,
            label="group_shift",
            n_steps=30,
            batch_size=100,
            seed=SEED,
        )
        assert outcome.detected, "the injected group-prevalence shift must be flagged"
        assert "group" in outcome.channel_first_alarm
        assert outcome.first_drift_step is not None
        assert outcome.detection_step >= outcome.first_drift_step
        assert outcome.detection_latency_steps >= 0
        assert outcome.detection_latency_records >= outcome.detection_latency_steps
        assert outcome.n_false_alarms == 0
        assert outcome.records_per_second > 0
        assert outcome.n_records == sum(record.n_rows for record in outcome.steps)

    def test_no_shift_control_raises_no_alarm(self, fitted, runner):
        _, _, split = fitted
        outcome = runner.replay_scenario(
            make_scenario("none"),
            split.deploy,
            label="control",
            n_steps=30,
            batch_size=100,
            seed=SEED,
        )
        assert not outcome.detected
        assert outcome.n_false_alarms == 0
        assert outcome.false_alarm_rate == 0.0
        assert outcome.channel_first_alarm == {}
        assert outcome.n_clean_steps == 30

    def test_covariate_shift_caught_by_density_channel(self, fitted, runner):
        _, _, split = fitted
        outcome = runner.replay_scenario(
            make_scenario("covariate_shift"),
            split.deploy,
            label="covariate_shift",
            n_steps=24,
            batch_size=100,
            seed=SEED,
        )
        assert outcome.detected
        assert "density" in outcome.channel_first_alarm
        assert outcome.n_false_alarms == 0

    def test_result_is_json_ready(self, fitted, runner):
        _, _, split = fitted
        outcome = runner.replay_scenario(
            make_scenario("burst"),
            split.deploy,
            label="burst",
            n_steps=10,
            batch_size=50,
            seed=SEED,
        )
        payload = outcome.to_dict()
        assert "steps" not in payload
        json.dumps(payload)
        traced = outcome.to_dict(include_steps=True)
        assert len(traced["steps"]) == 10
        json.dumps(traced)

    def test_harness_requires_a_monitor(self, fitted):
        result, _, _ = fitted
        with pytest.raises(SimulationError, match="FairnessMonitor"):
            ReplayHarness(PredictionService(result.model))

    def test_replay_is_deterministic(self, fitted, runner):
        _, _, split = fitted
        outcomes = [
            runner.replay_scenario(
                make_scenario("group_shift"),
                split.deploy,
                label="group_shift",
                n_steps=20,
                batch_size=80,
                seed=SEED,
            )
            for _ in range(2)
        ]
        first, second = (
            outcome.to_dict(include_steps=True) for outcome in outcomes
        )
        # Everything except wall-clock throughput must replay identically.
        first.pop("records_per_second")
        second.pop("records_per_second")
        assert first == second


class TestSuites:
    def test_make_suite_builds_labelled_scenarios(self):
        suite = make_suite("default")
        labels = [label for label, _ in suite]
        assert labels[0] == "control"
        assert "group_shift" in labels

    def test_unknown_suite_raises(self):
        with pytest.raises(SimulationError, match="Unknown suite"):
            make_suite("nope")

    def test_build_scenario_spec_forms(self):
        from repro.simulate import Compose, build_scenario, Burst, RampTraffic

        assert isinstance(build_scenario("burst"), Burst)
        parameterized = build_scenario(("burst", {"factor": 2.0}))
        assert isinstance(parameterized, Burst) and parameterized.factor == 2.0
        # Regression: a two-element sequence of plain names is a Compose, not
        # a malformed (name, params) pair.
        pair = build_scenario(("burst", "ramp"))
        assert isinstance(pair, Compose)
        assert [type(s) for s in pair.scenarios] == [Burst, RampTraffic]
        nested = build_scenario((("burst", {}), ("group_shift", {})))
        assert isinstance(nested, Compose)
        with pytest.raises(SimulationError, match="Cannot build"):
            build_scenario(())

    def test_suite_run_control_row_is_clean(self, fitted, runner):
        _, _, split = fitted
        results = runner.run(
            "traffic", split.deploy, n_steps=12, batch_size=60, seed=SEED
        )
        by_label = dict(results)
        assert set(by_label) == {"control", "burst", "flash_crowd", "ramp"}
        assert not by_label["control"].detected
        assert all(outcome.n_false_alarms == 0 for outcome in by_label.values())


class TestCli:
    def run_cli(self, capsys, *argv) -> dict:
        assert simulate_main(list(argv)) == 0
        return json.loads(capsys.readouterr().out)

    def test_acceptance_group_shift_run(self, fitted, capsys):
        """`repro-simulate run --scenario group_shift --dataset meps` end-to-end."""
        _, artifact, _ = fitted
        payload = self.run_cli(
            capsys,
            "run",
            "--scenario", "group_shift",
            "--dataset", "meps",
            "--artifact", str(artifact),
            "--size-factor", str(SIZE_FACTOR),
            "--seed", str(SEED),
            "--steps", "30",
            "--stream-batch", "100",
            "--window", "1500",
        )
        result = payload["result"]
        assert payload["artifact"] == str(artifact)
        assert result["detected"] is True
        assert result["n_false_alarms"] == 0
        assert result["detection_latency_steps"] >= 0
        assert result["detection_latency_records"] > 0
        assert result["false_alarm_rate"] == 0.0
        assert result["records_per_second"] > 0

    def test_acceptance_control_run_raises_no_alarm(self, fitted, capsys):
        _, artifact, _ = fitted
        payload = self.run_cli(
            capsys,
            "run",
            "--scenario", "none",
            "--dataset", "meps",
            "--artifact", str(artifact),
            "--size-factor", str(SIZE_FACTOR),
            "--seed", str(SEED),
            "--steps", "30",
            "--stream-batch", "100",
            "--window", "1500",
        )
        result = payload["result"]
        assert result["detected"] is False
        assert result["n_false_alarms"] == 0
        assert result["channel_first_alarm"] == {}

    def test_run_fits_and_saves_artifact_when_none_given(self, tmp_path, capsys):
        out = tmp_path / "fitted-artifact"
        payload = self.run_cli(
            capsys,
            "run",
            "--scenario", "group_shift",
            "--dataset", "meps",
            "--size-factor", str(SIZE_FACTOR),
            "--seed", str(SEED),
            "--steps", "20",
            "--stream-batch", "80",
            "--window", "600",
            "--out", str(out),
            "--no-density",
        )
        assert payload["artifact"] == str(out)
        assert (out / "manifest.json").is_file()
        assert payload["result"]["detected"] is True

    def test_scenario_params_and_trace(self, fitted, capsys):
        _, artifact, _ = fitted
        payload = self.run_cli(
            capsys,
            "run",
            "--scenario", "group_shift",
            "--scenario-param", "onset=0.25",
            "--dataset", "meps",
            "--artifact", str(artifact),
            "--size-factor", str(SIZE_FACTOR),
            "--seed", str(SEED),
            "--steps", "20",
            "--stream-batch", "80",
            "--trace",
        )
        assert "onset=0.25" in payload["scenario"]
        assert len(payload["result"]["steps"]) == 20

    def test_list_command(self, capsys):
        payload = self.run_cli(capsys, "list")
        assert "group_shift" in payload["scenarios"]
        assert "default" in payload["suites"]

    def test_suite_command(self, fitted, capsys):
        _, artifact, _ = fitted
        payload = self.run_cli(
            capsys,
            "suite",
            "--suite", "traffic",
            "--dataset", "meps",
            "--artifact", str(artifact),
            "--size-factor", str(SIZE_FACTOR),
            "--seed", str(SEED),
            "--steps", "10",
            "--stream-batch", "50",
        )
        assert set(payload["results"]) == {"control", "burst", "flash_crowd", "ramp"}
        assert payload["results"]["control"]["detected"] is False

    def test_unknown_scenario_is_a_clean_error(self, fitted, capsys):
        _, artifact, _ = fitted
        code = simulate_main(
            ["run", "--scenario", "nope", "--artifact", str(artifact),
             "--size-factor", str(SIZE_FACTOR), "--seed", str(SEED)]
        )
        assert code == 2
        assert "Unknown scenario" in capsys.readouterr().err


class TestScenarioSuiteExperiment:
    def test_run_scenario_suite_reports_rows(self):
        from repro.experiments import run_scenario_suite

        figure = run_scenario_suite(
            suite="default",
            dataset="meps",
            size_factor=0.02,
            seed=SEED,
            n_steps=14,
            batch_size=60,
            window_size=400,
            use_density=False,
        )
        labels = [row["scenario"] for row in figure.rows]
        assert labels == ["control", "group_shift", "covariate_shift", "burst"]
        control = figure.filter_rows(scenario="control")[0]
        assert control["detected"] is False
        assert control["false_alarm_rate"] == 0.0
        shifted = figure.filter_rows(scenario="group_shift")[0]
        assert shifted["detected"] is True
        assert figure.render()


class TestNJobsForwarding:
    """The CLI ``--n-jobs`` knob reaches the fit and changes nothing else."""

    def test_serve_fit_n_jobs_is_bit_identical(self, tmp_path, capsys):
        from repro.serving.cli import main as serve_main

        common = [
            "fit",
            "--dataset", "meps",
            "--size-factor", str(SIZE_FACTOR),
            "--seed", str(SEED),
        ]
        serial_out = tmp_path / "serial"
        parallel_out = tmp_path / "parallel"
        assert serve_main(common + ["--out", str(serial_out)]) == 0
        capsys.readouterr()
        assert serve_main(common + ["--out", str(parallel_out), "--n-jobs", "4"]) == 0
        capsys.readouterr()

        from repro.serving import load_artifact

        data = load_dataset("meps", size_factor=SIZE_FACTOR, random_state=SEED)
        deploy = split_dataset(data, random_state=SEED).deploy
        serial = load_artifact(serial_out)
        parallel = load_artifact(parallel_out)
        assert (
            serial.model.predict(deploy.X) == parallel.model.predict(deploy.X)
        ).all()

    def test_simulate_run_accepts_n_jobs(self, tmp_path, capsys):
        code = simulate_main(
            [
                "run",
                "--scenario", "none",
                "--dataset", "meps",
                "--size-factor", str(SIZE_FACTOR),
                "--seed", str(SEED),
                "--steps", "6",
                "--stream-batch", "50",
                "--window", "600",
                "--no-density",
                "--n-jobs", "2",
                "--out", str(tmp_path / "artifact"),
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["result"]["n_steps"] == 6
